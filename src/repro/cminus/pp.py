"""Pretty-printer: fully lowered host trees -> plain C source text.

The printer only understands *host* productions — extension constructs
must have been lowered away (via forwarding / `lowered`) first; hitting
one is an internal error, which keeps the translator honest about §II's
promise that extensions translate down to plain C.

A few call names are printed specially because the interpreter and the C
backend need different spellings of the same structured operation:

* ``__tuple_<T>(a, b)``    -> C99 compound literal ``(<T>){a, b}``
* ``__tget_<i>(x)``        -> member access ``(x).f<i>``
* ``__rt_pool_run(fn, total, cap...)`` -> env-struct setup + pool launch
"""

from __future__ import annotations

from repro.ag.tree import Node
from repro.cminus.absyn import node_cons_to_list


class PPError(Exception):
    pass


_BINOP_C = {
    "+": "+", "-": "-", "*": "*", "/": "/", "%": "%",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==", "!=": "!=",
    "&&": "&&", "||": "||",
}

_TYPE_C = {
    "tInt": "int", "tFloat": "float", "tBool": "int", "tChar": "char",
    "tVoid": "void",
}


def pp_type(node: Node) -> str:
    if node.prod in _TYPE_C:
        return _TYPE_C[node.prod]
    if node.prod == "tPtr":
        return pp_type(node.children[0]) + " *"
    if node.prod == "tRaw":
        return node.children[0]
    raise PPError(f"unlowered type node {node.prod!r} reached the C printer")


def pp_expr(node: Node) -> str:
    p = node.prod
    ch = node.children
    if p == "intLit":
        return str(ch[0])
    if p == "floatLit":
        v = repr(float(ch[0]))
        return f"{v}f"
    if p == "boolLit":
        return "1" if ch[0] else "0"
    if p == "strLit":
        body = ch[0].replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{body}"'
    if p == "var":
        return ch[0]
    if p == "rawExpr":
        return ch[0]
    if p == "binop":
        op = _BINOP_C.get(ch[0])
        if op is None:
            raise PPError(f"unlowered operator {ch[0]!r} reached the C printer")
        return f"({pp_expr(ch[1])} {op} {pp_expr(ch[2])})"
    if p == "unop":
        return f"({ch[0]}{pp_expr(ch[1])})"
    if p == "assign":
        return f"{pp_expr(ch[0])} = {pp_expr(ch[1])}"
    if p == "castE":
        return f"(({pp_type(ch[0])}) {pp_expr(ch[1])})"
    if p == "call":
        return pp_call(node)
    raise PPError(f"unlowered expression node {p!r} reached the C printer")


def pp_call(node: Node) -> str:
    name = node.children[0]
    args = [pp_expr(a) for a in node_cons_to_list(node.children[1])]
    if name.startswith("__tuple_"):
        struct = name[len("__tuple_"):]
        return f"(({struct}){{{', '.join(args)}}})"
    if name.startswith("__tget_"):
        i = name[len("__tget_"):]
        return f"({args[0]}).f{i}"
    return f"{name}({', '.join(args)})"


def pp_stmt(node: Node, indent: int = 0) -> str:
    pad = "    " * indent
    p = node.prod
    ch = node.children
    if p == "block":
        inner = [pp_stmt(s, indent + 1) for s in node_cons_to_list(ch[0])]
        return pad + "{\n" + "\n".join(inner) + ("\n" if inner else "") + pad + "}"
    if p == "seqStmt":
        inner = [pp_stmt(s, indent) for s in node_cons_to_list(ch[0])]
        return "\n".join(inner)
    if p == "decl":
        return f"{pad}{pp_type(ch[0])} {ch[1]};"
    if p == "declInit":
        return f"{pad}{pp_type(ch[0])} {ch[1]} = {pp_expr(ch[2])};"
    if p == "exprStmt":
        if ch[0].prod == "call":
            callee = ch[0].children[0]
            if callee == "__rt_pool_run":
                return _pp_pool_run(ch[0], pad)
            if callee in ("__rt_spawn", "__rt_spawn_into"):
                return _pp_spawn(ch[0], pad)
        return f"{pad}{pp_expr(ch[0])};"
    if p == "ifStmt":
        return f"{pad}if ({pp_expr(ch[0])})\n{pp_stmt(ch[1], indent + 1)}"
    if p == "ifElse":
        return (
            f"{pad}if ({pp_expr(ch[0])})\n{pp_stmt(ch[1], indent + 1)}\n"
            f"{pad}else\n{pp_stmt(ch[2], indent + 1)}"
        )
    if p == "whileStmt":
        return f"{pad}while ({pp_expr(ch[0])})\n{pp_stmt(ch[1], indent + 1)}"
    if p == "doWhile":
        return (f"{pad}do\n{pp_stmt(ch[0], indent + 1)}\n"
                f"{pad}while ({pp_expr(ch[1])});")
    if p == "forStmt":
        # OpenMP's canonical loop form rejects extra parentheses around the
        # controlling predicate and increment; print them bare.
        init = pp_forinit(ch[0])
        return (
            f"{pad}for ({init}; {pp_expr_bare(ch[1])}; {pp_expr_bare(ch[2])})\n"
            f"{pp_stmt(ch[3], indent + 1)}"
        )
    if p == "returnStmt":
        return f"{pad}return {pp_expr(ch[0])};"
    if p == "returnVoid":
        return f"{pad}return;"
    if p == "breakStmt":
        return f"{pad}break;"
    if p == "continueStmt":
        return f"{pad}continue;"
    if p == "rawStmt":
        return pad + ch[0]
    raise PPError(f"unlowered statement node {p!r} reached the C printer")


def pp_expr_bare(node: Node) -> str:
    """An expression without its outermost parentheses (for-loop headers)."""
    if node.prod == "binop":
        op = _BINOP_C.get(node.children[0])
        if op is not None:
            return f"{pp_expr(node.children[1])} {op} {pp_expr(node.children[2])}"
    if node.prod == "assign":
        return f"{pp_expr(node.children[0])} = {pp_expr_bare(node.children[1])}"
    return pp_expr(node)


def pp_forinit(node: Node) -> str:
    if node.prod == "forDecl":
        return f"{pp_type(node.children[0])} {node.children[1]} = {pp_expr(node.children[2])}"
    if node.prod == "forExpr":
        return pp_expr(node.children[0])
    raise PPError(f"unlowered for-init {node.prod!r}")


def _pp_pool_run(call: Node, pad: str) -> str:
    """Expand __rt_pool_run(fnname, total, cap1, cap2, ...) into env-struct
    setup plus the runtime launch (see repro.codegen.runtime_c)."""
    args = node_cons_to_list(call.children[1])
    fn = args[0].children[0]  # strLit: lifted function name
    total = pp_expr(args[1])
    caps = [pp_expr(a) for a in args[2:]]
    lines = [
        f"{pad}{{",
        f"{pad}    struct {fn}_env __env = {{{', '.join(caps)}}};" if caps
        else f"{pad}    struct {fn}_env __env;",
        f"{pad}    rt_pool_run({fn}_wrap, &__env, {total});",
        f"{pad}}}",
    ]
    return "\n".join(lines)


def _pp_spawn(call: Node, pad: str) -> str:
    """Expand __rt_spawn[_into](taskfn, callee, [target,] args...) into the
    heap env-struct setup plus the task launch (repro.exts.cilk)."""
    args = node_cons_to_list(call.children[1])
    task = args[0].children[0]
    into = call.children[0] == "__rt_spawn_into"
    target = args[2].children[0] if into else None
    value_args = args[3:] if into else args[2:]
    lines = [
        f"{pad}{{",
        f"{pad}    struct {task}_env *__e = malloc(sizeof(struct {task}_env));",
    ]
    for i, a in enumerate(value_args):
        lines.append(f"{pad}    __e->a{i} = {pp_expr(a)};")
    if target is not None:
        lines.append(f"{pad}    __e->r = &{target};")
    lines.append(f"{pad}    rt_spawn({task}, __e);")
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def pp_function(node: Node) -> str:
    """Print a funcDef node as a C function definition."""
    rett, name, params, body = node.children
    plist = []
    for prm in node_cons_to_list(params):
        plist.append(f"{pp_type(prm.children[0])} {prm.children[1]}")
    sig = f"{pp_type(rett)} {name}({', '.join(plist) or 'void'})"
    return f"{sig}\n{pp_stmt(body)}"


def pp_prototype(node: Node) -> str:
    rett, name, params, _body = node.children
    plist = [pp_type(prm.children[0]) for prm in node_cons_to_list(params)]
    return f"{pp_type(rett)} {name}({', '.join(plist) or 'void'});"


def pp_translation_unit(root: Node) -> str:
    """Print a lowered Root node's functions (prototypes first)."""
    if root.prod != "root":
        raise PPError(f"expected root node, got {root.prod!r}")
    funcs = node_cons_to_list(root.children[0])
    protos = [pp_prototype(f) for f in funcs if f.children[1] != "main"]
    bodies = [pp_function(f) for f in funcs]
    return "\n".join(protos) + ("\n\n" if protos else "") + "\n\n".join(bodies) + "\n"
