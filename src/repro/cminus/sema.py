"""CMINUS semantic analysis as attribute-grammar equations.

Attributes declared here (all on the host AG spec, origin "cminus"):

* ``errors``  (syn, everywhere)  — list of diagnostic strings; the default
  equation collects children's errors, so only productions with their own
  checks need equations.
* ``env``     (inh, autocopy)    — scoped environment; statement lists
  thread definitions left-to-right.
* ``ctx``     (inh, autocopy)    — the mutable CompileContext.
* ``typerep`` (syn on Expr/TypeExpr) — type representation; operator
  overloading on non-scalar types dispatches through ctx.overloads.
* ``defs``    (syn on Stmt/ForInit/Param...) — bindings introduced.
* ``fun_ret`` (inh) — enclosing function's return type.
* ``in_loop`` (inh) — break/continue legality.
* ``in_index``(inh) — `end` legality (host-packaged matrix index syntax).
"""

from __future__ import annotations

from typing import Any

from repro.ag.eval import DecoratedNode
from repro.cminus.absyn import cons_to_list
from repro.cminus.env import Binding
from repro.cminus.grammar import HOST_AG
from repro.cminus.types import (
    BOOL, CHAR, ERROR, FLOAT, INT, STRING, VOID,
    TBool, TFunc, TInt, TPointer, TTuple, TVoid, Type,
    assignable, is_error, unify_arith,
)

ag = HOST_AG

CONTENT_NTS = [
    "TU", "ExtDecl", "Params", "Param", "StmtList", "Stmt", "ForInit",
    "Expr", "ExprList", "IndexList", "Index", "TypeExpr", "TypeList",
]


def err(dn: DecoratedNode, message: str) -> str:
    return f"{dn.span.start}: error: {message}"


def child_errors(dn: DecoratedNode) -> list[str]:
    out: list[str] = []
    for i in range(len(dn.node.children)):
        c = dn.child(i)
        if isinstance(c, DecoratedNode):
            out.extend(c.att("errors"))
    return out


def declare_attributes() -> None:
    ag.synthesized("errors", on=["Root"] + CONTENT_NTS)
    ag.default("errors", child_errors)

    ag.inherited("env", on=CONTENT_NTS, autocopy=True)
    ag.inherited("ctx", on=["Root"] + CONTENT_NTS, autocopy=True)
    ag.inherited("fun_ret", on=["StmtList", "Stmt", "ForInit"], autocopy=True)
    ag.inherited("in_loop", on=["StmtList", "Stmt"], autocopy=True)
    # `in_index` flows from any statement down into expressions, flipping
    # to True under an Index — so it occurs on the whole statement spine.
    ag.inherited(
        "in_index",
        on=["TU", "ExtDecl", "StmtList", "Stmt", "ForInit",
            "Expr", "ExprList", "Index", "IndexList"],
        autocopy=True,
    )

    ag.synthesized("typerep", on=["Expr", "TypeExpr", "Index"])
    ag.synthesized("defs", on=["Stmt", "ForInit", "Param"])
    ag.default("defs", lambda n: [])
    ag.synthesized("topdefs", on=["TU", "ExtDecl"])


# ---------------------------------------------------------------------------
# types of type expressions
# ---------------------------------------------------------------------------

def declare_type_equations() -> None:
    eq = ag.equation
    eq("tInt", "typerep", lambda n: INT)
    eq("tFloat", "typerep", lambda n: FLOAT)
    eq("tBool", "typerep", lambda n: BOOL)
    eq("tChar", "typerep", lambda n: CHAR)
    eq("tVoid", "typerep", lambda n: VOID)
    eq("tPtr", "typerep", lambda n: TPointer(n[0].typerep))
    eq("tRaw", "typerep", lambda n: ERROR)  # only appears post-lowering

    eq("tTuple", "typerep",
       lambda n: TTuple(tuple(t.typerep for t in cons_to_list(n[0]))))


# ---------------------------------------------------------------------------
# top level: global environment and signatures
# ---------------------------------------------------------------------------

def func_signature(n: DecoratedNode) -> Binding:
    """Signature of a funcDef node (demands only TypeExpr typereps)."""
    params = [p.child(0).typerep for p in cons_to_list(n.child(2))]
    return Binding(n.node.children[1], TFunc(tuple(params), n[0].typerep), "func")


def declare_toplevel_equations() -> None:
    eq = ag.equation

    eq("tuCons", "topdefs", lambda n: n[0].topdefs + n[1].topdefs)
    eq("tuNil", "topdefs", lambda n: [])
    eq("funcDef", "topdefs", lambda n: [func_signature(n)])

    def root_errors(n):
        out = list(n[0].att("errors"))
        seen: set[str] = set()
        for b in n[0].topdefs:
            if b.name in seen:
                out.append(err(n, f"duplicate definition of function {b.name!r}"))
            seen.add(b.name)
        if "main" not in seen:
            out.append(err(n, "missing definition of function 'main'"))
        return out

    eq("root", "errors", root_errors)

    # The TU's environment is the root env (builtins) extended with every
    # function signature (functions are mutually visible, C-with-prototypes
    # style).
    ag.inh_equation(
        "root", 0, "env",
        lambda p: p.inh("env").extended(p[0].topdefs),
    )
    ag.inh_equation("root", 0, "in_index", lambda p: False)

    def funcdef_errors(n):
        out = list(n[2].att("errors")) + list(n[3].att("errors"))
        seen: set[str] = set()
        for p in cons_to_list(n.child(2)):
            name = p.node.children[1]
            if name in seen:
                out.append(err(p, f"duplicate parameter {name!r}"))
            seen.add(name)
            t = p.child(0).typerep
            if isinstance(t, TVoid):
                out.append(err(p, f"parameter {name!r} has void type"))
        return out

    eq("funcDef", "errors", funcdef_errors)
    eq("param", "defs", lambda n: [Binding(n.node.children[1], n[0].typerep, "param")])

    # Function bodies: params in scope, fun_ret set, not in a loop.
    def body_env(p):
        params = [b for prm in cons_to_list(p.child(2)) for b in prm.defs]
        return p.inh("env").new_scope(params)

    ag.inh_equation("funcDef", 3, "env", body_env)
    ag.inh_equation("funcDef", 3, "fun_ret", lambda p: p[0].typerep)
    ag.inh_equation("funcDef", 3, "in_loop", lambda p: False)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

def declare_statement_equations() -> None:
    eq = ag.equation
    inh = ag.inh_equation

    # Blocks open a scope; statement lists thread defs left-to-right.
    inh("block", 0, "env", lambda p: p.inh("env").new_scope())
    inh("stmtCons", 1, "env", lambda p: p.inh("env").extended(p[0].defs))
    inh("forStmt", 1, "env", lambda p: p.inh("env").extended(p[0].defs))
    inh("forStmt", 2, "env", lambda p: p.inh("env").extended(p[0].defs))
    inh("forStmt", 3, "env", lambda p: p.inh("env").new_scope(p[0].defs))

    inh("whileStmt", 1, "in_loop", lambda p: True)
    inh("doWhile", 0, "in_loop", lambda p: True)
    inh("forStmt", 3, "in_loop", lambda p: True)

    def decl_defs(n):
        return [Binding(n.node.children[1], n[0].typerep, "var")]

    eq("decl", "defs", decl_defs)
    eq("declInit", "defs", decl_defs)
    eq("forDecl", "defs", decl_defs)

    def decl_errors(n):
        out = child_errors(n)
        name = n.node.children[1]
        t = n[0].typerep
        if isinstance(t, TVoid):
            out.append(err(n, f"variable {name!r} declared void"))
        if n.inh("env").defined_here(name):
            out.append(err(n, f"redeclaration of {name!r}"))
        return out

    def declinit_errors(n):
        out = decl_errors(n)
        out.extend(
            check_assign_types(n, n[0].typerep, n.child(2))
        )
        return out

    eq("decl", "errors", decl_errors)
    eq("declInit", "errors", declinit_errors)
    eq("forDecl", "errors", declinit_errors)

    def cond_errors(n, cond_ix=0):
        out = child_errors(n)
        t = n[cond_ix].typerep
        if not is_error(t) and not isinstance(t, (TBool, TInt)):
            out.append(err(n, f"condition has type {t}, expected bool or int"))
        return out

    eq("ifStmt", "errors", cond_errors)
    eq("ifElse", "errors", cond_errors)
    eq("whileStmt", "errors", cond_errors)
    eq("doWhile", "errors", lambda n: cond_errors(n, 1))
    eq("forStmt", "errors", lambda n: cond_errors(n, 1))

    def return_errors(n):
        out = child_errors(n)
        ret = n.inh("fun_ret")
        t = n[0].typerep
        if not check_assignable_with_overloads(n, ret, t):
            out.append(err(n, f"return of type {t} from function returning {ret}"))
        return out

    eq("returnStmt", "errors", return_errors)

    def return_void_errors(n):
        ret = n.inh("fun_ret")
        if not isinstance(ret, TVoid):
            return [err(n, f"return without value in function returning {ret}")]
        return []

    eq("returnVoid", "errors", return_void_errors)

    def break_errors(n):
        if not n.inh("in_loop"):
            return [err(n, f"'{n.prod.replace('Stmt', '')}' outside of a loop")]
        return []

    eq("breakStmt", "errors", break_errors)
    eq("continueStmt", "errors", break_errors)

    def expr_stmt_errors(n):
        out = child_errors(n)
        # Statement expressions must be assignments or calls (C would warn;
        # we are stricter to catch `a == b;` typos).
        if n.node.children[0].prod not in ("assign", "call", "rawExpr"):
            out.append(err(n, "expression statement has no effect"))
        return out

    eq("exprStmt", "errors", expr_stmt_errors)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

def check_assignable_with_overloads(n: DecoratedNode, target: Type, value: Type) -> bool:
    if assignable(target, value):
        return True
    result = n.inh("ctx").overloads.resolve_type("assign", target, value, n)
    return result is not None and not isinstance(result, TVoid)


def check_assign_types(n: DecoratedNode, target: Type, value_dn: Any) -> list[str]:
    vt = value_dn.typerep
    if not check_assignable_with_overloads(n, target, vt):
        return [err(n, f"cannot assign value of type {vt} to {target}")]
    return []


def declare_expression_equations() -> None:
    eq = ag.equation

    eq("intLit", "typerep", lambda n: INT)
    eq("floatLit", "typerep", lambda n: FLOAT)
    eq("boolLit", "typerep", lambda n: BOOL)
    eq("strLit", "typerep", lambda n: STRING)
    eq("rawExpr", "typerep", lambda n: ERROR)

    def var_typerep(n):
        b = n.inh("env").lookup(n.node.children[0])
        return b.type if b else ERROR

    def var_errors(n):
        if n.inh("env").lookup(n.node.children[0]) is None:
            return [err(n, f"undeclared identifier {n.node.children[0]!r}")]
        return []

    eq("var", "typerep", var_typerep)
    eq("var", "errors", var_errors)

    def binop_typerep(n):
        op = n.node.children[0]
        lt, rt = n[1].typerep, n[2].typerep
        if is_error(lt) or is_error(rt):
            return ERROR
        if op in ("+", "-", "*", "/", "%"):
            if lt.is_scalar() and rt.is_scalar():
                if op == "%":
                    return INT if isinstance(lt, (TInt, TBool)) and isinstance(rt, (TInt, TBool)) else ERROR
                u = unify_arith(lt, rt)
                if u is not None:
                    return u
        if op in ("<", "<=", ">", ">=", "==", "!="):
            if lt.is_scalar() and rt.is_scalar():
                return BOOL
        if op in ("&&", "||"):
            if isinstance(lt, (TBool, TInt)) and isinstance(rt, (TBool, TInt)):
                return BOOL
        resolved = n.inh("ctx").overloads.resolve_type(op, lt, rt, n)
        return resolved if resolved is not None else ERROR

    def binop_errors(n):
        out = child_errors(n)
        if is_error(n.att("typerep")) and not (
            is_error(n[1].typerep) or is_error(n[2].typerep)
        ):
            op = n.node.children[0]
            out.append(
                err(n, f"invalid operands to {op!r}: {n[1].typerep} and {n[2].typerep}")
            )
        return out

    eq("binop", "typerep", binop_typerep)
    eq("binop", "errors", binop_errors)

    def unop_typerep(n):
        op = n.node.children[0]
        t = n[1].typerep
        if is_error(t):
            return ERROR
        if op == "-" and t.is_numeric():
            return t
        if op == "!" and isinstance(t, (TBool, TInt)):
            return BOOL
        resolved = n.inh("ctx").overloads.resolve_type(op, t, None, n)
        return resolved if resolved is not None else ERROR

    def unop_errors(n):
        out = child_errors(n)
        if is_error(n.att("typerep")) and not is_error(n[1].typerep):
            out.append(err(n, f"invalid operand to unary {n.node.children[0]!r}: {n[1].typerep}"))
        return out

    eq("unop", "typerep", unop_typerep)
    eq("unop", "errors", unop_errors)

    def assign_typerep(n):
        return n[0].typerep

    def assign_errors(n):
        out = child_errors(n)
        lhs = n.node.children[0]
        if lhs.prod not in ("var", "index", "tupleE"):
            out.append(err(n, "assignment target is not an lvalue"))
            return out
        out.extend(check_assign_types(n, n[0].typerep, n.child(1)))
        return out

    eq("assign", "typerep", assign_typerep)
    eq("assign", "errors", assign_errors)

    def call_typerep(n):
        b = n.inh("env").lookup(n.node.children[0])
        if b is None or not isinstance(b.type, TFunc):
            return ERROR
        return b.type.ret

    def call_errors(n):
        out = child_errors(n)
        name = n.node.children[0]
        b = n.inh("env").lookup(name)
        if b is None:
            out.append(err(n, f"call to undeclared function {name!r}"))
            return out
        if not isinstance(b.type, TFunc):
            out.append(err(n, f"{name!r} is not a function (type {b.type})"))
            return out
        args = cons_to_list(n.child(1))
        if len(args) != len(b.type.params):
            out.append(
                err(n, f"{name!r} expects {len(b.type.params)} arguments, got {len(args)}")
            )
            return out
        for i, (arg, pt) in enumerate(zip(args, b.type.params)):
            if not check_assignable_with_overloads(n, pt, arg.typerep):
                out.append(
                    err(n, f"argument {i + 1} of {name!r}: cannot pass {arg.typerep} as {pt}")
                )
        return out

    eq("call", "typerep", call_typerep)
    eq("call", "errors", call_errors)

    def cast_typerep(n):
        return n[0].typerep

    def cast_errors(n):
        out = child_errors(n)
        src, dst = n[1].typerep, n[0].typerep
        if is_error(src) or is_error(dst):
            return out
        ok = (src.is_scalar() and dst.is_scalar()) or src == dst
        if not ok:
            out.append(err(n, f"invalid cast from {src} to {dst}"))
        return out

    eq("castE", "typerep", cast_typerep)
    eq("castE", "errors", cast_errors)

    # `end`: int inside an index, error elsewhere.
    def end_typerep(n):
        return INT if n.inh("in_index") else ERROR

    def end_errors(n):
        if not n.inh("in_index"):
            return [err(n, "'end' used outside of a matrix index")]
        return []

    eq("endE", "typerep", end_typerep)
    eq("endE", "errors", end_errors)

    # Ranges: the host has no semantics for `a :: b`; the matrix extension
    # overloads it (producing a rank-1 int matrix).
    def range_typerep(n):
        lt, rt = n[0].typerep, n[1].typerep
        if is_error(lt) or is_error(rt):
            return ERROR
        resolved = n.inh("ctx").overloads.resolve_type("::", lt, rt, n)
        return resolved if resolved is not None else ERROR

    def range_errors(n):
        out = child_errors(n)
        if is_error(n.att("typerep")) and not (
            is_error(n[0].typerep) or is_error(n[1].typerep)
        ):
            out.append(
                err(n, "range expression has no meaning here "
                       "(no extension provides '::' for these types)")
            )
        return out

    eq("rangeE", "typerep", range_typerep)
    eq("rangeE", "errors", range_errors)

    # Tuples: host-packaged (per the paper's §VI-A conclusion).
    eq("tupleE", "typerep",
       lambda n: TTuple(tuple(e.typerep for e in cons_to_list(n.child(0)))))

    def tuple_expr_errors(n):
        out = child_errors(n)
        if not n.inh("in_index") and n.parent is not None:
            # As an assignment *target*, every component must be an lvalue.
            if n.parent.prod == "assign" and n.child_index == 0:
                for e in cons_to_list(n.child(0)):
                    if e.node.prod not in ("var", "index"):
                        out.append(err(e, "tuple assignment target component "
                                          "is not an lvalue"))
        return out

    eq("tupleE", "errors", tuple_expr_errors)

    # Indexing: scalar types reject; overloads (matrix) accept.
    def index_typerep(n):
        base = n[0].typerep
        if is_error(base):
            return ERROR
        resolved = n.inh("ctx").overloads.resolve_type("index", base, None, n)
        return resolved if resolved is not None else ERROR

    def index_errors(n):
        out = child_errors(n)
        if is_error(n.att("typerep")) and not is_error(n[0].typerep):
            out.append(err(n, f"type {n[0].typerep} is not indexable"))
        return out

    eq("index", "typerep", index_typerep)
    eq("index", "errors", index_errors)

    # Everything under an Index is "in an index" for `end` purposes.
    ag.inh_equation("index", 1, "in_index", lambda p: True)
    # ...but a fresh index base (m in m[...]) is not.
    ag.inh_equation("index", 0, "in_index", lambda p: False)

    # Index kinds for consumers (matrix extension).
    eq("idxExpr", "typerep", lambda n: n[0].typerep)
    eq("idxRange", "typerep", lambda n: INT)
    eq("idxAll", "typerep", lambda n: INT)

    def idx_range_errors(n):
        out = child_errors(n)
        for i in (0, 1):
            t = n[i].typerep
            if not is_error(t) and not isinstance(t, (TInt, TBool)):
                out.append(err(n, f"range bound has type {t}, expected int"))
        return out

    eq("idxRange", "errors", idx_range_errors)


def install() -> None:
    declare_attributes()
    declare_type_equations()
    declare_toplevel_equations()
    declare_statement_equations()
    declare_expression_equations()
