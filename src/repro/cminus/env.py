"""Scoped environments and the compilation context.

Environments are immutable chained scopes (extending returns a new scope),
which suits attribute-grammar evaluation: the same tree region can be
decorated with different environments without interference.

The :class:`CompileContext` carries cross-cutting compilation state: the
fresh-name supply, functions lifted out of parallel constructs (paper
§III-A.5: "we actually lift this out into a new function so that the
spawned threads can get direct access to it"), the selected optimizations,
and which runtime features the generated program needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.cminus.types import OverloadTable, Type


@dataclass(frozen=True, slots=True)
class Binding:
    name: str
    type: Type
    kind: str = "var"  # "var" | "func" | "param" | "index"


class Env:
    """An immutable chain of scopes."""

    __slots__ = ("_bindings", "_parent")

    def __init__(self, bindings: dict[str, Binding] | None = None,
                 parent: "Env | None" = None):
        self._bindings = bindings or {}
        self._parent = parent

    def lookup(self, name: str) -> Binding | None:
        env: Env | None = self
        while env is not None:
            b = env._bindings.get(name)
            if b is not None:
                return b
            env = env._parent
        return None

    def defined_here(self, name: str) -> bool:
        return name in self._bindings

    def extended(self, bindings: list[Binding]) -> "Env":
        """A child view with additional bindings in the *current* scope
        frame (shadowing allowed against outer frames only)."""
        merged = dict(self._bindings)
        for b in bindings:
            merged[b.name] = b
        return Env(merged, self._parent)

    def new_scope(self, bindings: list[Binding] | None = None) -> "Env":
        return Env({b.name: b for b in (bindings or [])}, self)

    def names(self) -> Iterator[str]:
        env: Env | None = self
        seen: set[str] = set()
        while env is not None:
            for n in env._bindings:
                if n not in seen:
                    seen.add(n)
                    yield n
            env = env._parent


@dataclass
class Optimizations:
    """High-level optimization switches (§III-A.4) — all on by default;
    the ablation benchmarks flip them off."""

    fuse_assignment: bool = True      # with-loop writes directly into LHS
    eliminate_slices: bool = True     # fold over mat[i,j,:] without a copy
    parallelize: bool = True          # emit pool-parallel outer loops
    #: mid-level IR pipeline (S28): 0 = off, 1 = fold/copy-prop/CSE/DCE,
    #: 2 = + LICM and strength reduction.  Folded into every translator
    #: fingerprint (generic field enumeration), so cached artifacts and
    #: analysis reports can never cross opt levels.
    opt_level: int = 2


@dataclass
class CompileContext:
    """Mutable per-compilation state, threaded as an inherited attribute."""

    overloads: OverloadTable = field(default_factory=OverloadTable)
    options: Optimizations = field(default_factory=Optimizations)
    lifted: list[Any] = field(default_factory=list)  # lifted Node functions
    runtime_features: set[str] = field(default_factory=set)
    _counter: itertools.count = field(default_factory=itertools.count)

    def gensym(self, hint: str = "t") -> str:
        return f"__{hint}{next(self._counter)}"

    def lift_function(self, func_node: Any) -> None:
        self.lifted.append(func_node)

    def need(self, feature: str) -> None:
        """Record that the generated program uses a runtime feature
        ("matrix", "pool", "refcount", "io", "sse")."""
        self.runtime_features.add(feature)
