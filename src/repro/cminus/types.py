"""Type representations for CMINUS and its extensions.

The host knows the scalar C types; extensions contribute their own type
representations (``TMatrix``, ``TTuple``, ``TRange``) and register
*overloads* for host operators on those types.  Operator overloading goes
through :class:`OverloadTable` — the host's type-checking and lowering
equations dispatch through it, which is how the paper's extensions
"overload the arithmetic and comparison operators in the host language"
without adding equations to host productions (which would break the
modular well-definedness guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


class Type:
    """Base class for type representations."""

    __slots__ = ()

    #: True for types whose values are heap allocations managed by the
    #: reference-counting extension (matrices).  Kept on the base class so
    #: the refcount module stays generic ("general purpose", §III-B).
    managed = False

    def is_numeric(self) -> bool:
        return False

    def is_scalar(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class TInt(Type):
    def __str__(self) -> str:
        return "int"

    def is_numeric(self) -> bool:
        return True

    def is_scalar(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class TFloat(Type):
    def __str__(self) -> str:
        return "float"

    def is_numeric(self) -> bool:
        return True

    def is_scalar(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class TBool(Type):
    def __str__(self) -> str:
        return "bool"

    def is_scalar(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class TChar(Type):
    def __str__(self) -> str:
        return "char"

    def is_scalar(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class TVoid(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True, slots=True)
class TString(Type):
    """C string (char*); appears as the type of string literals."""

    def __str__(self) -> str:
        return "char *"


@dataclass(frozen=True, slots=True)
class TPointer(Type):
    target: Type

    def __str__(self) -> str:
        return f"{self.target} *"


@dataclass(frozen=True, slots=True)
class TFunc(Type):
    params: tuple[Type, ...]
    ret: Type

    def __str__(self) -> str:
        ps = ", ".join(map(str, self.params)) or "void"
        return f"{self.ret} ({ps})"


@dataclass(frozen=True, slots=True)
class TTuple(Type):
    """Tuple type ``(int, float, bool)``.

    Tuples are a general-purpose *extension* in the paper (§III-B), but —
    as §VI-A works out — their syntax cannot pass the modular determinism
    analysis (the initial ``(`` is not a unique marking terminal), so the
    extension "will be packaged as part of the host language".  We follow
    suit: the type lives with the host.
    """

    elems: tuple[Type, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(map(str, self.elems)) + ")"


@dataclass(frozen=True, slots=True)
class TError(Type):
    """Poison type: produced by ill-typed expressions, swallows cascades."""

    def __str__(self) -> str:
        return "<error>"


INT = TInt()
FLOAT = TFloat()
BOOL = TBool()
CHAR = TChar()
VOID = TVoid()
STRING = TString()
ERROR = TError()


def is_error(t: Type) -> bool:
    return isinstance(t, TError)


def unify_arith(lhs: Type, rhs: Type) -> Type | None:
    """Result type of scalar arithmetic, or None if inapplicable."""
    if is_error(lhs) or is_error(rhs):
        return ERROR
    if isinstance(lhs, (TInt, TBool)) and isinstance(rhs, (TInt, TBool)):
        return INT
    if isinstance(lhs, (TInt, TFloat, TBool)) and isinstance(rhs, (TInt, TFloat, TBool)):
        return FLOAT
    return None


def assignable(target: Type, value: Type) -> bool:
    """Scalar assignment compatibility (int<->float coerce, as in C)."""
    if is_error(target) or is_error(value):
        return True
    if target == value:
        return True
    if isinstance(target, (TInt, TFloat)) and isinstance(value, (TInt, TFloat, TBool)):
        return True
    if isinstance(target, TBool) and isinstance(value, (TInt, TBool)):
        return True
    if isinstance(target, (TString, TPointer)) and value == STRING:
        return True
    if isinstance(target, TTuple) and isinstance(value, TTuple):
        return len(target.elems) == len(value.elems) and all(
            assignable(t, v) for t, v in zip(target.elems, value.elems)
        )
    return False


# --- operator overloading -------------------------------------------------------

# An overload handler: (op, lhs_type, rhs_type, decorated_node) -> result
# Type, or None to decline.  For unary ops rhs_type is None.
TypeHandler = Callable[[str, Type, "Type | None", Any], "Type | None"]
# A lowering handler: (op, decorated_node) -> lowered Node, or None.
LowerHandler = Callable[[str, Any], Any]


@dataclass
class OverloadTable:
    """Extensible dispatch for operators and assignment on non-host types.

    The host consults ``type_handlers`` during type checking and
    ``lower_handlers`` during translation whenever an operand's type is not
    a plain scalar.  Extensions (matrix, tuples) register handlers keyed by
    the extension name so diagnostics can say who is responsible.
    """

    type_handlers: list[tuple[str, TypeHandler]] = field(default_factory=list)
    lower_handlers: list[tuple[str, LowerHandler]] = field(default_factory=list)

    def register_types(self, origin: str, handler: TypeHandler) -> None:
        self.type_handlers.append((origin, handler))

    def register_lowering(self, origin: str, handler: LowerHandler) -> None:
        self.lower_handlers.append((origin, handler))

    def resolve_type(self, op: str, lhs: Type, rhs: Type | None, node: Any) -> Type | None:
        for _origin, h in self.type_handlers:
            result = h(op, lhs, rhs, node)
            if result is not None:
                return result
        return None

    def resolve_lowering(self, op: str, node: Any) -> Any | None:
        for _origin, h in self.lower_handlers:
            result = h(op, node)
            if result is not None:
                return result
        return None
