"""CMINUS abstract syntax: nonterminals and abstract productions.

The host AST doubles as the plain-C target language: extension constructs
*forward* to trees built from these productions, so a fully lowered tree
contains only host nodes and can be pretty-printed as C or executed by the
interpreter.

Sequences are cons-lists (``stmtCons``/``stmtNil`` …) so that inherited
attributes (environments) flow left-to-right through them, as in Silver.

Leaf children are tagged ``#...`` in signatures: ``#name``/``#op`` are
strings, ``#value`` literals, ``#names`` a list of strings.
"""

from __future__ import annotations

from typing import Any

from repro.ag.core import AGSpec
from repro.ag.tree import Node

HOST = "cminus"


def declare_absyn(ag: AGSpec) -> None:
    """Declare all host nonterminals and abstract productions on ``ag``."""
    for nt in [
        "Root", "TU", "ExtDecl", "Params", "Param", "StmtList", "Stmt",
        "ForInit", "Expr", "ExprList", "IndexList", "Index", "TypeExpr",
        "TypeList",
    ]:
        ag.nonterminal(nt, origin=HOST)

    P = ag.abstract_production
    # -- top level ------------------------------------------------------------
    P("root", "Root", ["TU"], origin=HOST)
    P("tuCons", "TU", ["ExtDecl", "TU"], origin=HOST)
    P("tuNil", "TU", [], origin=HOST)
    P("funcDef", "ExtDecl", ["TypeExpr", "#name", "Params", "Stmt"], origin=HOST)
    P("paramCons", "Params", ["Param", "Params"], origin=HOST)
    P("paramNil", "Params", [], origin=HOST)
    P("param", "Param", ["TypeExpr", "#name"], origin=HOST)

    # -- statements --------------------------------------------------------------
    P("block", "Stmt", ["StmtList"], origin=HOST)
    P("stmtCons", "StmtList", ["Stmt", "StmtList"], origin=HOST)
    P("stmtNil", "StmtList", [], origin=HOST)
    P("decl", "Stmt", ["TypeExpr", "#name"], origin=HOST)
    P("declInit", "Stmt", ["TypeExpr", "#name", "Expr"], origin=HOST)
    P("exprStmt", "Stmt", ["Expr"], origin=HOST)
    P("ifStmt", "Stmt", ["Expr", "Stmt"], origin=HOST)
    P("ifElse", "Stmt", ["Expr", "Stmt", "Stmt"], origin=HOST)
    P("whileStmt", "Stmt", ["Expr", "Stmt"], origin=HOST)
    P("doWhile", "Stmt", ["Stmt", "Expr"], origin=HOST)
    P("forStmt", "Stmt", ["ForInit", "Expr", "Expr", "Stmt"], origin=HOST)
    P("forDecl", "ForInit", ["TypeExpr", "#name", "Expr"], origin=HOST)
    P("forExpr", "ForInit", ["Expr"], origin=HOST)
    P("returnStmt", "Stmt", ["Expr"], origin=HOST)
    P("returnVoid", "Stmt", [], origin=HOST)
    P("breakStmt", "Stmt", [], origin=HOST)
    P("continueStmt", "Stmt", [], origin=HOST)
    # Raw C statement (used by lowerings for runtime calls with odd shapes
    # and by the transform extension for pragmas).
    P("rawStmt", "Stmt", ["#text"], origin=HOST)
    # A statement sequence printed without braces: lowering may expand one
    # statement into several (hoisted loops, refcount ops) without opening
    # a new C scope.
    P("seqStmt", "Stmt", ["StmtList"], origin=HOST)

    # -- expressions -----------------------------------------------------------------
    P("intLit", "Expr", ["#value"], origin=HOST)
    P("floatLit", "Expr", ["#value"], origin=HOST)
    P("boolLit", "Expr", ["#value"], origin=HOST)
    P("strLit", "Expr", ["#value"], origin=HOST)
    P("var", "Expr", ["#name"], origin=HOST)
    P("binop", "Expr", ["#op", "Expr", "Expr"], origin=HOST)
    P("unop", "Expr", ["#op", "Expr"], origin=HOST)
    P("assign", "Expr", ["Expr", "Expr"], origin=HOST)
    P("call", "Expr", ["#name", "ExprList"], origin=HOST)
    P("index", "Expr", ["Expr", "IndexList"], origin=HOST)
    P("castE", "Expr", ["TypeExpr", "Expr"], origin=HOST)
    # Host-packaged syntax with extension-supplied semantics (§VI-A: such
    # constructs fail the determinism analysis and ship with the host, like
    # the tuples extension in the paper):
    P("rangeE", "Expr", ["Expr", "Expr"], origin=HOST)      # a :: b
    P("endE", "Expr", [], origin=HOST)                       # `end` in indexes
    P("tupleE", "Expr", ["ExprList"], origin=HOST)           # (a, b, c)
    P("rawExpr", "Expr", ["#text"], origin=HOST)             # codegen escape

    P("eCons", "ExprList", ["Expr", "ExprList"], origin=HOST)
    P("eNil", "ExprList", [], origin=HOST)

    # -- indexing ------------------------------------------------------------------
    P("idxCons", "IndexList", ["Index", "IndexList"], origin=HOST)
    P("idxNil", "IndexList", [], origin=HOST)
    P("idxExpr", "Index", ["Expr"], origin=HOST)
    P("idxRange", "Index", ["Expr", "Expr"], origin=HOST)    # a : b
    P("idxAll", "Index", [], origin=HOST)                    # :

    # -- types --------------------------------------------------------------------
    P("tInt", "TypeExpr", [], origin=HOST)
    P("tFloat", "TypeExpr", [], origin=HOST)
    P("tBool", "TypeExpr", [], origin=HOST)
    P("tChar", "TypeExpr", [], origin=HOST)
    P("tVoid", "TypeExpr", [], origin=HOST)
    P("tPtr", "TypeExpr", ["TypeExpr"], origin=HOST)
    P("tTuple", "TypeExpr", ["TypeList"], origin=HOST)       # (int, float)
    P("tRaw", "TypeExpr", ["#text"], origin=HOST)            # codegen escape
    P("tCons", "TypeList", ["TypeExpr", "TypeList"], origin=HOST)
    P("tNil", "TypeList", [], origin=HOST)


class Mk:
    """Ergonomic node builders: ``mk.binop("+", a, b)`` etc."""

    def __init__(self, ag: AGSpec):
        self._ag = ag

    def __getattr__(self, prod: str):
        def build(*children: Any, span=None) -> Node:
            return self._ag.make(prod, list(children), span)

        build.__name__ = prod
        return build

    # -- list helpers ------------------------------------------------------------

    def expr_list(self, items: list[Any]) -> Node:
        out = self._ag.make("eNil", [])
        for item in reversed(items):
            out = self._ag.make("eCons", [item, out])
        return out

    def stmt_list(self, items: list[Any]) -> Node:
        out = self._ag.make("stmtNil", [])
        for item in reversed(items):
            out = self._ag.make("stmtCons", [item, out])
        return out

    def idx_list(self, items: list[Any]) -> Node:
        out = self._ag.make("idxNil", [])
        for item in reversed(items):
            out = self._ag.make("idxCons", [item, out])
        return out

    def param_list(self, items: list[Any]) -> Node:
        out = self._ag.make("paramNil", [])
        for item in reversed(items):
            out = self._ag.make("paramCons", [item, out])
        return out

    def type_list(self, items: list[Any]) -> Node:
        out = self._ag.make("tNil", [])
        for item in reversed(items):
            out = self._ag.make("tCons", [item, out])
        return out

    def tu(self, decls: list[Any]) -> Node:
        out = self._ag.make("tuNil", [])
        for d in reversed(decls):
            out = self._ag.make("tuCons", [d, out])
        return out

    def body(self, stmts: list[Any]) -> Node:
        return self._ag.make("block", [self.stmt_list(stmts)])


def cons_to_list(dn) -> list:
    """Flatten a decorated cons-list node into decorated element views."""
    out = []
    while len(dn.node.children) == 2:
        out.append(dn.child(0))
        dn = dn.child(1)
    return out


def node_cons_to_list(node: Node) -> list:
    """Flatten an *undecorated* cons-list node into element nodes."""
    out = []
    while len(node.children) == 2:
        out.append(node.children[0])
        node = node.children[1]
    return out
