"""CMINUS concrete syntax: terminals and LALR(1) productions with actions.

The grammar follows the classic C expression stratification (assignment >
logical > equality > relational > additive > multiplicative > cast > unary
> postfix > primary) with three *host-packaged* generalizations whose
semantics are supplied by extensions (see DESIGN.md and §VI-A of the
paper — syntax that cannot pass the modular determinism analysis ships
with the host, exactly as the paper does for tuples):

* multi-index postfix indexing with ranges: ``m[i, 0:4, :, end-1]``;
* the range expression ``a :: b``;
* elementwise multiplication ``.*``;
* tuple expressions ``(a, b, c)`` and tuple types ``(int, float) t``.
"""

from __future__ import annotations

from repro.ag.core import AGSpec
from repro.cminus.absyn import HOST, Mk, declare_absyn
from repro.grammar.cfg import PASS, GrammarSpec

# Module-level singletons: the host AG spec and its node builders.  Parser
# actions close over `mk`; extension modules import `mk` to build host
# trees in their forwards/lowerings.
HOST_AG = AGSpec(HOST)
declare_absyn(HOST_AG)
mk = Mk(HOST_AG)

# Terminals the host prefers to shift on (dangling else).
PREFER_SHIFT = frozenset({"Else"})


def _terminals(g: GrammarSpec) -> None:
    t = g.terminal
    t("WS", r"[ \t\r\n]+", layout=True)
    t("LineComment", r"//[^\n]*", layout=True)
    t("BlockComment", r"/\*([^*]|\*+[^*/])*\*+/", layout=True)

    t("Identifier", r"[a-zA-Z_]\w*")
    t("FloatLit", r"\d+\.\d+([eE][+-]?\d+)?|\d+[eE][+-]?\d+")
    t("IntLit", r"\d+")
    t("StringLit", r'"([^"\\\n]|\\.)*"')

    for kw in ["int", "float", "bool", "char", "void", "if", "else", "while",
               "do", "for", "return", "break", "continue", "true", "false",
               "end"]:
        t(kw.capitalize(), kw, keyword=True)

    t("PlusEq", r"\+="); t("MinusEq", "-=")
    t("OrOr", r"\|\|"); t("AndAnd", "&&")
    t("EqEq", "=="); t("BangEq", "!=")
    t("Le", "<="); t("Ge", ">=")
    t("ColonColon", "::"); t("Colon", ":")
    t("DotTimes", r"\.\*")
    t("Plus", r"\+"); t("Minus", "-"); t("Times", r"\*")
    t("Div", "/"); t("Mod", "%")
    t("Lt", "<"); t("Gt", ">")
    t("Bang", "!"); t("Eq", "=")
    t("Semi", ";"); t("Comma", ",")
    t("LParen", r"\("); t("RParen", r"\)")
    t("LBracket", r"\["); t("RBracket", r"\]")
    t("LBrace", r"\{"); t("RBrace", r"\}")


def _unescape(s: str) -> str:
    return (
        s[1:-1]
        .replace(r"\n", "\n").replace(r"\t", "\t").replace(r"\\", "\\")
        .replace(r"\"", '"')
    )


def build_host_grammar() -> GrammarSpec:
    g = GrammarSpec(HOST, start="Root")
    _terminals(g)
    p = g.production

    # -- top level ---------------------------------------------------------------
    p("Root ::= TU", lambda c: mk.root(c[0]))
    p("TU ::= ExtDecl TU", lambda c: mk.tuCons(c[0], c[1]))
    p("TU ::=", lambda c: mk.tuNil())
    p("ExtDecl ::= TypeExpr Identifier LParen ParamsOpt RParen Block",
      lambda c: mk.funcDef(c[0], c[1].lexeme, c[3], c[5]))
    p("ParamsOpt ::=", lambda c: mk.paramNil())
    p("ParamsOpt ::= Params", lambda c: mk.param_list(c[0]))
    p("Params ::= ParamDecl", lambda c: [c[0]])
    p("Params ::= ParamDecl Comma Params", lambda c: [c[0]] + c[2])
    p("ParamDecl ::= TypeExpr Identifier", lambda c: mk.param(c[0], c[1].lexeme))

    # -- statements ----------------------------------------------------------------
    p("Block ::= LBrace StmtList RBrace", lambda c: mk.block(c[1]))
    p("StmtList ::= Stmt StmtList", lambda c: mk.stmtCons(c[0], c[1]))
    p("StmtList ::=", lambda c: mk.stmtNil())
    p("Stmt ::= Block", PASS)
    p("Stmt ::= Decl Semi", PASS)
    p("Stmt ::= Expr Semi", lambda c: mk.exprStmt(c[0]))
    p("Stmt ::= If LParen Expr RParen Stmt", lambda c: mk.ifStmt(c[2], c[4]))
    p("Stmt ::= If LParen Expr RParen Stmt Else Stmt",
      lambda c: mk.ifElse(c[2], c[4], c[6]))
    p("Stmt ::= While LParen Expr RParen Stmt", lambda c: mk.whileStmt(c[2], c[4]))
    p("Stmt ::= Do Stmt While LParen Expr RParen Semi",
      lambda c: mk.doWhile(c[1], c[4]))
    p("Stmt ::= For LParen ForInit Semi Expr Semi Expr RParen Stmt",
      lambda c: mk.forStmt(c[2], c[4], c[6], c[8]))
    p("Stmt ::= Return Expr Semi", lambda c: mk.returnStmt(c[1]))
    p("Stmt ::= Return Semi", lambda c: mk.returnVoid())
    p("Stmt ::= Break Semi", lambda c: mk.breakStmt())
    p("Stmt ::= Continue Semi", lambda c: mk.continueStmt())
    p("Decl ::= TypeExpr Identifier", lambda c: mk.decl(c[0], c[1].lexeme))
    p("Decl ::= TypeExpr Identifier Eq Expr",
      lambda c: mk.declInit(c[0], c[1].lexeme, c[3]))
    p("ForInit ::= TypeExpr Identifier Eq Expr",
      lambda c: mk.forDecl(c[0], c[1].lexeme, c[3]))
    p("ForInit ::= Expr", lambda c: mk.forExpr(c[0]))

    # -- expressions ------------------------------------------------------------------
    p("Expr ::= AssignExpr", PASS)
    p("AssignExpr ::= OrExpr", PASS)
    p("AssignExpr ::= UnaryExpr Eq AssignExpr", lambda c: mk.assign(c[0], c[2]))
    p("AssignExpr ::= UnaryExpr PlusEq AssignExpr",
      lambda c: mk.assign(c[0], mk.binop("+", c[0], c[2])))
    p("AssignExpr ::= UnaryExpr MinusEq AssignExpr",
      lambda c: mk.assign(c[0], mk.binop("-", c[0], c[2])))

    def binop_rule(rule: str, op: str) -> None:
        p(rule, lambda c, op=op: mk.binop(op, c[0], c[2]))

    binop_rule("OrExpr ::= OrExpr OrOr AndExpr", "||")
    p("OrExpr ::= AndExpr", PASS)
    binop_rule("AndExpr ::= AndExpr AndAnd EqExpr", "&&")
    p("AndExpr ::= EqExpr", PASS)
    binop_rule("EqExpr ::= EqExpr EqEq RelExpr", "==")
    binop_rule("EqExpr ::= EqExpr BangEq RelExpr", "!=")
    p("EqExpr ::= RelExpr", PASS)
    binop_rule("RelExpr ::= RelExpr Lt RangeExpr", "<")
    binop_rule("RelExpr ::= RelExpr Le RangeExpr", "<=")
    binop_rule("RelExpr ::= RelExpr Gt RangeExpr", ">")
    binop_rule("RelExpr ::= RelExpr Ge RangeExpr", ">=")
    p("RelExpr ::= RangeExpr", PASS)
    p("RangeExpr ::= AddExpr ColonColon AddExpr", lambda c: mk.rangeE(c[0], c[2]))
    p("RangeExpr ::= AddExpr", PASS)
    binop_rule("AddExpr ::= AddExpr Plus MulExpr", "+")
    binop_rule("AddExpr ::= AddExpr Minus MulExpr", "-")
    p("AddExpr ::= MulExpr", PASS)
    binop_rule("MulExpr ::= MulExpr Times CastExpr", "*")
    binop_rule("MulExpr ::= MulExpr Div CastExpr", "/")
    binop_rule("MulExpr ::= MulExpr Mod CastExpr", "%")
    binop_rule("MulExpr ::= MulExpr DotTimes CastExpr", ".*")
    p("MulExpr ::= CastExpr", PASS)
    p("CastExpr ::= LParen TypeExpr RParen CastExpr", lambda c: mk.castE(c[1], c[3]))
    p("CastExpr ::= UnaryExpr", PASS)
    p("UnaryExpr ::= Minus UnaryExpr", lambda c: mk.unop("-", c[1]))
    p("UnaryExpr ::= Bang UnaryExpr", lambda c: mk.unop("!", c[1]))
    p("UnaryExpr ::= PostfixExpr", PASS)
    p("PostfixExpr ::= PostfixExpr LBracket IndexList RBracket",
      lambda c: mk.index(c[0], mk.idx_list(c[2])))
    p("PostfixExpr ::= Identifier LParen ArgsOpt RParen",
      lambda c: mk.call(c[0].lexeme, mk.expr_list(c[2])))
    p("PostfixExpr ::= Primary", PASS)
    p("Primary ::= Identifier", lambda c: mk.var(c[0].lexeme))
    p("Primary ::= IntLit", lambda c: mk.intLit(int(c[0].lexeme)))
    p("Primary ::= FloatLit", lambda c: mk.floatLit(float(c[0].lexeme)))
    p("Primary ::= True", lambda c: mk.boolLit(True))
    p("Primary ::= False", lambda c: mk.boolLit(False))
    p("Primary ::= StringLit", lambda c: mk.strLit(_unescape(c[0].lexeme)))
    p("Primary ::= End", lambda c: mk.endE())
    p("Primary ::= LParen Expr RParen", lambda c: c[1])
    # Host-packaged tuple syntax (paper §VI-A: tuples fail isComposable).
    p("Primary ::= LParen Expr Comma Args RParen",
      lambda c: mk.tupleE(mk.expr_list([c[1]] + c[3])))

    p("ArgsOpt ::=", lambda c: [])
    p("ArgsOpt ::= Args", PASS)
    p("Args ::= Expr", lambda c: [c[0]])
    p("Args ::= Expr Comma Args", lambda c: [c[0]] + c[2])

    # -- indexing --------------------------------------------------------------------
    p("IndexList ::= Index", lambda c: [c[0]])
    p("IndexList ::= Index Comma IndexList", lambda c: [c[0]] + c[2])
    p("Index ::= Expr", lambda c: mk.idxExpr(c[0]))
    p("Index ::= Expr Colon Expr", lambda c: mk.idxRange(c[0], c[2]))
    p("Index ::= Colon", lambda c: mk.idxAll())

    # -- types ------------------------------------------------------------------------
    p("TypeExpr ::= BaseType", PASS)
    p("TypeExpr ::= TypeExpr Times", lambda c: mk.tPtr(c[0]))
    p("BaseType ::= Int", lambda c: mk.tInt())
    p("BaseType ::= Float", lambda c: mk.tFloat())
    p("BaseType ::= Bool", lambda c: mk.tBool())
    p("BaseType ::= Char", lambda c: mk.tChar())
    p("BaseType ::= Void", lambda c: mk.tVoid())
    # Host-packaged tuple types: (int, float) — at least two members.
    p("BaseType ::= LParen TypeExpr Comma TypeListTail RParen",
      lambda c: mk.tTuple(mk.type_list([c[1]] + c[3])))
    p("TypeListTail ::= TypeExpr", lambda c: [c[0]])
    p("TypeListTail ::= TypeExpr Comma TypeListTail", lambda c: [c[0]] + c[2])

    return g
