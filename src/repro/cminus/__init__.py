"""The CMINUS host language: a rather complete subset of ANSI C (§III).

Concrete syntax (grammar.py), abstract syntax (absyn.py), types
(types.py), scoped environments (env.py), semantic analysis (sema.py),
lowering (lower.py), and the C pretty-printer (pp.py), assembled into a
:class:`~repro.driver.LanguageModule` by module.py.
"""

from repro.cminus.env import Binding, CompileContext, Env, Optimizations
from repro.cminus.types import (
    BOOL, CHAR, ERROR, FLOAT, INT, STRING, VOID,
    OverloadTable, TBool, TChar, TError, TFloat, TFunc, TInt, TPointer,
    TString, TTuple, TVoid, Type,
)

__all__ = [
    "BOOL", "Binding", "CHAR", "CompileContext", "ERROR", "Env", "FLOAT",
    "INT", "Optimizations", "OverloadTable", "STRING", "TBool", "TChar",
    "TError", "TFloat", "TFunc", "TInt", "TPointer", "TString", "TTuple",
    "TVoid", "Type", "VOID",
]
