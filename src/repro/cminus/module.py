"""Assembly of the CMINUS host language module (install-once)."""

from __future__ import annotations

from functools import lru_cache

from repro.cminus import lower, sema
from repro.cminus.env import Binding
from repro.cminus.grammar import HOST_AG, PREFER_SHIFT, build_host_grammar
from repro.cminus.types import FLOAT, INT, TFunc, VOID
from repro.driver import LanguageModule


@lru_cache(maxsize=1)
def host_module() -> LanguageModule:
    sema.install()
    lower.install()
    builtins = [
        Binding("printInt", TFunc((INT,), VOID), "func"),
        Binding("printFloat", TFunc((FLOAT,), VOID), "func"),
    ]
    return LanguageModule(
        name="cminus",
        grammar=build_host_grammar(),
        ag=HOST_AG,
        builtins=builtins,
        prefer_shift=PREFER_SHIFT,
    )
