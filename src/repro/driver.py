"""The translator driver: compose host + chosen extensions, run pipeline.

This is the paper's §II workflow: the programmer picks a set of language
extensions; the "compiler-generating tools" compose their specifications
with the host and produce a custom translator.  :class:`Translator` is
that generated translator: it scans/parses with the composed grammar,
decorates the tree with the composed attribute grammar, reports
domain-specific errors, and emits plain parallel C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ag.core import AGSpec
from repro.ag.eval import decorate
from repro.ag.tree import Node
from repro.cminus.env import Binding, CompileContext, Env, Optimizations
from repro.cminus.types import VOID
from repro.grammar.cfg import GrammarSpec
from repro.parsing.parser import Parser


@dataclass
class LanguageModule:
    """A composable language-extension (or host) specification bundle."""

    name: str
    grammar: GrammarSpec
    ag: AGSpec
    builtins: list[Binding] = field(default_factory=list)
    # Called with the fresh CompileContext before decoration; registers
    # operator overload handlers, refcount hooks, etc.
    context_hooks: list[Callable[[CompileContext], None]] = field(default_factory=list)
    prefer_shift: frozenset[str] = frozenset()
    requires: tuple[str, ...] = ()
    # Names of runtime features this module's lowerings may request.
    runtime_features: tuple[str, ...] = ()


class CompileError(Exception):
    def __init__(self, errors: list[str]):
        self.errors = errors
        super().__init__("\n".join(errors))


@dataclass
class CompileResult:
    source: str
    root: Node
    errors: list[str]
    lowered: Node | None
    c_source: str | None
    ctx: CompileContext
    _bytecode: object = field(default=None, init=False, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return not self.errors

    def bytecode(self):
        """The compiled :class:`~repro.cexec.bytecode.BytecodeProgram`
        for this result, built once and shared — many VMs (e.g. one per
        test or per input set) can execute it without recompiling."""
        if not self.ok:
            raise CompileError(self.errors)
        if self._bytecode is None:
            from repro.cexec.bytecode import BytecodeProgram

            self._bytecode = BytecodeProgram(self.lowered, self.ctx)
        return self._bytecode

    def make_engine(self, *, engine: str = "vm", workdir: str = ".",
                    nthreads: int | None = None, fork_mode: str = "enhanced",
                    parallel_backend: str | None = None,
                    profile: bool = False):
        """A ready-to-run executor for this compile result.

        ``engine="vm"`` reuses the memoized :meth:`bytecode` program (so
        repeated engines skip recompilation); ``"tree"`` builds the
        reference interpreter.  ``nthreads`` sizes the VM's S23 fork-join
        pool, ``None`` deferring to ``REPRO_THREADS`` (default 1);
        ``parallel_backend`` picks thread/process/auto shard execution
        (``None`` defers to ``REPRO_PARALLEL_BACKEND``); call
        ``close()`` on the executor to release the pools."""
        from repro.cexec.interp import make_engine as _make_engine
        from repro.cexec.parallel import resolve_nthreads

        if not self.ok:
            raise CompileError(self.errors)
        program = self.bytecode() if engine in ("vm", "bytecode") else None
        return _make_engine(self.lowered, self.ctx, engine=engine,
                            workdir=workdir,
                            nthreads=resolve_nthreads(nthreads),
                            fork_mode=fork_mode, program=program,
                            parallel_backend=parallel_backend,
                            profile=profile)


class Translator:
    """A custom translator generated from host + extension modules.

    Thread safety: a constructed translator is immutable — grammar, parse
    tables, scanner DFA and AG spec are read-only after ``__init__`` —
    and every ``compile()``/``parse()``/``decorate()`` call keeps its
    mutable state (parser stacks, scan position, :class:`CompileContext`,
    decorated-tree caches) local to the call, so one translator may serve
    concurrent compiles (see ``tests/service/test_concurrency.py``).
    """

    def __init__(
        self,
        modules: list[LanguageModule],
        *,
        options: Optimizations | None = None,
        nthreads: int = 4,
        parser_factory: Callable[[GrammarSpec, frozenset[str]], Parser] | None = None,
    ):
        if not modules:
            raise ValueError("need at least the host module")
        self.modules = resolve_dependencies(modules)
        self.options = options or Optimizations()
        self.nthreads = nthreads

        host, *exts = self.modules
        spec = host.grammar.compose(*(e.grammar for e in exts))
        self.ag: AGSpec = host.ag.compose(*(e.ag for e in exts)) if exts else host.ag
        self.prefer_shift = frozenset().union(*(m.prefer_shift for m in self.modules))
        # The compilation service passes a factory that restores LALR tables
        # and the scanner DFA from the persistent artifact cache instead of
        # regenerating them (see repro.service.artifacts).
        if parser_factory is not None:
            self.parser = parser_factory(spec, self.prefer_shift)
        else:
            self.parser = Parser(spec.build(), prefer_shift=self.prefer_shift)
        self.grammar = self.parser.grammar
        self.builtins = [b for m in self.modules for b in m.builtins]

    # -- pipeline -----------------------------------------------------------------

    def parse(self, source: str, filename: str = "<input>") -> Node:
        return self.parser.parse(source, filename)

    def fresh_context(self) -> CompileContext:
        ctx = CompileContext(options=self.options)
        ctx.nthreads = self.nthreads
        for m in self.modules:
            for hook in m.context_hooks:
                hook(ctx)
        return ctx

    def decorate(self, root: Node, ctx: CompileContext | None = None):
        ctx = ctx or self.fresh_context()
        env = Env({b.name: b for b in self.builtins})
        return decorate(
            self.ag,
            root,
            {
                "env": env,
                "ctx": ctx,
                "in_index": False,
                "in_loop": False,
                "fun_ret": VOID,
            },
        ), ctx

    def compile(
        self, source: str, filename: str = "<input>", *, check_only: bool = False
    ) -> CompileResult:
        root = self.parse(source, filename)
        dn, ctx = self.decorate(root)
        errors = list(dn.att("errors"))
        if errors or check_only:
            return CompileResult(source, root, errors, None, None, ctx)
        lowered = dn.att("lowered")
        c_source = self.emit_c(lowered, ctx)
        return CompileResult(source, root, errors, lowered, c_source, ctx)

    def compile_or_raise(self, source: str, filename: str = "<input>") -> CompileResult:
        result = self.compile(source, filename)
        if not result.ok:
            raise CompileError(result.errors)
        return result

    # -- C assembly ------------------------------------------------------------------

    def emit_c(self, lowered: Node, ctx: CompileContext) -> str:
        from repro.codegen.emit import assemble_c_program

        return assemble_c_program(lowered, ctx)


def resolve_dependencies(modules: list[LanguageModule]) -> list[LanguageModule]:
    """Add required modules (by registry name) and order host-first."""
    from repro.api import module_registry

    registry = module_registry()
    by_name = {m.name: m for m in modules}
    order: list[LanguageModule] = []
    visiting: set[str] = set()

    def visit(m: LanguageModule) -> None:
        if m.name in visiting:
            return
        visiting.add(m.name)
        for dep in m.requires:
            dep_mod = by_name.get(dep) or registry.get(dep)
            if dep_mod is None:
                raise ValueError(f"module {m.name!r} requires unknown module {dep!r}")
            by_name.setdefault(dep, dep_mod)
            visit(dep_mod)
        if m not in order:
            order.append(m)

    for m in list(modules):
        visit(m)
    # Host (no requirements, name "cminus") must come first.
    order.sort(key=lambda m: 0 if m.name == "cminus" else 1)
    return order
