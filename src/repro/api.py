"""Public API: module registry and convenience entry points.

>>> from repro.api import compile_source, MATRIX, TRANSFORM
>>> result = compile_source(program_text, extensions=[MATRIX, TRANSFORM])
>>> print(result.c_source)

Extension names: ``"matrix"``, ``"tuples"`` (always packaged with the
host, see §VI-A), ``"refcount"``, ``"transform"``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cminus.env import Optimizations
from repro.driver import CompileError, CompileResult, LanguageModule, Translator

MATRIX = "matrix"
TUPLES = "tuples"
REFCOUNT = "refcount"
TRANSFORM = "transform"
CILK = "cilk"


@lru_cache(maxsize=1)
def _registry() -> dict[str, LanguageModule]:
    # Imports deferred: each module file installs its AG declarations on
    # first import.
    from repro.cminus.module import host_module
    from repro.exts.cilk import cilk_module
    from repro.exts.matrix import matrix_module
    from repro.exts.refcount import refcount_module
    from repro.exts.transform import transform_module
    from repro.exts.tuples import tuples_module

    from repro.exts.unrolljam import unrolljam_module

    mods = [
        host_module(),
        tuples_module(),
        refcount_module(),
        matrix_module(),
        transform_module(),
        cilk_module(),
        unrolljam_module(),
    ]
    return {m.name: m for m in mods}


def module_registry() -> dict[str, LanguageModule]:
    return _registry()


def host_only() -> list[LanguageModule]:
    reg = module_registry()
    # Tuples are packaged with the host (they fail the determinism
    # analysis, §VI-A) — exactly as the paper does.
    return [reg["cminus"], reg["tuples"]]


def make_translator(
    extensions: list[str] | None = None,
    *,
    options: Optimizations | None = None,
    nthreads: int = 4,
) -> Translator:
    """Generate a custom translator for the chosen extension set."""
    reg = module_registry()
    modules = host_only()
    for name in extensions or []:
        if name in ("cminus", "tuples"):
            continue
        if name not in reg:
            raise ValueError(f"unknown extension {name!r}; have {sorted(reg)}")
        modules.append(reg[name])
    return Translator(modules, options=options, nthreads=nthreads)


def compile_source(
    source: str,
    extensions: list[str] | None = None,
    *,
    options: Optimizations | None = None,
    nthreads: int = 4,
    filename: str = "<input>",
) -> CompileResult:
    """One-shot compile with a fresh translator."""
    t = make_translator(extensions, options=options, nthreads=nthreads)
    return t.compile(source, filename)


__all__ = [
    "CompileError",
    "CompileResult",
    "MATRIX",
    "Optimizations",
    "REFCOUNT",
    "TRANSFORM",
    "TUPLES",
    "Translator",
    "compile_source",
    "host_only",
    "make_translator",
    "module_registry",
]
