"""Public API: module registry and convenience entry points.

>>> from repro.api import compile_source, MATRIX, TRANSFORM
>>> result = compile_source(program_text, extensions=[MATRIX, TRANSFORM])
>>> print(result.c_source)

Extension names: ``"matrix"``, ``"tuples"`` (always packaged with the
host, see §VI-A), ``"refcount"``, ``"transform"``.
"""

from __future__ import annotations

import threading
from functools import lru_cache

from repro.cminus.env import Optimizations
from repro.driver import CompileError, CompileResult, LanguageModule, Translator

MATRIX = "matrix"
TUPLES = "tuples"
REFCOUNT = "refcount"
TRANSFORM = "transform"
CILK = "cilk"


# Module construction runs one-time AG installation steps guarded by plain
# check-then-set flags; lru_cache alone would let two threads racing into a
# cold registry both execute the constructors and observe half-installed
# specs.  The lock serializes first construction; after that every caller
# gets the cached dict without contention.
_registry_lock = threading.Lock()


def _registry() -> dict[str, LanguageModule]:
    with _registry_lock:
        return _build_registry()


@lru_cache(maxsize=1)
def _build_registry() -> dict[str, LanguageModule]:
    # Imports deferred: each module file installs its AG declarations on
    # first import.
    from repro.cminus.module import host_module
    from repro.exts.cilk import cilk_module
    from repro.exts.matrix import matrix_module
    from repro.exts.refcount import refcount_module
    from repro.exts.transform import transform_module
    from repro.exts.tuples import tuples_module

    from repro.exts.unrolljam import unrolljam_module

    mods = [
        host_module(),
        tuples_module(),
        refcount_module(),
        matrix_module(),
        transform_module(),
        cilk_module(),
        unrolljam_module(),
    ]
    return {m.name: m for m in mods}


def module_registry() -> dict[str, LanguageModule]:
    return _registry()


def host_only() -> list[LanguageModule]:
    reg = module_registry()
    # Tuples are packaged with the host (they fail the determinism
    # analysis, §VI-A) — exactly as the paper does.
    return [reg["cminus"], reg["tuples"]]


def make_translator(
    extensions: list[str] | None = None,
    *,
    options: Optimizations | None = None,
    nthreads: int = 4,
    fresh: bool = False,
) -> Translator:
    """The custom translator for the chosen extension set.

    Served from the process-wide translator cache (S21): repeated calls
    with an equivalent configuration — same extensions, optimization
    flags and thread count — return one shared, reentrant translator,
    and cold builds restore parse tables / scanner DFAs from the
    persistent artifact cache when possible.  ``fresh=True`` bypasses
    the cache and regenerates everything (benchmarks, isolation).
    """
    if fresh:
        reg = module_registry()
        modules = host_only()
        for name in extensions or []:
            if name in ("cminus", "tuples"):
                continue
            if name not in reg:
                raise ValueError(f"unknown extension {name!r}; have {sorted(reg)}")
            modules.append(reg[name])
        return Translator(modules, options=options, nthreads=nthreads)
    from repro.service.cache import shared_cache

    return shared_cache().get(extensions, options=options, nthreads=nthreads)


def compile_source(
    source: str,
    extensions: list[str] | None = None,
    *,
    options: Optimizations | None = None,
    nthreads: int = 4,
    filename: str = "<input>",
) -> CompileResult:
    """One-shot compile through the shared translator cache."""
    t = make_translator(extensions, options=options, nthreads=nthreads)
    return t.compile(source, filename)


def run_source(
    source: str,
    extensions: list[str] | None = None,
    inputs=None,
    *,
    engine: str = "vm",
    workdir=None,
    output_names: list[str] | None = None,
    nthreads: int | None = None,
    options: Optimizations | None = None,
    fork_mode: str = "enhanced",
    parallel_backend: str | None = None,
):
    """Translate and execute on a Python engine in one call.

    ``engine="vm"`` (default) runs the register-bytecode VM with
    numpy-batched loops; ``engine="tree"`` runs the tree-walking
    reference interpreter.  Returns ``(rc, outputs, stats, executor)``
    — see :func:`repro.cexec.interp.run_program`.

    ``nthreads`` sizes the VM's fork-join worker pool (S23); ``None``
    defers to the ``REPRO_THREADS`` environment variable, defaulting to
    sequential.  ``parallel_backend`` selects shard execution:
    ``"thread"`` (in-process pool), ``"process"`` (S27 shared-memory
    process pool, safety-gated with thread fallback) or ``"auto"``
    (process when eligible); ``None`` defers to
    ``REPRO_PARALLEL_BACKEND``.  Parallel runs are observationally
    identical to sequential ones on every backend.
    ``fork_mode="naive"`` selects the measured-overhead
    spawn-per-construct comparison model (benchmarks only).
    """
    from repro.cexec.interp import run_program

    return run_program(
        source,
        list(extensions or []),
        inputs,
        workdir=workdir,
        output_names=output_names,
        nthreads=nthreads,
        options=options,
        engine=engine,
        fork_mode=fork_mode,
        parallel_backend=parallel_backend,
    )


__all__ = [
    "CompileError",
    "CompileResult",
    "MATRIX",
    "Optimizations",
    "REFCOUNT",
    "TRANSFORM",
    "TUPLES",
    "Translator",
    "compile_source",
    "host_only",
    "make_translator",
    "module_registry",
    "run_source",
]
