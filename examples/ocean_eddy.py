#!/usr/bin/env python3
"""The ocean-eddy application (paper §IV, Figs 6-8).

Generates synthetic SSH data with injected eddy signatures, runs the
paper's Fig 8 eddy-scoring program through the extensible translator,
and evaluates how well the trough-area scores identify the real eddies.

Run:  python examples/ocean_eddy.py [--render] [--shape LAT LON TIME]
"""

import argparse

import numpy as np

from repro.cexec import compile_and_run, gcc_available, run_program
from repro.eddy import detection_quality, synthetic_ssh, temporal_scores
from repro.programs import load


def render_field(field: np.ndarray, title: str, width: int = 72) -> None:
    """ASCII heat map (the Fig 6 stand-in: eddies visible in SSH data)."""
    chars = " .:-=+*#%@"
    m, n = field.shape
    lo, hi = float(field.min()), float(field.max())
    span = (hi - lo) or 1.0
    print(f"--- {title} (min={lo:.2f} max={hi:.2f}) ---")
    step = max(1, n // width)
    for i in range(0, m, max(1, m // 24)):
        row = ""
        for j in range(0, n, step):
            level = int((field[i, j] - lo) / span * (len(chars) - 1))
            row += chars[level]
        print(row)


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--render", action="store_true", help="draw ASCII maps")
    ap.add_argument("--shape", nargs=3, type=int, default=[24, 36, 64],
                    metavar=("LAT", "LON", "TIME"))
    ap.add_argument("--eddies", type=int, default=3)
    ap.add_argument("--threads", type=int, default=4)
    args = ap.parse_args()

    data = synthetic_ssh(tuple(args.shape), n_eddies=args.eddies, seed=7)
    print(f"synthetic SSH cube {data.cube.shape} with {len(data.tracks)} eddies")

    source = load("fig8")
    if gcc_available():
        run = compile_and_run(source, ["matrix"], {"ssh.data": data.cube},
                              output_names=["temporalScores.data"],
                              nthreads=args.threads)
        scores = run.outputs["temporalScores.data"]
        print(f"native run: {run.stats}")
    else:
        _rc, outs, stats, _ = run_program(source, ["matrix"],
                                          {"ssh.data": data.cube},
                                          output_names=["temporalScores.data"])
        scores = outs["temporalScores.data"]
        print(f"interpreted run: {stats}")

    reference = temporal_scores(data.cube)
    agree = np.allclose(scores, reference, atol=1e-3)
    print(f"translated program == numpy reference: {agree}")

    quality = detection_quality(scores, data.eddy_mask())
    print(f"eddy detection from trough-area scores: "
          f"precision={quality['precision']:.2f} recall={quality['recall']:.2f} "
          f"(top-{int(quality['k'])} ranked points)")

    if args.render:
        t_mid = data.cube.shape[2] // 2
        render_field(data.cube[:, :, t_mid], f"SSH at t={t_mid} (Fig 6 analogue)")
        render_field(scores.max(axis=2), "max trough-area score per point")
        render_field(data.eddy_mask().astype(float), "ground-truth eddy mask")


if __name__ == "__main__":
    main()
