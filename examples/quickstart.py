#!/usr/bin/env python3
"""Quickstart: translate and run the paper's Fig 1 temporal-mean program.

Demonstrates the basic workflow of the extensible translator:

1. pick extensions (here: matrix) and generate a custom translator;
2. translate an extended-C program to plain parallel C;
3. execute it (gcc if available, else the interpreter) on real data;
4. check the result against numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import compile_source
from repro.cexec import gcc_available
from repro.eddy import temporal_mean
from repro.programs import load


def main() -> None:
    source = load("fig1")
    print("=== extended C source (Fig 1) " + "=" * 40)
    print(source)

    result = compile_source(source, extensions=["matrix"], nthreads=4)
    if not result.ok:
        raise SystemExit("\n".join(result.errors))

    print("=== generated C (user main only) " + "=" * 37)
    main_start = result.c_source.index("int __user_main")
    print(result.c_source[main_start:main_start + 1400])
    print("    ... (full runtime + lifted worker functions above)")

    rng = np.random.default_rng(0)
    ssh = rng.normal(0.0, 0.3, (48, 64, 100)).astype(np.float32)

    if gcc_available():
        from repro.cexec import compile_and_run

        run = compile_and_run(source, ["matrix"], {"ssh.data": ssh},
                              output_names=["means.data"], nthreads=4)
        means = run.outputs["means.data"]
        print(f"=== executed natively: {run.stats}")
    else:
        from repro.cexec import run_program

        _rc, outs, stats, _ = run_program(source, ["matrix"], {"ssh.data": ssh},
                                          output_names=["means.data"])
        means = outs["means.data"]
        print(f"=== executed by interpreter: {stats}")

    reference = temporal_mean(ssh)
    err = float(np.abs(means - reference).max())
    print(f"max abs error vs numpy: {err:.2e}")
    assert err < 1e-4, "translated program disagrees with numpy"
    print("OK: translated parallel C reproduces the temporal mean.")


if __name__ == "__main__":
    main()
