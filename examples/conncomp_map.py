#!/usr/bin/env python3
"""Connected-component labeling via matrixMap (paper §III-A.5, Figs 4-5).

Runs the paper's Fig 4 program — logical date filtering plus a
connected-components function mapped over the time dimension — and
validates every frame's components against scipy.ndimage and networkx.

Run:  python examples/conncomp_map.py
"""

import numpy as np
from scipy import ndimage

from repro.cexec import compile_and_run, gcc_available, run_program
from repro.eddy import conn_comp, conn_comp_networkx, synthetic_ssh
from repro.programs import load


def main() -> None:
    data = synthetic_ssh((16, 20, 10), n_eddies=2, eddy_depth=1.5, seed=3)
    ssh = data.cube
    # timestamps, MMDDYYYY-ish ints as in Fig 4's `dates >= 01012000`
    dates = np.array([1011995 + 2 * k for k in range(ssh.shape[2])], dtype=np.int32)
    cutoff = 1012000
    keep = dates >= cutoff
    print(f"{ssh.shape[2]} frames; {keep.sum()} pass the date filter")

    source = load("fig4")
    if gcc_available():
        run = compile_and_run(source, ["matrix"],
                              {"ssh.data": ssh, "dates.data": dates},
                              output_names=["eddyLabels.data"], nthreads=4)
        labels = run.outputs["eddyLabels.data"]
        print(f"native run: {run.stats}")
    else:
        _rc, outs, stats, _ = run_program(source, ["matrix"],
                                          {"ssh.data": ssh, "dates.data": dates},
                                          output_names=["eddyLabels.data"])
        labels = outs["eddyLabels.data"]
        print(f"interpreted run: {stats}")

    kept_frames = np.where(keep)[0]
    all_ok = True
    for out_t, src_t in enumerate(kept_frames):
        frame = ssh[:, :, src_t]
        got = labels[:, :, out_t]
        ref_scipy, n_scipy = ndimage.label(frame < 0.0)
        n_nx = conn_comp_networkx(frame)
        ref_ours = conn_comp(frame)
        n_got = len(np.unique(got[got > 0]))
        same_fg = bool(((got > 0) == (ref_scipy > 0)).all())
        same_labels = bool((got == ref_ours).all())
        ok = same_fg and n_got == n_scipy == n_nx and same_labels
        all_ok &= ok
        print(f"frame {src_t}: components={n_got} scipy={n_scipy} "
              f"networkx={n_nx} exact-label-match={same_labels}")
    print("ALL FRAMES MATCH" if all_ok else "MISMATCH FOUND")


if __name__ == "__main__":
    main()
