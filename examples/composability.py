#!/usr/bin/env python3
"""The modular analyses in action (paper §VI).

Runs the modular determinism analysis (isComposable) on every extension
and the modular well-definedness analysis on the composed attribute
grammar, reproducing the paper's results:

* the matrix extension PASSES (all bridge productions begin with its
  marking terminals: Matrix, with, matrixMap, init);
* the transform extension PASSES against host+matrix (marked by
  `transform`);
* the tuples extension FAILS — "the initial symbol for tuple expressions
  is a left-paren '(' , which violates the restriction that a unique
  initial terminal symbol is needed" — and is therefore packaged with
  the host, exactly as the paper does;
* the paper's suggested fix, distinguishable delimiters "(|" and "|)",
  PASSES.

Run:  python examples/composability.py
"""

from repro.ag import check_well_definedness
from repro.api import module_registry
from repro.exts.tuples import marked_tuples_grammar, standalone_tuples_grammar
from repro.mda import is_composable, verify_composition_theorem


def main() -> None:
    reg = module_registry()
    host = reg["cminus"].grammar
    prefer = reg["cminus"].prefer_shift

    print("=" * 72)
    print("Modular determinism analysis (Copper, §VI-A)")
    print("=" * 72)
    reports = [
        is_composable(host, reg["matrix"].grammar, prefer_shift=prefer),
        is_composable(host, reg["transform"].grammar,
                      base=(reg["matrix"].grammar,), prefer_shift=prefer),
        is_composable(host, reg["cilk"].grammar, prefer_shift=prefer),
        is_composable(host, reg["unrolljam"].grammar,
                      base=(reg["matrix"].grammar, reg["transform"].grammar),
                      prefer_shift=prefer),
        is_composable(host, standalone_tuples_grammar(), prefer_shift=prefer),
        is_composable(host, marked_tuples_grammar(), prefer_shift=prefer),
    ]
    for r in reports:
        print(r)
        print()

    print("Composition theorem: extensions that passed individually compose")
    ok = verify_composition_theorem(
        host, [reg["matrix"].grammar, reg["transform"].grammar,
               reg["unrolljam"].grammar, reg["cilk"].grammar],
        prefer_shift=prefer,
    )
    print(f"  host ∪ matrix ∪ transform ∪ unrolljam ∪ cilk is LALR(1): {ok}")

    print()
    print("=" * 72)
    print("Modular well-definedness analysis (Silver, §VI-B)")
    print("=" * 72)
    composed = reg["cminus"].ag.compose(reg["matrix"].ag, reg["transform"].ag)
    for module in ("cminus", "matrix", "transform", None):
        print(check_well_definedness(composed, module=module))
    print()
    print('Paper: "All extensions described above pass this analysis."')


if __name__ == "__main__":
    main()
