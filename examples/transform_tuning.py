#!/usr/bin/env python3
"""Explicit loop transformations (paper §V, Figs 9-11).

Shows the programmer-directed tuning workflow: the same temporal-mean
with-loop translated (a) naively, (b) with the Fig 9 clause list
(split j by 4 -> vectorize jin -> parallelize i), and (c) with a tiling
schedule, then times each generated binary.

The paper "intentionally do[es] not provide any performance numbers"
for this extension — the point is control: "programmers can more easily
experiment with different loop structures in their search for higher
performance ... without having to manually rewrite their code".

Run:  python examples/transform_tuning.py [--size M N P]
"""

import argparse
import textwrap
import time

import numpy as np

from repro.api import Optimizations, compile_source
from repro.cexec import CompiledProgram, gcc_available
from repro.eddy import temporal_mean

PROGRAM = """
int main() {{
    Matrix float <3> mat = readMatrix("ssh.data");
    int m = dimSize(mat, 0);
    int n = dimSize(mat, 1);
    int p = dimSize(mat, 2);
    Matrix float <2> means = init(Matrix float <2>, m, n);
    means = with ([0,0] <= [i,j] < [m,n])
        genarray([m,n],
            (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,:][k])) / p){clause};
    writeMatrix("means.data", means);
    return 0;
}}
"""

SCHEDULES = {
    "baseline (automatic, sequential loops)": "",
    "Fig 9: split j by 4 . vectorize jin . parallelize i": textwrap.dedent("""
        transform split j by 4, jin, jout.
                  vectorize jin.
                  parallelize i"""),
    "tile i j by 4 4 (two splits + reorder)": "\n    transform tile i j by 4 4",
    "interchange i j": "\n    transform interchange i j",
    "split j by 4 + unroll jin by 4 (fully unrolled inner)": textwrap.dedent("""
        transform split j by 4, jin, jout.
                  unroll jin by 4.
                  parallelize i"""),
}


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--size", nargs=3, type=int, default=[64, 96, 80],
                    metavar=("M", "N", "P"))
    ap.add_argument("--threads", type=int, default=4)
    args = ap.parse_args()

    if not gcc_available():
        raise SystemExit("this example times native binaries; gcc not found")

    rng = np.random.default_rng(0)
    m, n, p = args.size
    ssh = rng.normal(0.0, 0.3, (m, n, p)).astype(np.float32)
    want = temporal_mean(ssh)

    print(f"temporal mean over a {m}x{n}x{p} cube; {args.threads} threads\n")
    for label, clause in SCHEDULES.items():
        source = PROGRAM.format(clause=clause)
        opts = Optimizations(parallelize=False)  # §V: user-directed only
        result = compile_source(source, ["matrix", "transform"], options=opts)
        if not result.ok:
            raise SystemExit("\n".join(result.errors))
        prog = CompiledProgram(result.c_source)
        try:
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                run = prog.run({"ssh.data": ssh}, output_names=["means.data"],
                               nthreads=args.threads, collect_stats=False)
                best = min(best, time.perf_counter() - t0)
            got = run.outputs["means.data"]
            ok = np.allclose(got, want, atol=1e-3)
            print(f"  {label:58s} {best * 1e3:8.1f} ms  correct={ok}")
        finally:
            prog.cleanup()

    print("\nGenerated-code shapes (compare the paper's Figs 10 and 11):")
    for label, clause in list(SCHEDULES.items())[:2]:
        source = PROGRAM.format(clause=clause)
        result = compile_source(source, ["matrix", "transform"],
                                options=Optimizations(parallelize=False))
        body = result.c_source[result.c_source.index("int __user_main"):]
        interesting = [l for l in body.splitlines()
                       if any(k in l for k in ("for (", "#pragma", "rt_v"))]
        print(f"\n--- {label} ---")
        print("\n".join("   " + l.strip() for l in interesting[:14]))


if __name__ == "__main__":
    main()
