#!/usr/bin/env python3
"""Cilk-style task parallelism as a pluggable extension (paper §VIII).

The paper's future work: "we are also developing a extension that adds
Cilk style parallelism constructs to C.  The goal is to determine how
sophisticated run-times, like in Cilk, can be delivered as a pluggable
language extension."  This example runs that extension: spawn/sync
syntax, frame-scoped task runtime, composed freely with the matrix
extension — and shows it passes the same modular determinism analysis
as the others.

Run:  python examples/cilk_tasks.py
"""

import numpy as np

from repro.api import compile_source, module_registry
from repro.cexec import compile_and_run, gcc_available, run_program
from repro.mda import is_composable

FIB = """
int fib(int n) {
    if (n < 2) return n;
    int a = 0;
    int b = 0;
    spawn a = fib(n - 1);
    spawn b = fib(n - 2);
    sync;
    return a + b;
}
int main() {
    int r = 0;
    spawn r = fib(20);
    sync;
    printInt(r);
    return 0;
}
"""

MIXED = """
float total(Matrix float <1> v) {
    return with ([0] <= [i] < [dimSize(v, 0)]) fold(+, 0.0, v[i]);
}
int main() {
    Matrix float <1> a = readMatrix("a.data");
    Matrix float <1> b = readMatrix("b.data");
    float sa = 0.0;
    float sb = 0.0;
    spawn sa = total(a);
    spawn sb = total(b);
    sync;
    printFloat(sa + sb);
    return 0;
}
"""


def main() -> None:
    reg = module_registry()
    report = is_composable(reg["cminus"].grammar, reg["cilk"].grammar,
                           prefer_shift=reg["cminus"].prefer_shift)
    print(report)
    print()

    result = compile_source(FIB, ["cilk"])
    assert result.ok, result.errors
    body = result.c_source[result.c_source.index("int fib"):]
    print("=== generated C for the spawning fib ===")
    print(body[:900])
    print("    ...")

    if gcc_available():
        run = compile_and_run(FIB, ["cilk"], check=False)
        print(f"native fib(20) -> {run.stdout.strip().splitlines()[0]} "
              f"(expect 6765)")
    _rc, _outs, stats, interp = run_program(FIB.replace("fib(20)", "fib(15)"),
                                            ["cilk"])
    print(f"interpreter fib(15) -> {interp.stdout[0]} "
          f"({stats.tasks_spawned} tasks, sequential elision)")

    print()
    print("=== cilk + matrix composed in one translator ===")
    rng = np.random.default_rng(0)
    a = rng.random(1000, dtype=np.float32)
    b = rng.random(1000, dtype=np.float32)
    if gcc_available():
        run = compile_and_run(MIXED, ["matrix", "cilk"],
                              {"a.data": a, "b.data": b}, check=False)
        print(f"native: total(a)+total(b) = {run.stdout.strip().splitlines()[0]}")
    print(f"numpy:  {float(a.sum() + b.sum()):.4g}")


if __name__ == "__main__":
    main()
