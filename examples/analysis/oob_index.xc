// S25 crafted negative: statically out-of-bounds matrix indexing.
// The shape/bounds pass proves a is 3x4 (12 elements) and the flat
// index of a[10,0] is 40 on every run -- an error before any execution.
int main() {
    Matrix float <2> a = init(Matrix float <2>, 3, 4);
    float x = a[10, 0];
    printFloat(x);
    return 0;
}
