// RACY: sibling tasks write overlapping windows [base, base+10) with
// bases 0 and 5 -- elements 5..9 are written by both.
void fill(Matrix float <1> m, int base) {
    for (int i = 0; i < 10; i = i + 1) {
        m[base + i] = 1.0 * (base + i);
    }
}
int main() {
    Matrix float <1> m = init(Matrix float <1>, 20);
    spawn fill(m, 0);
    spawn fill(m, 5);
    sync;
    printFloat(m[9]);
    return 0;
}
