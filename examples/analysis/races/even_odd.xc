// RACE-FREE: one task writes even elements, the other odd -- the
// analysis refutes the overlap by a GCD argument (2i != 2j+1).
void evens(Matrix float <1> m) {
    for (int i = 0; i < 50; i = i + 1) {
        m[2 * i] = 2.0 * i;
    }
}
void odds(Matrix float <1> m) {
    for (int i = 0; i < 50; i = i + 1) {
        m[2 * i + 1] = 2.0 * i + 1.0;
    }
}
int main() {
    Matrix float <1> m = init(Matrix float <1>, 100);
    spawn evens(m);
    spawn odds(m);
    sync;
    printFloat(m[99]);
    return 0;
}
