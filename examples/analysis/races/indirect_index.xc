// RACY (conservatively): writes go through a data-dependent index
// map, so the summary widens to the whole matrix and the overlap
// cannot be refuted.
void scatter(Matrix float <1> dst, Matrix float <1> idx, int base) {
    for (int i = 0; i < 10; i = i + 1) {
        dst[(int)idx[base + i]] = 1.0 * i;
    }
}
int main() {
    Matrix float <1> dst = init(Matrix float <1>, 40);
    Matrix float <1> idx = init(Matrix float <1>, 20);
    for (int i = 0; i < 20; i = i + 1) {
        idx[i] = 1.0 * (39 - i);
    }
    spawn scatter(dst, idx, 0);
    spawn scatter(dst, idx, 10);
    sync;
    printFloat(dst[0]);
    return 0;
}
