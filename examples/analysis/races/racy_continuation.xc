// RACY: the continuation reads m[5] while the spawned task may still
// be writing the same element -- no sync in between.
void fill(Matrix float <1> m) {
    for (int i = 0; i < 10; i = i + 1) {
        m[i] = 1.0 * i;
    }
}
int main() {
    Matrix float <1> m = init(Matrix float <1>, 10);
    spawn fill(m);
    printFloat(m[5]);
    sync;
    return 0;
}
