// RACE-FREE: each task writes its own half [base, base+50) -- the
// affine overlap test refutes every cross pair, so both spawns are
// cleared for the task pool.
void fill(Matrix float <1> m, int base) {
    for (int i = 0; i < 50; i = i + 1) {
        m[base + i] = 1.0 * (base + i);
    }
}
int main() {
    Matrix float <1> m = init(Matrix float <1>, 100);
    spawn fill(m, 0);
    spawn fill(m, 50);
    sync;
    printFloat(m[99]);
    return 0;
}
