// S25 crafted negative for --explain-parallel: the with-loop body calls
// a function that performs file I/O, so the region must run
// sequentially -- and `reproc check --explain-parallel` says why.
float peek(Matrix float <1> v, int i) {
    writeMatrix("dbg.data", v);
    return v[i];
}

int main() {
    Matrix float <1> a = init(Matrix float <1>, 8);
    Matrix float <1> b = init(Matrix float <1>, 8);
    b = with ([0] <= [i] < [8]) genarray([8], peek(a, i) + 1.0);
    writeMatrix("out.data", b);
    return 0;
}
