// S25 crafted negative: matrix multiply whose inner dimensions can
// never agree (3x4 times 3x4 needs 4 == 3).
int main() {
    Matrix float <2> a = init(Matrix float <2>, 3, 4);
    Matrix float <2> b = init(Matrix float <2>, 3, 4);
    Matrix float <2> c = a * b;
    writeMatrix("c.data", c);
    return 0;
}
