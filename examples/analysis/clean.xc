// S25 clean control: every pass runs, nothing to report, and the
// with-loop is certified shard-safe.
int main() {
    Matrix float <2> a = init(Matrix float <2>, 4, 4);
    Matrix float <2> b = init(Matrix float <2>, 4, 4);
    b = with ([0,0] <= [i,j] < [4,4]) genarray([4,4], a[i,j] * 2.0 + 1.0);
    Matrix float <2> c = a + b;
    writeMatrix("c.data", c);
    return 0;
}
