// S25 crafted negative: elementwise op on shapes that can never match.
// a is 2x2 and b is 3x3 on every path, so the runtime's rt_shape_check
// is guaranteed to trap -- reported statically instead.
int main() {
    Matrix float <2> a = init(Matrix float <2>, 2, 2);
    Matrix float <2> b = init(Matrix float <2>, 3, 3);
    Matrix float <2> c = a + b;
    writeMatrix("c.data", c);
    return 0;
}
