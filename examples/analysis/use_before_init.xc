// S25 crafted negative: definite-assignment violations.
// x is read before any assignment (error); z is assigned on only one
// branch before its read (warning).
int main() {
    int x;
    int y = x + 1;
    int z;
    if (y > 0) {
        z = 2;
    }
    printInt(z);
    return 0;
}
