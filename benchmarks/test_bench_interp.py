"""E-VM: bytecode VM vs. tree-walking interpreter (S22).

The fig1 temporal-mean program is the paper's flagship workload; it runs
one pooled genarray region whose innermost loop is a fold over the time
dimension.  The tree-walker re-interprets every scalar of that fold; the
bytecode VM's numpy fast path executes each trip count as one cumsum.
Acceptance gate: VM >=10x faster than the tree-walker, with bit-identical
output.  Measured timings land in ``BENCH_interp.json`` at the repo root
so later PRs can track the trajectory.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the workload; the smoke run
still checks engine agreement and records timings, but gates only a
conservative >=3x since small trip counts amortize less per-loop setup.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import compile_source
from repro.cexec.interp import Interpreter
from repro.cexec.rmat import read_rmat, write_rmat
from repro.cexec.vm import VM
from repro.programs import load

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
SHAPE = (6, 8, 48) if SMOKE else (20, 20, 400)
GATE = 3.0 if SMOKE else 10.0
REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def fig1(tmp_path_factory):
    wd = tmp_path_factory.mktemp("fig1bench")
    cube = np.random.default_rng(0).normal(0, 0.4, SHAPE).astype(np.float32)
    write_rmat(wd / "ssh.data", cube)
    cr = compile_source(load("fig1"), ["matrix"])
    assert cr.ok, cr.diagnostics
    cr.bytecode()  # build once, outside the timed region
    return cr, wd


def _run(make_executor, wd, repeats):
    best = float("inf")
    for _ in range(repeats):
        ex = make_executor()
        t0 = time.perf_counter()
        rc = ex.run_main()
        best = min(best, time.perf_counter() - t0)
        assert rc == 0
    return best, read_rmat(wd / "means.data")


class TestVMSpeedup:
    def test_vm_10x_gate_on_fig1(self, fig1):
        cr, wd = fig1
        tree_s, tree_out = _run(
            lambda: Interpreter(cr.lowered, cr.ctx, workdir=wd, nthreads=2),
            wd, repeats=1 if not SMOKE else 2)
        vm_s, vm_out = _run(
            lambda: VM(cr.lowered, cr.ctx, workdir=wd, nthreads=2,
                       program=cr.bytecode()),
            wd, repeats=3)

        assert np.array_equal(tree_out, vm_out)
        speedup = tree_s / vm_s
        record = {
            "experiment": "E-VM",
            "workload": "fig1 temporal mean",
            "shape": list(SHAPE),
            "smoke": SMOKE,
            "tree_seconds": round(tree_s, 4),
            "vm_seconds": round(vm_s, 4),
            "speedup": round(speedup, 1),
            "python": platform.python_version(),
        }
        (REPO_ROOT / "BENCH_interp.json").write_text(
            json.dumps(record, indent=2) + "\n")
        print(f"\ntree {tree_s:.3f}s  vm {vm_s:.3f}s  speedup {speedup:.1f}x")
        assert speedup >= GATE, \
            f"VM only {speedup:.1f}x faster than tree-walker (gate {GATE}x)"

    def test_fast_path_engaged(self, fig1, monkeypatch):
        """The gate above is meaningless if every loop bails to scalar."""
        from repro.cexec import loopfast

        cr, wd = fig1
        hits = {"ok": 0, "bail": 0}
        orig = loopfast.Plan.run

        def counted(self, frame):
            r = orig(self, frame)
            hits["ok" if r else "bail"] += 1
            return r

        monkeypatch.setattr(loopfast.Plan, "run", counted)
        vm = VM(cr.lowered, cr.ctx, workdir=wd, nthreads=2,
                program=cr.bytecode())
        assert vm.run_main() == 0
        assert hits["ok"] > 0
        assert hits["bail"] == 0, f"fast path bailed {hits['bail']} times"


class TestMicro:
    """pytest-benchmark timings on the smoke-size workload."""

    @pytest.fixture(scope="class")
    def small(self, tmp_path_factory):
        wd = tmp_path_factory.mktemp("fig1micro")
        cube = np.random.default_rng(1).normal(
            0, 0.4, (6, 8, 48)).astype(np.float32)
        write_rmat(wd / "ssh.data", cube)
        cr = compile_source(load("fig1"), ["matrix"])
        cr.bytecode()
        return cr, wd

    def test_bench_vm(self, benchmark, small):
        cr, wd = small
        benchmark(lambda: VM(cr.lowered, cr.ctx, workdir=wd, nthreads=2,
                             program=cr.bytecode()).run_main())

    def test_bench_tree(self, benchmark, small):
        cr, wd = small
        benchmark(lambda: Interpreter(cr.lowered, cr.ctx, workdir=wd,
                                      nthreads=2).run_main())
