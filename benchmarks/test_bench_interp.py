"""E-VM + E-IR: interpreter-stack benchmarks.

E-VM (S22): bytecode VM vs. tree-walking interpreter on the fig1
temporal-mean program, the paper's flagship workload.  The tree-walker
re-interprets every scalar of the fold; the VM's numpy fast path executes
each trip count as one cumsum.  Gate: VM >=10x faster, bit-identical.

E-IR (S28): the TAC/SSA optimizer pipeline, -O2 vs -O0 on the same VM.
Two gates:

* dynamic instruction count (``REPRO_COUNT_INSTRS``) over the full
  corpus — figs 1/4/8/9 plus the mandelbrot escape-time kernel — must
  drop by >=25% geomean, with bit-identical outputs and stdout;
* wall-clock geomean >=1.3x over the scalar-dominated workloads
  (fig4, fig9, mandelbrot) at nthreads=1.  fig1/fig8 spend their time
  inside numpy fastloop plans the optimizer cannot speed up, so they
  are measured for the record but excluded from the wall gate.

All timings land in ``BENCH_interp.json`` at the repo root, one record
per experiment, so later PRs can track the trajectory.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the workloads; the smoke run
still checks agreement and the instruction-count gate (counts are
deterministic at any size), but skips the wall-clock gate and relaxes
E-VM to >=3x since small trip counts amortize less per-loop setup.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import compile_source
from repro.cexec.interp import Interpreter, run_program
from repro.cexec.rmat import read_rmat, write_rmat
from repro.cexec.vm import VM
from repro.cminus.env import Optimizations
from repro.eddy import synthetic_ssh
from repro.programs import load

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
SHAPE = (6, 8, 48) if SMOKE else (20, 20, 400)
GATE = 3.0 if SMOKE else 10.0
REPO_ROOT = Path(__file__).resolve().parents[1]


def _record_bench(experiment: str, **fields) -> None:
    """Merge ``fields`` into BENCH_interp.json under ``experiment``."""
    path = REPO_ROOT / "BENCH_interp.json"
    store: dict = {}
    if path.exists():
        try:
            old = json.loads(path.read_text())
        except ValueError:
            old = {}
        if "experiment" in old:  # legacy single-record layout
            store[old["experiment"]] = old
        else:
            store = old
    rec = store.setdefault(experiment, {})
    rec.update(fields, experiment=experiment, smoke=SMOKE,
               python=platform.python_version())
    path.write_text(json.dumps(store, indent=2, sort_keys=True) + "\n")


def _geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


@pytest.fixture(scope="module")
def fig1(tmp_path_factory):
    wd = tmp_path_factory.mktemp("fig1bench")
    cube = np.random.default_rng(0).normal(0, 0.4, SHAPE).astype(np.float32)
    write_rmat(wd / "ssh.data", cube)
    cr = compile_source(load("fig1"), ["matrix"])
    assert cr.ok, cr.diagnostics
    cr.bytecode()  # build once, outside the timed region
    return cr, wd


def _run(make_executor, wd, repeats):
    best = float("inf")
    for _ in range(repeats):
        ex = make_executor()
        t0 = time.perf_counter()
        rc = ex.run_main()
        best = min(best, time.perf_counter() - t0)
        assert rc == 0
    return best, read_rmat(wd / "means.data")


class TestVMSpeedup:
    def test_vm_10x_gate_on_fig1(self, fig1):
        cr, wd = fig1
        tree_s, tree_out = _run(
            lambda: Interpreter(cr.lowered, cr.ctx, workdir=wd, nthreads=2),
            wd, repeats=1 if not SMOKE else 2)
        vm_s, vm_out = _run(
            lambda: VM(cr.lowered, cr.ctx, workdir=wd, nthreads=2,
                       program=cr.bytecode()),
            wd, repeats=3)

        assert np.array_equal(tree_out, vm_out)
        speedup = tree_s / vm_s
        _record_bench(
            "E-VM",
            workload="fig1 temporal mean",
            shape=list(SHAPE),
            tree_seconds=round(tree_s, 4),
            vm_seconds=round(vm_s, 4),
            speedup=round(speedup, 1),
        )
        print(f"\ntree {tree_s:.3f}s  vm {vm_s:.3f}s  speedup {speedup:.1f}x")
        assert speedup >= GATE, \
            f"VM only {speedup:.1f}x faster than tree-walker (gate {GATE}x)"

    def test_fast_path_engaged(self, fig1, monkeypatch):
        """The gate above is meaningless if every loop bails to scalar."""
        from repro.cexec import loopfast

        cr, wd = fig1
        hits = {"ok": 0, "bail": 0}
        orig = loopfast.Plan.run

        def counted(self, frame, stats=None):
            r = orig(self, frame, stats)
            hits["ok" if r else "bail"] += 1
            return r

        monkeypatch.setattr(loopfast.Plan, "run", counted)
        vm = VM(cr.lowered, cr.ctx, workdir=wd, nthreads=2,
                program=cr.bytecode())
        assert vm.run_main() == 0
        assert hits["ok"] > 0
        assert hits["bail"] == 0, f"fast path bailed {hits['bail']} times"


def _mandelbrot_src(scale_down: bool) -> str:
    """The mandelbrot kernel, optionally shrunk for smoke runs.

    The viewport/iteration budget are plain integer literals in the
    source, so smoke sizing is a textual substitution — the compiled
    program is otherwise identical.
    """
    src = load("mandelbrot")
    if scale_down:
        for old, new in (("int h = 40;", "int h = 10;"),
                         ("int w = 60;", "int w = 12;"),
                         ("int maxIter = 80;", "int maxIter = 24;")):
            assert old in src, f"mandelbrot.xc drifted: {old!r} missing"
            src = src.replace(old, new)
    return src


def _instr_corpus():
    """(name, source, externs, inputs, output_names) for the instruction
    count gate.  Sizes are deliberately small: dynamic instruction counts
    are machine-independent, and counting mode slows the VM down."""
    cases = []
    cube = np.random.default_rng(0).normal(0, 0.5, (6, 8, 12)).astype(np.float32)
    cases.append(("fig1", load("fig1"), ["matrix"],
                  {"ssh.data": cube}, ["means.data"]))
    ssh = np.random.default_rng(9).normal(0.2, 0.5, (8, 9, 5)).astype(np.float32)
    dates = np.array([1011990, 1012000, 1012010, 1012020, 1012030],
                     dtype=np.int32)
    cases.append(("fig4", load("fig4"), ["matrix"],
                  {"ssh.data": ssh, "dates.data": dates}, ["eddyLabels.data"]))
    eddy = synthetic_ssh((5, 6, 32), n_eddies=2, seed=21)
    cases.append(("fig8", load("fig8"), ["matrix"],
                  {"ssh.data": eddy.cube}, ["temporalScores.data"]))
    c9 = np.random.default_rng(3).normal(0, 1, (6, 8, 10)).astype(np.float32)
    cases.append(("fig9", load("fig9"), ["matrix", "transform"],
                  {"ssh.data": c9}, ["means.data"]))
    cases.append(("mandelbrot", _mandelbrot_src(scale_down=True), ["matrix"],
                  {}, ["mandel.data"]))
    return cases


class TestIROptimizer:
    """E-IR: the S28 TAC/SSA pass pipeline, -O2 vs -O0."""

    INSTR_GATE = 0.25   # geomean dynamic-instruction reduction
    WALL_GATE = 1.3     # geomean wall-clock speedup, scalar workloads

    def test_dynamic_instr_reduction(self, monkeypatch):
        monkeypatch.setenv("REPRO_COUNT_INSTRS", "1")
        monkeypatch.setenv("REPRO_IR_STRICT", "1")
        rows, ratios = [], []
        for name, src, exts, inputs, outs in _instr_corpus():
            runs = {}
            for lvl in (0, 2):
                rc, o, st, ex = run_program(
                    src, exts, inputs, output_names=outs, nthreads=1,
                    options=Optimizations(opt_level=lvl))
                assert rc == 0, f"{name} rc={rc} at -O{lvl}"
                runs[lvl] = (st.instrs, list(ex.stdout),
                             {k: v.tobytes() for k, v in o.items()})
            assert runs[0][1] == runs[2][1], f"{name}: stdout differs O0/O2"
            assert runs[0][2] == runs[2][2], f"{name}: outputs differ O0/O2"
            i0, i2 = runs[0][0], runs[2][0]
            assert i2 > 0 and i0 > 0
            ratios.append(i0 / i2)
            rows.append({"workload": name, "instrs_O0": i0, "instrs_O2": i2,
                         "reduction": round(1 - i2 / i0, 3)})
            print(f"\n{name}: O0={i0} O2={i2} ({1 - i2 / i0:.1%} fewer)")
        reduction = 1 - 1 / _geomean(ratios)
        _record_bench("E-IR", instr_rows=rows,
                      instr_geomean_reduction=round(reduction, 3))
        print(f"geomean dynamic-instruction reduction: {reduction:.1%}")
        assert reduction >= self.INSTR_GATE, \
            f"optimizer cut only {reduction:.1%} of dynamic instructions " \
            f"(gate {self.INSTR_GATE:.0%})"

    @pytest.mark.skipif(SMOKE, reason="wall gate needs full-size workloads")
    def test_wallclock_speedup(self, tmp_path_factory):
        """Scalar-dominated workloads only: fig1/fig8 run inside numpy
        fastloop plans at both levels, so their wall-clock is invariant
        to the optimizer and would dilute the gate with noise."""
        cases = []
        ssh = np.random.default_rng(9).normal(
            0.2, 0.5, (60, 60, 8)).astype(np.float32)
        dates = np.arange(1011990, 1011990 + 80, 10, dtype=np.int32)
        cases.append(("fig4", load("fig4"), ["matrix"],
                      {"ssh.data": ssh, "dates.data": dates}))
        c9 = np.random.default_rng(3).normal(
            0, 1, (20, 20, 200)).astype(np.float32)
        cases.append(("fig9", load("fig9"), ["matrix", "transform"],
                      {"ssh.data": c9}))
        cases.append(("mandelbrot", load("mandelbrot"), ["matrix"], {}))

        rows, ratios = [], []
        for name, src, exts, inputs in cases:
            setups = {}
            for lvl in (0, 2):
                wd = tmp_path_factory.mktemp(f"eir_{name}_O{lvl}")
                for fname, arr in inputs.items():
                    write_rmat(wd / fname, arr)
                cr = compile_source(src, exts,
                                    options=Optimizations(opt_level=lvl))
                assert cr.ok, cr.diagnostics
                setups[lvl] = (cr, cr.bytecode(), wd)
            # interleave the levels round-robin: machine-load drift then
            # hits O0 and O2 alike instead of biasing whichever batch
            # ran during the quiet stretch.
            secs = {0: float("inf"), 2: float("inf")}
            for _ in range(5):
                for lvl in (0, 2):
                    cr, prog, wd = setups[lvl]
                    vm = VM(cr.lowered, cr.ctx, workdir=wd, nthreads=1,
                            program=prog)
                    t0 = time.perf_counter()
                    rc = vm.run_main()
                    secs[lvl] = min(secs[lvl], time.perf_counter() - t0)
                    vm.close()
                    assert rc == 0
            ratios.append(secs[0] / secs[2])
            rows.append({"workload": name,
                         "O0_seconds": round(secs[0], 4),
                         "O2_seconds": round(secs[2], 4),
                         "speedup": round(secs[0] / secs[2], 2)})
            print(f"\n{name}: O0={secs[0]:.3f}s O2={secs[2]:.3f}s "
                  f"({secs[0] / secs[2]:.2f}x)")
        gm = _geomean(ratios)
        _record_bench("E-IR", wall_rows=rows,
                      wall_geomean_speedup=round(gm, 2))
        print(f"geomean wall-clock speedup: {gm:.2f}x")
        assert gm >= self.WALL_GATE, \
            f"-O2 only {gm:.2f}x over -O0 (gate {self.WALL_GATE}x)"


class TestDispatchSpecialization:
    """E-DSP: the S29 dispatch-specialization layer (superinstructions,
    quickening, inline caches, frame pooling) against the same -O2
    program run by the generic VM (``REPRO_NO_QUICKEN=1``).

    Scalar-dominated workloads only, for the same reason as the E-IR
    wall gate: fig1/fig8 run inside numpy fastloop plans where dispatch
    cost is already amortized away."""

    WALL_GATE = 1.15 if SMOKE else 1.5
    REPEATS = 3 if SMOKE else 7

    def _cases(self):
        cases = []
        ssh = np.random.default_rng(9).normal(
            0.2, 0.5, (24, 24, 8) if SMOKE else (60, 60, 8)
        ).astype(np.float32)
        dates = np.arange(1011990, 1011990 + 80, 10, dtype=np.int32)
        cases.append(("fig4", load("fig4"), ["matrix"],
                      {"ssh.data": ssh, "dates.data": dates}))
        c9 = np.random.default_rng(3).normal(
            0, 1, (12, 12, 80) if SMOKE else (20, 20, 200)
        ).astype(np.float32)
        cases.append(("fig9", load("fig9"), ["matrix", "transform"],
                      {"ssh.data": c9}))
        cases.append(("mandelbrot", _mandelbrot_src(scale_down=False),
                      ["matrix"], {}))
        return cases

    def test_wallclock_speedup(self, tmp_path_factory, monkeypatch):
        rows, ratios = [], []
        spec_counters = {}
        for name, src, exts, inputs in self._cases():
            wd = tmp_path_factory.mktemp(f"edsp_{name}")
            for fname, arr in inputs.items():
                write_rmat(wd / fname, arr)
            cr = compile_source(src, exts,
                                options=Optimizations(opt_level=2))
            assert cr.ok, cr.diagnostics
            prog = cr.bytecode()
            # Interleave generic and specialized round-robin so machine
            # load drift hits both alike; keep best-of-N per flavor.
            secs = {"generic": float("inf"), "spec": float("inf")}
            outs = {}
            for _ in range(self.REPEATS):
                for flavor, env in (("generic", "1"), ("spec", "0")):
                    monkeypatch.setenv("REPRO_NO_QUICKEN", env)
                    vm = VM(cr.lowered, cr.ctx, workdir=wd, nthreads=1,
                            program=prog)
                    t0 = time.perf_counter()
                    rc = vm.run_main()
                    secs[flavor] = min(secs[flavor],
                                       time.perf_counter() - t0)
                    assert rc == 0
                    if flavor == "spec":
                        st = vm.stats
                        spec_counters[name] = {
                            "quickened": st.quickened,
                            "deopts": st.deopts,
                            "ic_misses": st.ic_misses,
                            "guards_elided": st.guards_elided,
                        }
                    vm.close()
                    out_files = sorted(p for p in os.listdir(wd)
                                       if p not in inputs)
                    got = {p: read_rmat(wd / p).tobytes()
                           for p in out_files}
                    if flavor in outs:
                        assert outs[flavor] == got, f"{name}: unstable"
                    outs[flavor] = got
            assert outs["generic"] == outs["spec"], \
                f"{name}: specialized output differs from generic"
            ratios.append(secs["generic"] / secs["spec"])
            rows.append({"workload": name,
                         "generic_seconds": round(secs["generic"], 4),
                         "spec_seconds": round(secs["spec"], 4),
                         "speedup": round(ratios[-1], 2)})
            print(f"\n{name}: generic={secs['generic']:.3f}s "
                  f"spec={secs['spec']:.3f}s ({ratios[-1]:.2f}x)")
        gm = _geomean(ratios)
        _record_bench("E-DSP", wall_rows=rows,
                      wall_geomean_speedup=round(gm, 2),
                      spec_counters=spec_counters)
        print(f"geomean dispatch-specialization speedup: {gm:.2f}x")
        assert gm >= self.WALL_GATE, \
            f"specialization only {gm:.2f}x over generic VM " \
            f"(gate {self.WALL_GATE}x)"

    def test_quickening_engaged(self, monkeypatch):
        """The wall gate is meaningless if no site ever specializes."""
        monkeypatch.delenv("REPRO_NO_QUICKEN", raising=False)
        name, src, exts, inputs, outs = next(
            c for c in _instr_corpus() if c[0] == "fig4")
        rc, _o, st, _ex = run_program(
            src, exts, inputs, output_names=outs, nthreads=1,
            engine="vm", options=Optimizations(opt_level=2))
        assert rc == 0
        assert st.quickened > 0, "no site quickened"


class TestMicro:
    """pytest-benchmark timings on the smoke-size workload."""

    @pytest.fixture(scope="class")
    def small(self, tmp_path_factory):
        wd = tmp_path_factory.mktemp("fig1micro")
        cube = np.random.default_rng(1).normal(
            0, 0.4, (6, 8, 48)).astype(np.float32)
        write_rmat(wd / "ssh.data", cube)
        cr = compile_source(load("fig1"), ["matrix"])
        cr.bytecode()
        return cr, wd

    def test_bench_vm(self, benchmark, small):
        cr, wd = small
        benchmark(lambda: VM(cr.lowered, cr.ctx, workdir=wd, nthreads=2,
                             program=cr.bytecode()).run_main())

    def test_bench_tree(self, benchmark, small):
        cr, wd = small
        benchmark(lambda: Interpreter(cr.lowered, cr.ctx, workdir=wd,
                                      nthreads=2).run_main())
