"""E-SRV: the serve daemon under synthetic many-client load (S26).

Two measurements land in ``BENCH_serve.json``:

* **warm** — an in-process daemon with hot translators, hit by N
  threaded clients firing compile and run requests (identical sources
  to exercise coalescing, plus distinct variants to exercise the
  cache); p50/p99 latency and throughput are recorded.
* **cold** — single-shot ``reproc`` subprocess invocations of the same
  compile, the workflow the daemon replaces: a fresh interpreter,
  module imports, and artifact restore per program.

Acceptance gate: warm daemon throughput >= 5x the cold single-shot
rate.  ``REPRO_BENCH_SMOKE=1`` (CI) shrinks request counts but keeps
the gate — the daemon's edge is structural (resident translators vs.
interpreter startup), not workload-sized.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import ReproServer, ServeClient, ServeConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"

N_REQUESTS = 24 if SMOKE else 96
N_CLIENTS = 8
N_COLD = 2 if SMOKE else 4
GATE = 5.0

PROG = """
int main() {
    Matrix float <2> m = init(Matrix float <2>, 16, 16);
    m = with ([0,0] <= [i,j] < [16,16]) genarray([16,16], 1.0 * (i + j));
    float s = with ([0,0] <= [i,j] < [16,16]) fold(+, 0.0, m[i,j]);
    printFloat(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def server():
    with ReproServer(ServeConfig(port=0, pool_size=2,
                                 queue_depth=16)) as s:
        client = ServeClient(port=s.port)
        assert client.wait_ready(20.0)
        # Warm the translators (server-side and worker-side) once;
        # the daemon's steady state is what we are measuring.
        assert client.compile(PROG)["ok"]
        assert client.run(PROG)["ok"]
        yield s


def _cold_single_shot(tmp_path: Path) -> float:
    """One ``reproc`` subprocess compile — the pre-daemon workflow."""
    src = tmp_path / "bench.xc"
    src.write_text(PROG)
    env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
    best = float("inf")
    for i in range(N_COLD):
        out = tmp_path / f"bench{i}.c"
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", str(src),
             "-x", "matrix", "-o", str(out)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        dt = time.perf_counter() - t0
        assert proc.returncode == 0, proc.stderr
        best = min(best, dt)
    return best


class TestServeThroughput:
    def test_warm_daemon_beats_cold_single_shot(self, server, tmp_path):
        client = ServeClient(port=server.port)

        # Warm load: half maximally-coalescible, half distinct sources.
        coalesce = client.load(PROG, requests=N_REQUESTS // 2,
                               clients=N_CLIENTS, rtype="compile",
                               distinct=1)
        distinct = client.load(PROG, requests=N_REQUESTS // 2,
                               clients=N_CLIENTS, rtype="compile",
                               distinct=8)
        runs = client.load(PROG, requests=min(16, N_REQUESTS // 2),
                           clients=N_CLIENTS, rtype="run", distinct=1)
        assert coalesce["failed"] == 0
        assert distinct["failed"] == 0
        assert runs["failed"] == 0
        assert coalesce["coalesced"] > 0  # the herd shared work

        cold_s = _cold_single_shot(tmp_path)
        cold_rps = 1.0 / cold_s
        warm_rps = coalesce["throughput_rps"]
        speedup = warm_rps / cold_rps

        stats = client.stats()["stats"]
        record = {
            "experiment": "E-SRV",
            "smoke": SMOKE,
            "clients": N_CLIENTS,
            "requests": N_REQUESTS,
            "warm_compile_coalesced": {
                k: round(v, 3) if isinstance(v, float) else v
                for k, v in coalesce.items()},
            "warm_compile_distinct": {
                k: round(v, 3) if isinstance(v, float) else v
                for k, v in distinct.items()},
            "warm_run": {
                k: round(v, 3) if isinstance(v, float) else v
                for k, v in runs.items()},
            "cold_single_shot_s": round(cold_s, 4),
            "cold_rps": round(cold_rps, 3),
            "warm_vs_cold_speedup": round(speedup, 1),
            "gate": GATE,
            "serve_counters": {k: v for k, v in stats.items()
                               if k.startswith("serve_") and v},
            "python": platform.python_version(),
        }
        (REPO_ROOT / "BENCH_serve.json").write_text(
            json.dumps(record, indent=2) + "\n")
        print(f"\nwarm {warm_rps:.0f} rps (p50 {coalesce['p50_ms']:.1f} ms, "
              f"p99 {coalesce['p99_ms']:.1f} ms)  "
              f"cold {cold_rps:.2f} rps  speedup {speedup:.0f}x")
        assert speedup >= GATE, \
            f"warm daemon only {speedup:.1f}x cold single-shot (gate {GATE}x)"

    def test_run_latency_tail_is_bounded(self, server):
        """p99 of warm runs stays under a generous interactive bound."""
        client = ServeClient(port=server.port)
        report = client.load(PROG, requests=12, clients=4, rtype="run",
                             distinct=4)
        assert report["failed"] == 0
        assert report["p99_ms"] < 30_000
