"""Benchmark fixtures: shared translated/compiled artifacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Optimizations, make_translator
from repro.cexec import gcc_available

requires_gcc = pytest.mark.skipif(not gcc_available(), reason="gcc not available")


@pytest.fixture(scope="session")
def matrix_translator():
    return make_translator(["matrix"])


@pytest.fixture(scope="session")
def full_translator():
    return make_translator(["matrix", "transform"])


@pytest.fixture(scope="session")
def ssh_cube():
    return np.random.default_rng(0).normal(0, 0.4, (48, 64, 64)).astype(np.float32)
