"""E-OPT: ablation of the §III-A.4 high-level optimizations.

The paper argues these are exactly the optimizations a *library* cannot
perform ("high-level and invasive optimizations such as this cannot be
applied across separate libraries"):

1. assignment fusion — the with-loop writes straight into the target,
   avoiding a temporary and an elementwise copy;
2. fold slice elimination — ``mat[i,j,:][k]`` reads the source directly
   instead of materializing a rank-1 slice per surface point.

Each is measured on/off: native wall time plus the observable allocation
and copy counts.
"""

import numpy as np
import pytest

from repro.api import Optimizations, compile_source
from repro.cexec import CompiledProgram, gcc_available
from repro.programs import load

FIG1 = load("fig1")

CONFIGS = {
    "optimized": Optimizations(parallelize=False),
    "no-fusion": Optimizations(parallelize=False, fuse_assignment=False),
    "no-slice-elim": Optimizations(parallelize=False, eliminate_slices=False),
    "library-baseline": Optimizations(parallelize=False, fuse_assignment=False,
                                      eliminate_slices=False),
}


def build(config_name: str) -> CompiledProgram:
    result = compile_source(FIG1, ["matrix"], options=CONFIGS[config_name])
    assert result.ok, result.errors
    return CompiledProgram(result.c_source)


@pytest.fixture(scope="module")
def cube():
    # p is the slice length: make it large enough that slice
    # materialization is visible
    return np.random.default_rng(1).normal(0, 1, (64, 64, 96)).astype(np.float32)


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
class TestAllocationCounts:
    """The structural claim, independent of timing noise."""

    def counts(self, config, cube):
        prog = build(config)
        try:
            run = prog.run({"ssh.data": cube}, output_names=["means.data"])
            return run.stats, run.outputs["means.data"]
        finally:
            prog.cleanup()

    def test_optimized_allocates_two(self, cube):
        stats, out = self.counts("optimized", cube)
        assert stats.allocs == 2          # input + means
        assert stats.copies == 0
        assert stats.leaked == 0
        assert np.allclose(out, cube.mean(axis=2), atol=1e-3)

    def test_no_fusion_adds_temp_and_copy(self, cube):
        stats, out = self.counts("no-fusion", cube)
        assert stats.allocs == 3          # + with-loop temporary
        assert stats.copies == 1          # rt_assign_copy into means
        assert stats.leaked == 0
        assert np.allclose(out, cube.mean(axis=2), atol=1e-3)

    def test_no_slice_elim_allocates_per_iteration(self, cube):
        stats, out = self.counts("no-slice-elim", cube)
        m, n, p = cube.shape
        # The naive translation materializes mat[i,j,:] inside the fold
        # body — once per innermost iteration (no loop-invariant motion),
        # which is precisely the "iterate over a copied slice" behaviour
        # the optimization removes.
        assert stats.allocs == 2 + m * n * p
        assert stats.leaked == 0
        assert np.allclose(out, cube.mean(axis=2), atol=1e-3)

    def test_all_configs_agree(self, cube):
        outs = [self.counts(c, cube)[1] for c in CONFIGS]
        for o in outs[1:]:
            assert np.allclose(outs[0], o, atol=1e-4)


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
class TestRuntimes:
    @pytest.mark.parametrize("config", list(CONFIGS))
    def test_bench_config(self, benchmark, cube, config):
        prog = build(config)
        try:
            def run():
                return prog.run({"ssh.data": cube},
                                output_names=["means.data"],
                                collect_stats=False)

            out = benchmark(run)
            assert np.allclose(out.outputs["means.data"],
                               cube.mean(axis=2), atol=1e-3)
        finally:
            prog.cleanup()
