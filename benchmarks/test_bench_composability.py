"""E-VI: the modular analyses (§VI) — the pass/fail table and their cost.

Regenerates the paper's composability results:

| extension              | isComposable | MWDA |
|------------------------|--------------|------|
| matrix                 | PASS         | PASS |
| transform (on matrix)  | PASS         | PASS |
| tuples (standalone)    | FAIL         |  —   | -> packaged with host
| tuples with (| |)      | PASS         |  —   |

and benchmarks the analyses themselves (they run at extension-development
time, so their cost is what an extension author experiences).
"""

import pytest

from repro.ag import check_well_definedness
from repro.api import module_registry
from repro.exts.tuples import marked_tuples_grammar, standalone_tuples_grammar
from repro.mda import is_composable, verify_composition_theorem


@pytest.fixture(scope="module")
def reg():
    return module_registry()


@pytest.fixture(scope="module")
def prefer(reg):
    return reg["cminus"].prefer_shift


class TestPaperTable:
    def test_matrix_passes(self, reg, prefer):
        report = is_composable(reg["cminus"].grammar, reg["matrix"].grammar,
                               prefer_shift=prefer)
        assert report.passed, str(report)

    def test_transform_passes_layered(self, reg, prefer):
        report = is_composable(reg["cminus"].grammar, reg["transform"].grammar,
                               base=(reg["matrix"].grammar,), prefer_shift=prefer)
        assert report.passed, str(report)

    def test_tuples_fails_exactly_as_paper_says(self, reg, prefer):
        """§VI-A: "the initial symbol for tuple expressions is a
        left-paren '(' which violates the restriction that a unique
        initial terminal symbol is needed"."""
        report = is_composable(reg["cminus"].grammar,
                               standalone_tuples_grammar(), prefer_shift=prefer)
        assert not report.passed
        assert any("does not begin with a marking terminal" in v
                   and "LParen" in v for v in report.violations)

    def test_marked_tuples_pass(self, reg, prefer):
        """§VI-A's remedy: "modify the tuple terminals to be (| and |)"."""
        report = is_composable(reg["cminus"].grammar, marked_tuples_grammar(),
                               prefer_shift=prefer)
        assert report.passed, str(report)

    def test_composition_theorem_holds(self, reg, prefer):
        assert verify_composition_theorem(
            reg["cminus"].grammar,
            [reg["matrix"].grammar],
            prefer_shift=prefer,
        )

    def test_mwda_all_modules_pass(self, reg):
        """§VI-B: "All extensions described above pass this analysis"."""
        composed = reg["cminus"].ag.compose(reg["matrix"].ag, reg["transform"].ag)
        for module in ("cminus", "matrix", "transform", None):
            report = check_well_definedness(composed, module=module)
            assert report.passed, str(report)

    def test_print_table(self, reg, prefer, capsys):
        rows = [
            ("matrix", is_composable(reg["cminus"].grammar,
                                     reg["matrix"].grammar,
                                     prefer_shift=prefer).passed),
            ("transform (on matrix)", is_composable(
                reg["cminus"].grammar, reg["transform"].grammar,
                base=(reg["matrix"].grammar,), prefer_shift=prefer).passed),
            ("tuples (standalone)", is_composable(
                reg["cminus"].grammar, standalone_tuples_grammar(),
                prefer_shift=prefer).passed),
            ("tuples with (| |)", is_composable(
                reg["cminus"].grammar, marked_tuples_grammar(),
                prefer_shift=prefer).passed),
        ]
        with capsys.disabled():
            print("\nisComposable results (paper §VI-A):")
            for name, ok in rows:
                print(f"  {name:24s} {'PASS' if ok else 'FAIL'}")
        assert [ok for _n, ok in rows] == [True, True, False, True]


class TestAnalysisPerformance:
    def test_bench_mda_matrix(self, benchmark, reg, prefer):
        report = benchmark(
            is_composable, reg["cminus"].grammar, reg["matrix"].grammar,
            prefer_shift=prefer,
        )
        assert report.passed

    def test_bench_mwda_full(self, benchmark, reg):
        composed = reg["cminus"].ag.compose(reg["matrix"].ag, reg["transform"].ag)
        report = benchmark(check_well_definedness, composed)
        assert report.passed

    def test_bench_lalr_construction_composed(self, benchmark, reg):
        from repro.parsing import build_tables

        grammar = reg["cminus"].grammar.compose(
            reg["matrix"].grammar, reg["transform"].grammar
        ).build()
        tables = benchmark(build_tables, grammar,
                           prefer_shift=reg["cminus"].prefer_shift)
        assert tables.num_states > 100
