"""Backend comparison: gcc-compiled native code vs the instrumented
Python interpreter, plus translator-pipeline stage costs.

Not a paper experiment — context for all the other numbers: how much the
"traditional compiler" step (§II) buys over direct interpretation, and
where translator time goes.
"""

import numpy as np
import pytest

from repro.api import Optimizations, compile_source, make_translator
from repro.cexec import CompiledProgram, gcc_available
from repro.cexec.interp import Interpreter
from repro.cexec.rmat import write_rmat
from repro.programs import load

CUBE = np.random.default_rng(0).normal(0, 1, (12, 12, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def translated():
    t = make_translator(["matrix"], options=Optimizations(parallelize=False))
    result = t.compile(load("fig1"))
    assert result.ok
    return result


class TestInterpreterThroughput:
    def test_bench_interpreter_fig1(self, benchmark, translated, tmp_path):
        write_rmat(tmp_path / "ssh.data", CUBE)

        def run():
            interp = Interpreter(translated.lowered, translated.ctx,
                                 workdir=tmp_path)
            return interp.run_main()

        rc = benchmark(run)
        assert rc == 0

    @pytest.mark.skipif(not gcc_available(), reason="gcc not available")
    def test_bench_native_fig1_same_cube(self, benchmark, translated):
        prog = CompiledProgram(translated.c_source)
        try:
            def run():
                return prog.run({"ssh.data": CUBE}, collect_stats=False)

            out = benchmark(run)
            assert out.returncode == 0
        finally:
            prog.cleanup()


class TestPipelineStages:
    SRC = load("fig8")

    @pytest.fixture(scope="class")
    def translator(self):
        return make_translator(["matrix"])

    def test_bench_stage_parse(self, benchmark, translator):
        root = benchmark(translator.parse, self.SRC)
        assert root.prod == "root"

    def test_bench_stage_errors(self, benchmark, translator):
        root = translator.parse(self.SRC)

        def check():
            dn, _ctx = translator.decorate(root)
            return dn.att("errors")

        errors = benchmark(check)
        assert errors == []

    def test_bench_stage_lowering(self, benchmark, translator):
        root = translator.parse(self.SRC)

        def lower():
            dn, ctx = translator.decorate(root)
            return dn.att("lowered"), ctx

        lowered, _ = benchmark(lower)
        assert lowered.prod == "root"

    def test_bench_stage_emit(self, benchmark, translator):
        root = translator.parse(self.SRC)
        dn, ctx = translator.decorate(root)
        lowered = dn.att("lowered")
        c = benchmark(translator.emit_c, lowered, ctx)
        assert "int main" in c
