"""E-SVC: the compilation service layer (S21).

Measures what the service buys: (a) warm translator acquisition — an
in-memory or on-disk cache hit — against cold construction (grammar
composition + LALR tables + scanner DFA), with a hard >=10x acceptance
gate; (b) batch throughput over the bundled program corpus at pool sizes
1/2/4.  Numbers are recorded in EXPERIMENTS.md (E-SVC).
"""

from __future__ import annotations

import time

import pytest

from repro.programs import PROGRAMS, load
from repro.service import (
    ArtifactStore,
    CompileRequest,
    CompileService,
    TranslatorCache,
)

EXTS = ("matrix", "transform")
CORPUS = sorted(PROGRAMS)


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestWarmAcquisition:
    def test_memory_warm_is_10x_faster_than_cold(self):
        """Acceptance gate: warm acquisition >=10x faster than cold build."""
        cold_cache = TranslatorCache(artifacts=ArtifactStore(None))
        cold = _best_of(3, lambda: (cold_cache.clear(),
                                    cold_cache.get(list(EXTS))))

        warm_cache = TranslatorCache(artifacts=ArtifactStore(None))
        warm_cache.get(list(EXTS))
        warm = _best_of(20, lambda: warm_cache.get(list(EXTS)))

        speedup = cold / warm
        print(f"\ncold {cold * 1e3:.1f} ms  warm {warm * 1e3:.3f} ms  "
              f"speedup {speedup:.0f}x")
        assert speedup >= 10, f"warm acquisition only {speedup:.1f}x faster"

    def test_disk_warm_is_10x_faster_than_cold(self, tmp_path):
        """A fresh process restoring artifacts beats regenerating them."""
        store = ArtifactStore(tmp_path / "artifacts")
        TranslatorCache(artifacts=store).get(list(EXTS))  # populate disk

        cold = _best_of(
            3, lambda: TranslatorCache(artifacts=ArtifactStore(None)).get(list(EXTS))
        )
        disk_warm = _best_of(
            3, lambda: TranslatorCache(artifacts=store).get(list(EXTS))
        )
        speedup = cold / disk_warm
        print(f"\ncold {cold * 1e3:.1f} ms  disk-warm {disk_warm * 1e3:.1f} ms  "
              f"speedup {speedup:.0f}x")
        assert speedup >= 10, f"disk-warm acquisition only {speedup:.1f}x faster"

    def test_bench_cold_construction(self, benchmark):
        cache = TranslatorCache(artifacts=ArtifactStore(None))
        benchmark(lambda: (cache.clear(), cache.get(list(EXTS))))

    def test_bench_warm_acquisition(self, benchmark):
        cache = TranslatorCache(artifacts=ArtifactStore(None))
        cache.get(list(EXTS))
        benchmark(lambda: cache.get(list(EXTS)))

    def test_bench_disk_restore(self, benchmark, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        TranslatorCache(artifacts=store).get(list(EXTS))
        benchmark(lambda: TranslatorCache(artifacts=store).get(list(EXTS)))


class TestBatchThroughput:
    @pytest.fixture(scope="class")
    def service(self):
        svc = CompileService(TranslatorCache(artifacts=ArtifactStore(None)))
        svc.cache.get(list(EXTS))  # pre-warm: measure compile throughput
        return svc

    @pytest.fixture(scope="class")
    def requests(self):
        return [
            CompileRequest(load(n), extensions=EXTS, filename=n) for n in CORPUS
        ] * 4  # 16 programs per batch

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bench_batch_throughput(self, benchmark, service, requests, workers):
        responses = benchmark(
            service.compile_batch, requests, max_workers=workers
        )
        assert all(r.ok for r in responses)

    def test_throughput_report(self, service, requests, capsys):
        """Programs/sec at each pool size (recorded in EXPERIMENTS.md)."""
        lines = []
        for workers in (1, 2, 4):
            dt = _best_of(
                3, lambda w=workers: service.compile_batch(requests, max_workers=w)
            )
            lines.append(
                f"pool={workers}: {len(requests) / dt:7.1f} programs/sec "
                f"({dt * 1e3:.0f} ms / {len(requests)} programs)"
            )
        with capsys.disabled():
            print("\n" + "\n".join(lines))
