"""E-F4 / E-F7 / E-F8: the spatio-temporal data-mining application (§IV).

Runs the paper's two applications (eddy scoring, connected components)
natively at a scaled-down AVISO-like grid, validates against the numpy
references, reports detection quality against the synthetic ground
truth, and benchmarks end-to-end throughput.
"""

import numpy as np
import pytest

from repro.api import compile_source
from repro.cexec import CompiledProgram, gcc_available
from repro.eddy import (
    conn_comp,
    detection_quality,
    synthetic_ssh,
    temporal_scores,
)
from repro.programs import load


@pytest.fixture(scope="module")
def ssh_data():
    # 1/16-per-axis scale of the paper's 721x1440x954 grid
    return synthetic_ssh((45, 90, 60), n_eddies=4, seed=17)


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
class TestFig8Native:
    @pytest.fixture(scope="class")
    def prog(self):
        result = compile_source(load("fig8"), ["matrix"])
        p = CompiledProgram(result.c_source)
        yield p
        p.cleanup()

    def test_matches_reference_at_scale(self, prog, ssh_data):
        run = prog.run({"ssh.data": ssh_data.cube},
                       output_names=["temporalScores.data"], nthreads=2)
        got = run.outputs["temporalScores.data"]
        ref = temporal_scores(ssh_data.cube)
        assert np.allclose(got, ref, atol=1e-2, rtol=1e-3)
        assert run.stats.leaked == 0

    def test_detection_quality(self, prog, ssh_data, capsys):
        run = prog.run({"ssh.data": ssh_data.cube},
                       output_names=["temporalScores.data"], nthreads=2)
        q = detection_quality(run.outputs["temporalScores.data"],
                              ssh_data.eddy_mask())
        base = ssh_data.eddy_mask().mean()
        with capsys.disabled():
            print(f"\nE-F8 eddy detection: precision={q['precision']:.2f} "
                  f"recall={q['recall']:.2f} (base rate {base:.2f})")
        assert q["precision"] > 2 * base
        assert q["recall"] > 0.4

    def test_bench_eddy_scoring(self, benchmark, prog, ssh_data):
        def run():
            return prog.run({"ssh.data": ssh_data.cube},
                            output_names=["temporalScores.data"],
                            collect_stats=False)

        out = benchmark(run)
        assert out.returncode == 0


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
class TestFig4Native:
    @pytest.fixture(scope="class")
    def prog(self):
        result = compile_source(load("fig4"), ["matrix"])
        p = CompiledProgram(result.c_source)
        yield p
        p.cleanup()

    @pytest.fixture(scope="class")
    def inputs(self):
        rng = np.random.default_rng(23)
        ssh = rng.normal(0.15, 0.5, (24, 30, 8)).astype(np.float32)
        dates = np.array([1011990 + 5 * k for k in range(8)], dtype=np.int32)
        return {"ssh.data": ssh, "dates.data": dates}

    def test_labels_match_reference(self, prog, inputs):
        run = prog.run(inputs, output_names=["eddyLabels.data"], nthreads=2)
        labels = run.outputs["eddyLabels.data"]
        ssh, dates = inputs["ssh.data"], inputs["dates.data"]
        kept = np.where(dates >= 1012000)[0]
        assert labels.shape[2] == len(kept)
        for out_t, src_t in enumerate(kept):
            assert (labels[:, :, out_t] == conn_comp(ssh[:, :, src_t])).all()
        assert run.stats.leaked == 0

    def test_bench_conncomp(self, benchmark, prog, inputs):
        def run():
            return prog.run(inputs, output_names=["eddyLabels.data"],
                            collect_stats=False)

        out = benchmark(run)
        assert out.returncode == 0


class TestReferenceThroughput:
    """The numpy oracle's own cost (context for the native numbers)."""

    def test_bench_numpy_reference_scoring(self, benchmark):
        data = synthetic_ssh((24, 30, 48), n_eddies=2, seed=3)
        out = benchmark(temporal_scores, data.cube)
        assert out.shape == data.cube.shape

    def test_bench_synthetic_generation(self, benchmark):
        out = benchmark(synthetic_ssh, (45, 90, 60), n_eddies=4, seed=17)
        assert out.cube.shape == (45, 90, 60)
