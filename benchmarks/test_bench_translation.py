"""E-F1 / E-F3: the Fig 1 -> Fig 3 translation.

Regenerates the paper's central code artifact — the expansion of the
nested with-loops into plain C — asserts its structure matches Fig 3
(fused assignment: no temporary matrix, no copy; fold slice eliminated:
direct ``mat[i,j,k]`` access), and benchmarks the translator itself.
"""

import re

import pytest

from repro.api import Optimizations, compile_source, make_translator
from repro.programs import load

FIG1 = load("fig1")

# Fig 3's translation is sequential (the paper shows plain loops); use the
# same configuration for shape comparison.
SEQ = Optimizations(parallelize=False)


@pytest.fixture(scope="module")
def fig3_c() -> str:
    result = compile_source(FIG1, ["matrix"], options=SEQ)
    assert result.ok, result.errors
    return result.c_source[result.c_source.index("int __user_main"):]


class TestFig1Compiles:
    def test_translates_without_errors(self, matrix_translator):
        result = matrix_translator.compile(FIG1)
        assert result.ok, result.errors
        assert result.c_source is not None


class TestFig3Shape:
    """Assertions mirroring the prose around Fig 3."""

    def test_genarray_becomes_two_nested_loops(self, fig3_c):
        # "the outer genarray has been replaced with two nested for loops,
        # each iterating over one dimension of mat"
        loops = re.findall(r"for \(long (\w+) = ", fig3_c)
        assert loops[:2] == ["i", "j"]

    def test_fold_becomes_accumulator_loop(self, fig3_c):
        # "the inner fold has been replaced with a loop which adds each
        # sea height ... divides it by p ... copies the value into means"
        assert re.search(r"for \(long k = ", fig3_c)
        assert re.search(r"__acc\d+ = \(__acc\d+ \+ rt_getf\(mat", fig3_c)
        assert re.search(r"rt_setf\(means, .*__acc\d+ / p", fig3_c)

    def test_assignment_fused_no_temp_no_copy(self, fig3_c):
        # "move the assignment and avoid an extraneous copy": writes go
        # straight into `means`; no with-loop temporary is allocated
        assert "rt_assign_copy" not in fig3_c
        allocs = re.findall(r"rt_alloc[fi]\(", fig3_c)
        assert len(allocs) == 1  # only init's allocation of means

    def test_slice_eliminated(self, fig3_c):
        # "the matrix indexing in line 11 ... was removed": the fold reads
        # mat[i,j,k] directly; no rank-1 slice is materialized per point
        assert re.search(
            r"rt_getf\(mat, \(\(\(\(i \* rt_dim\(mat, 1\)\) \+ j\) "
            r"\* rt_dim\(mat, 2\)\) \+ k\)\)",
            fig3_c,
        )

    def test_library_baseline_has_temp_and_copy(self):
        result = compile_source(
            FIG1, ["matrix"],
            options=Optimizations(parallelize=False, fuse_assignment=False,
                                  eliminate_slices=False),
        )
        body = result.c_source[result.c_source.index("int __user_main"):]
        # "A library implementation ... evaluate the result of the
        # with-loops into a temporary variable which is then copied"
        assert "rt_assign_copy" in body
        assert len(re.findall(r"rt_alloc[fi]\(", body)) >= 3  # means + temp + slice


class TestTranslatorPerformance:
    def test_bench_translator_generation(self, benchmark):
        """Generating a custom translator (scanner DFA + LALR tables +
        composed AG) from the host + matrix specifications."""
        from repro.api import _registry
        from repro.driver import Translator

        reg = _registry()
        modules = [reg["cminus"], reg["tuples"], reg["refcount"], reg["matrix"]]
        benchmark(lambda: Translator(list(modules)))

    def test_bench_fig1_translation(self, benchmark, matrix_translator):
        """Parsing + checking + lowering + printing Fig 1."""
        result = benchmark(matrix_translator.compile, FIG1)
        assert result.ok

    def test_bench_fig8_translation(self, benchmark, matrix_translator):
        """The full eddy program (tuples + slices + matrixMap)."""
        src = load("fig8")
        result = benchmark(matrix_translator.compile, src)
        assert result.ok

    def test_bench_error_checking_only(self, benchmark, matrix_translator):
        result = benchmark(matrix_translator.compile, FIG1, check_only=True)
        assert result.ok
