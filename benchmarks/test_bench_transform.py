"""E-F9/E-F10/E-F11: the explicit-transformation pipeline (§V).

Regenerates the Fig 9 -> Fig 10 -> Fig 11 sequence, asserts each stage's
structure matches the paper's figures, and measures both the transformer
itself and the native runtime of each schedule.
"""

import re

import numpy as np
import pytest

from repro.api import Optimizations, compile_source
from repro.cexec import CompiledProgram, gcc_available
from repro.programs import load

FIG9 = load("fig9")
SEQ = Optimizations(parallelize=False)

STAGE_CLAUSES = {
    "fig3 (expanded, untransformed)": "",
    "fig10 (after split)": "\n        transform split j by 4, jin, jout",
    "fig11 (split + vectorize + parallelize)":
        "\n        transform split j by 4, jin, jout."
        "\n                  vectorize jin."
        "\n                  parallelize i",
}


def translate(clause: str) -> str:
    src = FIG9.replace(
        "\n        transform split j by 4, jin, jout."
        "\n                  vectorize jin."
        "\n                  parallelize i", clause
    )
    result = compile_source(src, ["matrix", "transform"], options=SEQ)
    assert result.ok, result.errors
    return result.c_source[result.c_source.index("int __user_main"):]


class TestFig10Shape:
    """Fig 10: "the loop indexed by j has been split into two loops ...
    replaces instances of j with the appropriate expression jout*4+jin"."""

    def test_split_structure(self):
        body = translate(STAGE_CLAUSES["fig10 (after split)"])
        assert "for (long jout = 0" in body
        assert "for (long jin = 0; jin < 4; jin = jin + 1)" in body
        assert "(jout * 4) + jin" in body
        assert "for (long j " not in body  # the j loop is gone

    def test_divisibility_guard(self):
        # we check at runtime what the paper assumes ("n is a multiple of 4")
        body = translate(STAGE_CLAUSES["fig10 (after split)"])
        assert "rt_require_divisible" in body


class TestFig11Shape:
    """Fig 11: vectorized inner loop + OpenMP pragma, with vector
    temporaries "floated above the outermost for loop"."""

    @pytest.fixture(scope="class")
    def body(self):
        return translate(STAGE_CLAUSES["fig11 (split + vectorize + parallelize)"])

    def test_pragma_on_outer_loop(self, body):
        at = body.index("#pragma omp parallel for")
        following = body[at:].splitlines()[1]
        assert "for (long i" in following

    def test_hoisted_splats_before_nest(self, body):
        pragma_at = body.index("#pragma")
        hoisted = body[:pragma_at]
        assert hoisted.count("rt_vsplatf") >= 2  # 0.0f neutral and p

    def test_vector_accumulator_in_k_loop(self, body):
        k_at = body.index("for (long k")
        k_body = body[k_at:k_at + 400]
        assert "rt_vaddf" in k_body

    def test_vector_loads_and_store(self, body):
        # loads along j are strided by dims[2] -> gathers; the store into
        # means is contiguous in j -> vector store
        assert "rt_vgatherf(mat" in body
        assert "rt_vstoref(means" in body
        assert "rt_vdivf" in body

    def test_vectorized_loop_steps_by_four(self, body):
        assert "jin = jin + 4" in body


class TestTransformerPerformance:
    def test_bench_full_pipeline(self, benchmark):
        """Translate Fig 9 with all three clauses applied."""
        def go():
            return compile_source(FIG9, ["matrix", "transform"], options=SEQ)

        result = benchmark(go)
        assert result.ok

    @pytest.mark.skipif(not gcc_available(), reason="gcc not available")
    def test_bench_native_stage_runtimes(self, benchmark, ssh_cube):
        """Native runtime of the Fig 11 schedule on the test cube.

        (One vCPU here: the parallel/vector schedule cannot beat the
        baseline; EXPERIMENTS.md reports the shapes and the 1-core
        numbers honestly.)"""
        result = compile_source(FIG9, ["matrix", "transform"], options=SEQ)
        prog = CompiledProgram(result.c_source)
        try:
            def run():
                return prog.run({"ssh.data": ssh_cube},
                                output_names=["means.data"], nthreads=1,
                                collect_stats=False)

            out = benchmark(run)
            assert np.allclose(out.outputs["means.data"],
                               ssh_cube.mean(axis=2), atol=1e-3)
        finally:
            prog.cleanup()

    @pytest.mark.skipif(not gcc_available(), reason="gcc not available")
    def test_bench_native_baseline_runtime(self, benchmark, ssh_cube):
        result = compile_source(load("fig1"), ["matrix"], options=SEQ)
        prog = CompiledProgram(result.c_source)
        try:
            def run():
                return prog.run({"ssh.data": ssh_cube},
                                output_names=["means.data"], nthreads=1,
                                collect_stats=False)

            out = benchmark(run)
            assert np.allclose(out.outputs["means.data"],
                               ssh_cube.mean(axis=2), atol=1e-3)
        finally:
            prog.cleanup()
