"""E-FE: compiled front end vs. the interpreted reference (S24).

The compiled front end lowers context-aware scanning to dense
equivalence-class/transition/accept-bitmask tables and LALR driving to
integer ACTION/GOTO arrays, then fuses both into one scan+parse loop.
Semantic actions are shared verbatim between engines, so the speedup
gate runs the composed grammar with *null* actions (keeping the shared
:func:`~repro.grammar.cfg.PASS` identity productions, which are part of
the compiled table encoding): that isolates scanning + table driving —
the machinery the paper generates — from AST construction costs common
to both.  Acceptance gate: >=5x scan+parse throughput over the
interpreted engines on the bundled program corpus (>=3x smoke).

Tokenization throughput and end-to-end ``Translator.compile`` latency
(real actions, full pipeline) are recorded alongside in
``BENCH_frontend.json`` at the repo root so later PRs can track the
trajectory.  Identity is asserted before any timing: both engines must
produce equal token streams and equal trees on every corpus program —
a speedup over a divergent engine would be meaningless.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink repetition counts; the smoke
run still checks identity and records timings but gates only >=3x.
"""

from __future__ import annotations

import copy
import json
import os
import platform
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.api import make_translator
from repro.grammar.cfg import PASS
from repro.lexing.scanner import ContextAwareScanner
from repro.parsing.parser import Parser
from repro.programs import PROGRAMS, load

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
GATE = 3.0 if SMOKE else 5.0
REPS_FAST = 10 if SMOKE else 40   # compiled engine / tokenizer reps
REPS_SLOW = 3 if SMOKE else 10    # interpreted engine reps
REPO_ROOT = Path(__file__).resolve().parents[1]
EXTS = ["matrix", "transform"]
CORPUS = [(name, load(name)) for name in sorted(PROGRAMS)]


def _best_of(n: int, fn) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _null_action(children):
    return None


@pytest.fixture(scope="module")
def engines():
    """(compiled parser, interpreted parser, machinery pair) over the
    full extension grammar — built fresh, bypassing the service cache."""
    t = make_translator(EXTS, fresh=True)
    pc = t.parser
    g = pc.grammar
    pi = Parser(
        g,
        tables=pc.tables,
        scanner=ContextAwareScanner(g.terminal_set, backend="interpreted"),
        backend="interpreted",
    )
    # The machinery grammar: identical syntax, null semantic actions
    # (PASS kept — unit pass-throughs are recognized at table-attach
    # time and belong to the compiled encoding under test).
    ng = copy.copy(g)
    ng.productions = tuple(
        p if p.action is PASS else replace(p, action=_null_action)
        for p in g.productions
    )
    mc = Parser(ng, tables=pc.tables)
    mi = Parser(
        ng,
        tables=pc.tables,
        scanner=ContextAwareScanner(ng.terminal_set, backend="interpreted"),
        backend="interpreted",
    )
    return t, pc, pi, mc, mi


class TestFrontEnd:
    def test_engines_identical_on_corpus(self, engines):
        """The gate below is meaningless unless both engines agree."""
        _t, pc, pi, _mc, _mi = engines
        for name, text in CORPUS:
            assert (
                pc.scanner.tokenize_all(text, filename=name)
                == pi.scanner.tokenize_all(text, filename=name)
            ), f"token stream mismatch on {name}"
            assert pc.parse(text, filename=name) == pi.parse(
                text, filename=name
            ), f"tree mismatch on {name}"

    def test_scan_parse_gate_and_record(self, engines):
        t, pc, _pi, mc, mi = engines
        texts = [text for _name, text in CORPUS]
        ntokens = sum(len(pc.scanner.tokenize_all(x)) for x in texts)
        nchars = sum(len(x) for x in texts)

        # Scan+parse machinery (null actions, shared PASS productions).
        comp_s = _best_of(REPS_FAST, lambda: [mc.parse(x) for x in texts])
        interp_s = _best_of(REPS_SLOW, lambda: [mi.parse(x) for x in texts])

        # Context-free batch tokenization.
        tok_comp_s = _best_of(
            REPS_FAST, lambda: [pc.scanner.tokenize_all(x) for x in texts]
        )
        tok_interp_s = _best_of(
            REPS_SLOW, lambda: [mi.scanner.tokenize_all(x) for x in texts]
        )

        # End-to-end compile latency, real actions, full pipeline.
        compile_s = _best_of(
            3 if SMOKE else 5,
            lambda: [t.compile(x) for x in texts],
        )

        speedup = interp_s / comp_s
        tok_speedup = tok_interp_s / tok_comp_s
        record = {
            "experiment": "E-FE",
            "corpus": [name for name, _ in CORPUS],
            "tokens": ntokens,
            "chars": nchars,
            "smoke": SMOKE,
            "interpreted": {
                "scan_parse_ms": round(interp_s * 1e3, 2),
                "tokens_per_sec": round(ntokens / tok_interp_s),
            },
            "compiled": {
                "scan_parse_ms": round(comp_s * 1e3, 2),
                "tokens_per_sec": round(ntokens / tok_comp_s),
            },
            "scan_parse_speedup": round(speedup, 2),
            "tokenize_speedup": round(tok_speedup, 2),
            "compile_corpus_ms": round(compile_s * 1e3, 2),
            "python": platform.python_version(),
        }
        (REPO_ROOT / "BENCH_frontend.json").write_text(
            json.dumps(record, indent=2) + "\n"
        )
        print(
            f"\nscan+parse {comp_s * 1e3:.2f} ms vs {interp_s * 1e3:.2f} ms "
            f"= {speedup:.2f}x | tokenize {ntokens / tok_comp_s / 1e3:.0f}k "
            f"vs {ntokens / tok_interp_s / 1e3:.0f}k tok/s = {tok_speedup:.2f}x"
            f" | compile corpus {compile_s * 1e3:.1f} ms"
        )
        assert speedup >= GATE, (
            f"compiled scan+parse only {speedup:.2f}x faster than the "
            f"interpreted front end (gate {GATE}x)"
        )
        assert tok_speedup >= 3.0, (
            f"compiled tokenization only {tok_speedup:.2f}x faster "
            f"(floor 3x)"
        )
