"""E-S5: thread scaling and the enhanced fork-join model (§III-C).

The paper: with-loop code "scales nearly linearly with the number of
cores on the machine with two 6-core processors"; the enhanced fork-join
model (pool + spin lock) exists because naive per-construct thread
creation "pays the price of creating and destroying threads each time".

This container has ONE vCPU (see DESIGN.md substitutions), so:

* the fork-join *overheads* are measured natively (thread create/join is
  real regardless of core count);
* the per-element work ``t_iter`` is measured from the translated Fig 1
  binary;
* the scaling curve at the paper's scale (721 x 1440 surface points) is
  regenerated from the work/overhead model with those constants, and the
  near-linear-to-12-threads shape is asserted;
* native runs at several RT_THREADS settings check correctness and
  record the honest 1-core timings.
"""

import numpy as np
import pytest

from repro.api import Optimizations, compile_source
from repro.cexec import CompiledProgram, gcc_available
from repro.codegen.scaling import (
    ForkJoinCosts,
    calibrated_costs,
    crossover_work,
    format_curve,
    predicted_time_us,
    scaling_curve,
)
from repro.programs import load

PAPER_SURFACE_POINTS = 721 * 1440  # the AVISO grid of §IV


@pytest.fixture(scope="module")
def costs() -> ForkJoinCosts:
    return calibrated_costs()


@pytest.fixture(scope="module")
def t_iter_us() -> float:
    """Per-surface-point cost of the generated Fig 1 loop body, measured
    natively when gcc is available (falls back to a documented value)."""
    if not gcc_available():
        return 0.5
    import time

    cube = np.random.default_rng(0).normal(0, 1, (96, 96, 64)).astype(np.float32)
    result = compile_source(load("fig1"), ["matrix"],
                            options=Optimizations(parallelize=False))
    prog = CompiledProgram(result.c_source)
    try:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            prog.run({"ssh.data": cube}, output_names=["means.data"],
                     collect_stats=False)
            best = min(best, time.perf_counter() - t0)
    finally:
        prog.cleanup()
    points = 96 * 96
    return best * 1e6 / points


class TestCostModel:
    def test_measured_thread_create_cost(self, costs):
        # thread creation really was measured on this machine (if gcc)
        if gcc_available():
            assert "t_create_us" in costs.measured
            assert costs.t_create_us > 0.5  # creating a thread is not free

    def test_near_linear_scaling_at_paper_scale(self, costs, t_iter_us):
        """The paper's headline: near-linear speedup up to 12 threads."""
        curve = scaling_curve(PAPER_SURFACE_POINTS, t_iter_us, costs,
                              max_threads=12)
        print()
        print(format_curve(curve, f"enhanced fork-join, W={PAPER_SURFACE_POINTS}, "
                                  f"t_iter={t_iter_us:.2f}us"))
        s12 = curve[-1].speedup
        assert s12 > 10.0, f"speedup at 12 threads only {s12:.2f}"
        # monotone and efficiency stays high
        for a, b in zip(curve, curve[1:]):
            assert b.speedup > a.speedup
        assert all(pt.efficiency > 0.9 for pt in curve)

    def test_naive_model_scales_worse_on_small_work(self, costs, t_iter_us):
        small = 2_000
        enh = scaling_curve(small, t_iter_us, costs, max_threads=12,
                            model="enhanced")
        nai = scaling_curve(small, t_iter_us, costs, max_threads=12,
                            model="naive")
        assert enh[-1].speedup > nai[-1].speedup

    def test_crossover_much_smaller_for_enhanced(self, costs, t_iter_us):
        """Where parallelism starts to pay: the pool's crossover work size
        is far below naive fork-join's."""
        enh = crossover_work(t_iter_us, costs, 4, model="enhanced")
        nai = crossover_work(t_iter_us, costs, 4, model="naive")
        print(f"\ncrossover W (4 threads): enhanced={enh}, naive={nai}, "
              f"ratio={nai / max(enh, 1):.1f}x")
        assert nai > 5 * enh

    def test_overheads_monotone_in_threads(self, costs):
        for p in range(2, 12):
            assert costs.enhanced_overhead_us(p + 1) >= costs.enhanced_overhead_us(p)
            assert costs.naive_overhead_us(p + 1) > costs.naive_overhead_us(p)
        # per-region: the pool must be cheaper than creating threads
        for p in range(2, 13):
            assert costs.enhanced_overhead_us(p) < costs.naive_overhead_us(p)


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
class TestNativeFortJoinOverheads:
    """Measured per-region costs of pool vs naive thread spawning.

    Uses the generated runtime directly: a program with many tiny
    parallel regions.  On one core the pool's spin workers contend, so we
    measure with the *main-thread-only* inline path (p=1) against naive
    creation of one thread — isolating creation cost, which is the
    paper's point.
    """

    MICRO = r"""
int work(int reps) {
    Matrix float <1> v = init(Matrix float <1>, 64);
    for (int r = 0; r < reps; r = r + 1) {
        v = with ([0] <= [i] < [64]) genarray([64], 1.0);
    }
    return 0;
}
int main() { return work(200); }
"""

    def test_bench_many_small_regions_pool(self, benchmark):
        result = compile_source(self.MICRO, ["matrix"])
        prog = CompiledProgram(result.c_source)
        try:
            out = benchmark(lambda: prog.run(nthreads=1, collect_stats=True))
            assert out.stats.parallel_regions >= 200
        finally:
            prog.cleanup()

    def test_measured_thread_create_vs_model(self, costs):
        from repro.codegen.scaling import measure_thread_create_us

        measured = measure_thread_create_us()
        assert measured is not None
        # 200 naive constructs would cost measured*200 us of pure
        # management overhead; the pool pays (near) nothing inline.
        assert measured * 200 > 1000  # >1ms of avoided overhead


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
class TestThreadedRuns:
    """Honest native runs at several thread counts (1 vCPU: we assert
    correctness and bounded slowdown, not speedup)."""

    @pytest.fixture(scope="class")
    def prog(self):
        result = compile_source(load("fig1"), ["matrix"])
        p = CompiledProgram(result.c_source)
        yield p
        p.cleanup()

    @pytest.fixture(scope="class")
    def cube(self):
        return np.random.default_rng(0).normal(0, 1, (64, 64, 32)).astype(np.float32)

    @pytest.mark.parametrize("nthreads", [1, 2, 4])
    def test_bench_threads(self, benchmark, prog, cube, nthreads):
        def run():
            return prog.run({"ssh.data": cube}, output_names=["means.data"],
                            nthreads=nthreads, collect_stats=False)

        out = benchmark(run)
        assert np.allclose(out.outputs["means.data"], cube.mean(axis=2),
                           atol=1e-3)
