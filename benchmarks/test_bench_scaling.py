"""E-S5 / E-PAR: fork-join scaling, measured (§III-C).

The paper: with-loop code "scales nearly linearly with the number of
cores on the machine with two 6-core processors"; the enhanced fork-join
model (pool + spin lock) exists because naive per-construct thread
creation "pays the price of creating and destroying threads each time".

With the S23 in-process pool the VM half of this experiment is now
*measured*, not modelled: fig1's temporal mean is timed at 1/2/4 pool
workers and the wall-clock curve lands in ``BENCH_parallel.json``.  The
numpy fast path releases the GIL for its batched loop bodies, so shards
genuinely overlap on a multi-core host.  Gates:

* on a >=4-core runner (GitHub CI), >=1.6x speedup at 4 workers;
* on this 1-vCPU container (see DESIGN.md substitutions), only bounded
  overhead is asserted and the honest timings are recorded with the
  core count;
* enhanced vs naive fork-join is compared for real by running the same
  region-heavy program under ``fork_mode="naive"`` (fresh threads per
  construct, the model the paper rejects).

Native gcc runs keep their original role: thread-creation overhead is
real regardless of core count, and RT_THREADS runs check correctness.

Set ``REPRO_BENCH_SMOKE=1`` (CI) to shrink the workload.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import compile_source
from repro.cexec import CompiledProgram, gcc_available
from repro.cexec.rmat import read_rmat, write_rmat
from repro.cexec.vm import VM
from repro.codegen.scaling import ForkJoinCosts, calibrated_costs
from repro.programs import load

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
# Few outer rows, huge time dimension: the per-(i,j) fold is one numpy
# pass over T elements, so almost all region time is GIL-released and
# the 8-row outer space still splits evenly over 4 workers.
SHAPE = (8, 2, 20_000) if SMOKE else (8, 4, 200_000)
REPEATS = 3 if SMOKE else 5
REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_FILE = REPO_ROOT / "BENCH_parallel.json"


def _merge_bench(update: dict) -> None:
    record = {}
    if BENCH_FILE.exists():
        try:
            record = json.loads(BENCH_FILE.read_text())
        except ValueError:
            record = {}
    record.update(update)
    BENCH_FILE.write_text(json.dumps(record, indent=2) + "\n")


@pytest.fixture(scope="module")
def costs() -> ForkJoinCosts:
    return calibrated_costs()


@pytest.fixture(scope="module")
def fig1(tmp_path_factory):
    wd = tmp_path_factory.mktemp("fig1scale")
    cube = np.random.default_rng(0).normal(0, 0.4, SHAPE).astype(np.float32)
    write_rmat(wd / "ssh.data", cube)
    cr = compile_source(load("fig1"), ["matrix"])
    assert cr.ok, cr.errors
    cr.bytecode()  # compile once, outside every timed region
    # Warm run: page cache for ssh.data, memoized register code.
    vm = VM(cr.lowered, cr.ctx, workdir=wd, nthreads=1, program=cr.bytecode())
    assert vm.run_main() == 0
    vm.close()
    return cr, wd, cube


def _timed_run(cr, wd, nthreads, fork_mode="enhanced", repeats=REPEATS,
               backend=None, out_name="means.data"):
    """Best-of wall-clock for a full program run at the given pool size.

    With ``backend="process"`` the lazy pool fork happens inside the
    timed region on the first repeat — best-of keeps the honest steady
    state while still charging each run its own pool start-up.
    """
    best = float("inf")
    regions = 0
    proc_regions = 0
    for _ in range(repeats):
        vm = VM(cr.lowered, cr.ctx, workdir=wd, nthreads=nthreads,
                program=cr.bytecode(), fork_mode=fork_mode,
                parallel_backend=backend)
        t0 = time.perf_counter()
        rc = vm.run_main()
        best = min(best, time.perf_counter() - t0)
        regions = vm.stats.parallel_regions
        proc_regions = vm.process_regions
        vm.close()
        assert rc == 0
    return best, regions, proc_regions, read_rmat(wd / out_name)


class TestMeasuredVMScaling:
    """E-PAR: measured wall-clock speedup of the S23 pool on fig1."""

    def test_measured_scaling_curve(self, fig1):
        cr, wd, cube = fig1
        times = {}
        reference = None
        for n in (1, 2, 4):
            secs, regions, _, out = _timed_run(cr, wd, n)
            assert regions >= 1
            if reference is None:
                reference = out
                assert np.allclose(out, cube.mean(axis=2, dtype=np.float64),
                                   atol=1e-2)
            else:
                assert np.array_equal(reference, out), \
                    f"nthreads={n} changed the result"
            times[n] = secs
        naive_secs, _, _, naive_out = _timed_run(cr, wd, 4, fork_mode="naive")
        assert np.array_equal(reference, naive_out)

        cpus = os.cpu_count() or 1
        curve = [{"threads": n, "seconds": round(times[n], 4),
                  "speedup": round(times[1] / times[n], 2)}
                 for n in (1, 2, 4)]
        speedup4 = times[1] / times[4]
        _merge_bench({
            "experiment": "E-PAR",
            "workload": "fig1 temporal mean (VM, S23 pool)",
            "shape": list(SHAPE),
            "smoke": SMOKE,
            "cpus": cpus,
            "curve": curve,
            "naive_fork_join_4_seconds": round(naive_secs, 4),
            "enhanced_over_naive_at_4": round(naive_secs / times[4], 2),
            "gate": {"required_speedup_at_4": 1.6,
                     "enforced": cpus >= 4,
                     "measured_speedup_at_4": round(speedup4, 2)},
            "python": platform.python_version(),
        })
        print("\n" + "  ".join(
            f"{c['threads']}w {c['seconds']*1e3:.0f}ms ({c['speedup']:.2f}x)"
            for c in curve) + f"  naive4 {naive_secs*1e3:.0f}ms")
        if cpus >= 4:
            assert speedup4 >= 1.6, \
                f"only {speedup4:.2f}x at 4 workers on {cpus} cores"
        else:
            # One core: no speedup possible, but the pool must not cost
            # much either (shard dispatch is condition waits, not spins).
            assert times[4] <= 2.5 * times[1], \
                f"pool overhead {times[4]/times[1]:.2f}x on {cpus} core(s)"

    def test_backend_scaling_curves(self, fig1, tmp_path):
        """E-PAR2: thread vs process backend, measured per-backend curves.

        Two workloads bound the design space: fig1's temporal mean is
        numpy-vectorized (the GIL is released, threads scale), while the
        integer-division genarray *bails* the fast path and runs scalar
        bytecode — there the GIL serializes threads and only the S27
        process pool can win.  The >=2x-at-4 gate applies to the process
        backend on the scalar workload, and only where >=4 CPUs exist.
        """
        cpus = os.cpu_count() or 1
        n_elems = 4_000 if SMOKE else 24_000
        src = """
        int main() {
            Matrix int <1> num = readMatrix("num.data");
            Matrix int <1> den = readMatrix("den.data");
            Matrix int <1> q = init(Matrix int <1>, %d);
            q = with ([0] <= [i] < [%d]) genarray([%d], num[i] / den[i]);
            writeMatrix("q.data", q);
            return 0;
        }
        """ % (n_elems, n_elems, n_elems)
        rng = np.random.default_rng(5)
        write_rmat(tmp_path / "num.data",
                   rng.integers(-1000, 1000, n_elems).astype(np.int32))
        write_rmat(tmp_path / "den.data",
                   rng.integers(1, 9, n_elems).astype(np.int32))
        scalar_cr = compile_source(src, ["matrix"])
        assert scalar_cr.ok, scalar_cr.errors
        scalar_cr.bytecode()

        fig1_cr, fig1_wd, _ = fig1
        workloads = {
            "fig1 temporal mean (numpy shards)":
                (fig1_cr, fig1_wd, "means.data"),
            "integer-division genarray (scalar shards)":
                (scalar_cr, tmp_path, "q.data"),
        }
        curves = []
        speedup4 = {}
        for wname, (cr, wd, out_name) in workloads.items():
            for backend in ("thread", "process"):
                times = {}
                reference = None
                for n in (1, 2, 4):
                    secs, regions, procs, out = _timed_run(
                        cr, wd, n, backend=backend, out_name=out_name)
                    assert regions >= 1
                    if backend == "process" and n > 1:
                        assert procs >= 1, \
                            f"{wname}: process backend never dispatched"
                    if reference is None:
                        reference = out
                    else:
                        assert np.array_equal(reference, out), \
                            f"{wname}/{backend}/{n} changed the result"
                    times[n] = secs
                for n in (1, 2, 4):
                    curves.append({
                        "workload": wname, "backend": backend, "workers": n,
                        "seconds": round(times[n], 4),
                        "speedup": round(times[1] / times[n], 2)})
                speedup4[(wname, backend)] = times[1] / times[4]
        scalar_proc4 = speedup4[
            ("integer-division genarray (scalar shards)", "process")]
        _merge_bench({"E-PAR2": {
            "experiment": "E-PAR2",
            "cpus": cpus,
            "smoke": SMOKE,
            "scalar_elems": n_elems,
            "curves": curves,
            "gate": {"backend": "process",
                     "workload": "integer-division genarray (scalar shards)",
                     "required_speedup_at_4": 2.0,
                     "enforced": cpus >= 4,
                     "measured_speedup_at_4": round(scalar_proc4, 2)},
            "python": platform.python_version(),
        }})
        print("\n" + "\n".join(
            f"{c['workload'][:24]:24s} {c['backend']:7s} "
            f"{c['workers']}w {c['seconds']*1e3:7.1f}ms ({c['speedup']:.2f}x)"
            for c in curves))
        if cpus >= 4:
            assert scalar_proc4 >= 2.0, \
                f"process backend only {scalar_proc4:.2f}x at 4 workers " \
                f"on {cpus} cores"
        else:
            # One core: no parallel win possible; bound the shm-copy and
            # dispatch overhead instead of pretending to measure speedup.
            t = {c["workers"]: c["seconds"] for c in curves
                 if c["workload"].startswith("integer-division")
                 and c["backend"] == "process"}
            assert t[4] <= 4.0 * t[1], \
                f"process pool overhead {t[4]/t[1]:.2f}x on {cpus} core(s)"

    def test_enhanced_pool_beats_naive_on_small_regions(self, tmp_path):
        """The paper's argument for the pool, measured in-process: many
        tiny parallel constructs are where per-region thread creation
        hurts.  200 regions x fresh threads vs one persistent pool."""
        reps = 50 if SMOKE else 200
        src = """
        int work(int reps) {
            Matrix float <1> v = init(Matrix float <1>, 64);
            for (int r = 0; r < reps; r = r + 1) {
                v = with ([0] <= [i] < [64]) genarray([64], 1.0 * i);
            }
            return 0;
        }
        int main() { return work(%d); }
        """ % reps
        cr = compile_source(src, ["matrix"])
        assert cr.ok, cr.errors
        cr.bytecode()

        def best_of(fork_mode):
            best = float("inf")
            for _ in range(3):
                vm = VM(cr.lowered, cr.ctx, workdir=tmp_path, nthreads=2,
                        program=cr.bytecode(), fork_mode=fork_mode)
                t0 = time.perf_counter()
                assert vm.run_main() == 0
                best = min(best, time.perf_counter() - t0)
                assert vm.stats.parallel_regions == reps
                vm.close()
            return best

        enhanced = best_of("enhanced")
        naive = best_of("naive")
        per_region_us = (naive - enhanced) / reps * 1e6
        _merge_bench({
            "pool_vs_naive": {
                "regions": reps,
                "enhanced_seconds": round(enhanced, 4),
                "naive_seconds": round(naive, 4),
                "per_region_saving_us": round(per_region_us, 1),
            },
        })
        print(f"\nenhanced {enhanced*1e3:.1f}ms  naive {naive*1e3:.1f}ms  "
              f"saving {per_region_us:.0f}us/region")
        # Soft gate (timing on shared runners is noisy): the persistent
        # pool must never lose badly to spawn-per-construct.
        assert naive >= 0.9 * enhanced


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
class TestNativeFortJoinOverheads:
    """Measured per-region costs of pool vs naive thread spawning.

    Uses the generated runtime directly: a program with many tiny
    parallel regions.  On one core the pool's spin workers contend, so we
    measure with the *main-thread-only* inline path (p=1) against naive
    creation of one thread — isolating creation cost, which is the
    paper's point.
    """

    MICRO = r"""
int work(int reps) {
    Matrix float <1> v = init(Matrix float <1>, 64);
    for (int r = 0; r < reps; r = r + 1) {
        v = with ([0] <= [i] < [64]) genarray([64], 1.0);
    }
    return 0;
}
int main() { return work(200); }
"""

    def test_bench_many_small_regions_pool(self, benchmark):
        result = compile_source(self.MICRO, ["matrix"])
        prog = CompiledProgram(result.c_source)
        try:
            out = benchmark(lambda: prog.run(nthreads=1, collect_stats=True))
            assert out.stats.parallel_regions >= 200
        finally:
            prog.cleanup()

    def test_measured_thread_create_vs_model(self, costs):
        from repro.codegen.scaling import measure_thread_create_us

        measured = measure_thread_create_us()
        assert measured is not None
        # 200 naive constructs would cost measured*200 us of pure
        # management overhead; the pool pays (near) nothing inline.
        assert measured * 200 > 1000  # >1ms of avoided overhead


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
class TestThreadedRuns:
    """Honest native runs at several thread counts (1 vCPU: we assert
    correctness and bounded slowdown, not speedup)."""

    @pytest.fixture(scope="class")
    def prog(self):
        result = compile_source(load("fig1"), ["matrix"])
        p = CompiledProgram(result.c_source)
        yield p
        p.cleanup()

    @pytest.fixture(scope="class")
    def cube(self):
        return np.random.default_rng(0).normal(0, 1, (64, 64, 32)).astype(np.float32)

    @pytest.mark.parametrize("nthreads", [1, 2, 4])
    def test_bench_threads(self, benchmark, prog, cube, nthreads):
        def run():
            return prog.run({"ssh.data": cube}, output_names=["means.data"],
                            nthreads=nthreads, collect_stats=False)

        out = benchmark(run)
        assert np.allclose(out.outputs["means.data"], cube.mean(axis=2),
                           atol=1e-3)
