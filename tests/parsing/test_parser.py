"""Parser driver: tree building, precedence via stratification, errors,
keyword/identifier context interplay, and a parse/unparse property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar import GrammarSpec
from repro.lexing import ScanError
from repro.parsing import ParseError, Parser


@pytest.fixture(scope="module")
def expr_parser() -> Parser:
    g = GrammarSpec("expr", start="E")
    g.terminal("WS", r"[ \t\n]+", layout=True)
    g.terminal("Num", r"\d+")
    g.terminal("Plus", r"\+")
    g.terminal("Minus", "-")
    g.terminal("Times", r"\*")
    g.terminal("LP", r"\(")
    g.terminal("RP", r"\)")
    g.production("E ::= E Plus T", action=lambda c: ("+", c[0], c[2]))
    g.production("E ::= E Minus T", action=lambda c: ("-", c[0], c[2]))
    g.production("E ::= T", action=lambda c: c[0])
    g.production("T ::= T Times F", action=lambda c: ("*", c[0], c[2]))
    g.production("T ::= F", action=lambda c: c[0])
    g.production("F ::= Num", action=lambda c: int(c[0].lexeme))
    g.production("F ::= LP E RP", action=lambda c: c[1])
    return Parser(g.build())


def evaluate(tree):
    if isinstance(tree, int):
        return tree
    op, lhs, rhs = tree
    l, r = evaluate(lhs), evaluate(rhs)
    return {"+": l + r, "-": l - r, "*": l * r}[op]


class TestDriver:
    def test_precedence(self, expr_parser):
        assert evaluate(expr_parser.parse("2 + 3 * 4")) == 14
        assert evaluate(expr_parser.parse("(2 + 3) * 4")) == 20

    def test_left_associativity(self, expr_parser):
        assert expr_parser.parse("1 - 2 - 3") == ("-", ("-", 1, 2), 3)

    def test_single_token(self, expr_parser):
        assert expr_parser.parse("42") == 42

    def test_deep_nesting(self, expr_parser):
        depth = 200
        text = "(" * depth + "1" + ")" * depth
        assert expr_parser.parse(text) == 1

    def test_syntax_error_position(self, expr_parser):
        with pytest.raises((ParseError, ScanError)) as ei:
            expr_parser.parse("1 +\n+ 2")
        assert ei.value.location.line == 2

    def test_trailing_garbage_rejected(self, expr_parser):
        with pytest.raises((ParseError, ScanError)):
            expr_parser.parse("1 2")

    def test_empty_input_rejected(self, expr_parser):
        with pytest.raises((ParseError, ScanError)):
            expr_parser.parse("")


class TestContextAwareKeywords:
    """An extension keyword usable as a host identifier (§VI-A motivation)."""

    @pytest.fixture(scope="class")
    def parser(self) -> Parser:
        g = GrammarSpec("kw", start="Stmt")
        g.terminal("WS", r"[ \t\n]+", layout=True)
        g.terminal("Id", r"[a-z]+")
        # dominance is by terminal *name*; this grammar calls its identifier
        # terminal "Id", so the keyword must dominate that name explicitly.
        g.terminal("With", "with", marking=True, origin="matrix", dominates=("Id",))
        g.terminal("Eq", "=")
        g.terminal("Num", r"\d+")
        # Stmt is either an assignment (host) or a with-construct (extension).
        g.production("Stmt ::= Id Eq Num", action=lambda c: ("assign", c[0].lexeme))
        g.production("Stmt ::= Id Eq Id", action=lambda c: ("copy", c[0].lexeme, c[2].lexeme))
        g.production("Stmt ::= With Id", action=lambda c: ("with", c[1].lexeme))
        return Parser(g.build())

    def test_with_as_extension_keyword(self, parser):
        assert parser.parse("with x") == ("with", "x")

    def test_with_as_host_identifier_in_keyword_free_context(self, parser):
        # After `x =` the parser's valid set contains Id but not With, so
        # the context-aware scanner happily reads `with` as an identifier.
        assert parser.parse("x = with") == ("copy", "x", "with")

    def test_keyword_dominates_where_both_valid(self, parser):
        # At statement start both Id and With are valid; lexical precedence
        # picks the keyword, so `with = 3` is a syntax error (as in Copper).
        with pytest.raises((ParseError, ScanError)):
            parser.parse("with = 3")

    def test_identifier_that_prefixes_keyword(self, parser):
        assert parser.parse("wit = 3") == ("assign", "wit")


class TestEpsilonProductions:
    def test_optional_list(self):
        g = GrammarSpec("lst", start="L")
        g.terminal("WS", r"[ \t]+", layout=True)
        g.terminal("A", "a")
        g.production("L ::= L A", action=lambda c: c[0] + [c[1].lexeme])
        g.production("L ::=", action=lambda c: [])
        p = Parser(g.build())
        assert p.parse("a a a") == ["a", "a", "a"]
        assert p.parse("") == []


# --- property test: parse(print(tree)) == tree -------------------------------

exprs = st.deferred(
    lambda: st.one_of(
        st.integers(min_value=0, max_value=999),
        st.tuples(st.sampled_from(["+", "-", "*"]), exprs, exprs),
    )
)


def unparse(tree) -> str:
    if isinstance(tree, int):
        return str(tree)
    op, l, r = tree
    return f"({unparse(l)} {op} {unparse(r)})"


def _build_roundtrip_parser() -> Parser:
    g = GrammarSpec("expr", start="E")
    g.terminal("WS", r"[ \t\n]+", layout=True)
    g.terminal("Num", r"\d+")
    g.terminal("Plus", r"\+")
    g.terminal("Minus", "-")
    g.terminal("Times", r"\*")
    g.terminal("LP", r"\(")
    g.terminal("RP", r"\)")
    g.production("E ::= E Plus T", action=lambda c: ("+", c[0], c[2]))
    g.production("E ::= E Minus T", action=lambda c: ("-", c[0], c[2]))
    g.production("E ::= T", action=lambda c: c[0])
    g.production("T ::= T Times F", action=lambda c: ("*", c[0], c[2]))
    g.production("T ::= F", action=lambda c: c[0])
    g.production("F ::= Num", action=lambda c: int(c[0].lexeme))
    g.production("F ::= LP E RP", action=lambda c: c[1])
    return Parser(g.build())


_ROUNDTRIP_PARSER = _build_roundtrip_parser()


@settings(max_examples=100, deadline=None)
@given(exprs)
def test_parse_unparse_roundtrip(tree):
    assert _ROUNDTRIP_PARSER.parse(unparse(tree)) == tree
