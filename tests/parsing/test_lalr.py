"""LALR(1) table construction: automaton shape, lookaheads, conflicts."""

import pytest

from repro.grammar import GrammarSpec
from repro.parsing import (
    LALRConflictError,
    build_lr0,
    build_tables,
    find_conflicts,
)


def expr_spec() -> GrammarSpec:
    g = GrammarSpec("expr", start="E")
    g.terminal("WS", r"[ \t\n]+", layout=True)
    g.terminal("Num", r"\d+")
    g.terminal("Id", r"[a-z]+")
    g.terminal("Plus", r"\+")
    g.terminal("Times", r"\*")
    g.terminal("LP", r"\(")
    g.terminal("RP", r"\)")
    g.terminal("Eq", "=")
    g.production("E ::= E Plus T", action=lambda c: ("+", c[0], c[2]))
    g.production("E ::= T", action=lambda c: c[0])
    g.production("T ::= T Times F", action=lambda c: ("*", c[0], c[2]))
    g.production("T ::= F", action=lambda c: c[0])
    g.production("F ::= Num", action=lambda c: int(c[0].lexeme))
    g.production("F ::= LP E RP", action=lambda c: c[1])
    return g


class TestAutomaton:
    def test_states_reachable_and_deterministic(self):
        gr = expr_spec().build()
        auto = build_lr0(gr)
        assert auto.states[0] == frozenset({(0, 0)})
        # goto is a function: keys unique by construction
        assert len(auto.goto) == len(set(auto.goto))

    def test_tables_accept_valid_terminal_sets(self):
        gr = expr_spec().build()
        tables = build_tables(gr)
        # State 0 can start an expression: Num or LP only.
        assert tables.valid_terminals(0) == frozenset({"Num", "LP"})


class TestLR1Lookaheads:
    def test_slr_insufficient_grammar(self):
        # The classic grammar where SLR fails but LALR succeeds:
        #   S -> L = R | R ;  L -> * R | id ;  R -> L
        g = GrammarSpec("g", start="S")
        g.terminal("Star", r"\*")
        g.terminal("Id", "id")
        g.terminal("Assign", "=")
        g.production("S ::= L Assign R")
        g.production("S ::= R")
        g.production("L ::= Star R")
        g.production("L ::= Id")
        g.production("R ::= L")
        tables = build_tables(g.build())  # must not raise
        assert tables.num_states > 0


class TestConflicts:
    def test_ambiguous_grammar_rejected(self):
        g = GrammarSpec("amb", start="E")
        g.terminal("Num", r"\d+")
        g.terminal("Plus", r"\+")
        g.production("E ::= E Plus E")
        g.production("E ::= Num")
        with pytest.raises(LALRConflictError) as ei:
            build_tables(g.build())
        assert "shift/reduce" in str(ei.value)
        assert "state items" in str(ei.value)

    def test_reduce_reduce_reported(self):
        g = GrammarSpec("rr", start="S")
        g.terminal("A", "a")
        g.production("S ::= X")
        g.production("S ::= Y")
        g.production("X ::= A")
        g.production("Y ::= A")
        conflicts = find_conflicts(g.build())
        assert any(c.kind == "reduce/reduce" for c in conflicts)

    def test_dangling_else_prefer_shift(self):
        g = GrammarSpec("ifelse", start="S")
        g.terminal("If", "if")
        g.terminal("Else", "else")
        g.terminal("Semi", ";")
        g.production("S ::= If S")
        g.production("S ::= If S Else S")
        g.production("S ::= Semi")
        with pytest.raises(LALRConflictError):
            build_tables(g.build())
        tables = build_tables(g.build(), prefer_shift={"Else"})
        assert any(c.kind == "shift/reduce" for c in tables.resolved_conflicts)

    def test_find_conflicts_empty_for_lalr(self):
        assert find_conflicts(expr_spec().build()) == []
