"""Differential suite: compiled parser vs. the interpreted reference (S24).

The fused dense-table driver (integer ACTION/GOTO, terminal indices,
PASS-unit collapsing, inlined scanning) must produce exactly the trees,
values and diagnostics of the interpreted dict-walking loop.  This suite
compares both engines over the bundled corpus, randomized malformed
inputs, custom grammars exercising the unit-chain fast path, and tables
round-tripped through their serialized payload form.
"""

from __future__ import annotations

import random

import pytest

from repro.api import make_translator
from repro.grammar import GrammarSpec
from repro.grammar.cfg import PASS
from repro.lexing.scanner import ContextAwareScanner, ScanError
from repro.parsing import Parser
from repro.parsing.compiled import CompiledTables
from repro.parsing.parser import ParseError
from repro.programs import PROGRAMS, load


@pytest.fixture(scope="module")
def engine_pair():
    t = make_translator(["matrix", "transform"], fresh=True)
    pc = t.parser
    g = pc.grammar
    pi = Parser(
        g,
        tables=pc.tables,
        scanner=ContextAwareScanner(g.terminal_set, backend="interpreted"),
        backend="interpreted",
    )
    return pc, pi


def _outcome(parser, text, filename="<input>"):
    try:
        return ("ok", parser.parse(text, filename=filename))
    except (ParseError, ScanError) as e:
        return ("err", type(e).__name__, str(e))


class TestCorpusDifferential:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_identical_trees(self, engine_pair, name):
        pc, pi = engine_pair
        text = load(name)
        assert pc.parse(text, filename=name) == pi.parse(text, filename=name)

    def test_spans_identical(self, engine_pair):
        pc, pi = engine_pair
        text = load("fig1")
        tree_c = pc.parse(text)
        tree_i = pi.parse(text)

        spans_c = [(n.prod, n.span.start.offset, n.span.end.offset)
                   for n in tree_c.walk()]
        spans_i = [(n.prod, n.span.start.offset, n.span.end.offset)
                   for n in tree_i.walk()]
        assert spans_c == spans_i


class TestErrorIdentity:
    CASES = [
        "int main( { return 0; }",            # missing parameter close
        "int main() { return 0 }",            # missing semicolon
        "int main() { x = ; }",               # expression expected
        "int main() { return 0; } trailing",  # junk after program
        "with",                               # marking terminal, then EOF
        "int main() { int x @ 3; }",          # scan error inside parse
        "",                                   # empty input
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_same_diagnostic(self, engine_pair, text):
        pc, pi = engine_pair
        out_c = _outcome(pc, text)
        out_i = _outcome(pi, text)
        assert out_c == out_i

    def test_random_mutations_identical(self, engine_pair):
        """Corrupt valid programs (drop/duplicate slices) — both engines
        must agree on accept vs. the exact error."""
        pc, pi = engine_pair
        rng = random.Random(42)
        base = load("fig1")
        for trial in range(40):
            i = rng.randrange(len(base))
            j = min(len(base), i + rng.randint(1, 12))
            if rng.random() < 0.5:
                text = base[:i] + base[j:]          # deletion
            else:
                text = base[:i] + base[i:j] + base[i:]  # duplication
            assert _outcome(pc, text) == _outcome(pi, text), repr(text[:80])


class TestUnitChainFastPath:
    """The PASS-unit collapse must be observationally transparent."""

    @staticmethod
    def _spec(wrap_action):
        g = GrammarSpec("t", start="E")
        g.terminal("WS", r"[ \t]+", layout=True)
        g.terminal("N", r"\d+")
        g.terminal("Plus", r"\+")
        g.production("E ::= E Plus T",
                      action=lambda c: ("+", c[0], c[2]))
        g.production("E ::= T", action=PASS)
        g.production("T ::= F", action=wrap_action)
        g.production("F ::= N", action=lambda c: int(c[0].lexeme))
        return g.build()

    def test_pass_chain_identical(self):
        g = self._spec(PASS)
        pc = Parser(g)
        pi = Parser(g, scanner=ContextAwareScanner(
            g.terminal_set, backend="interpreted"), backend="interpreted")
        for text in ("1", "1 + 2", "1 + 2 + 30"):
            assert pc.parse(text) == pi.parse(text)

    def test_non_pass_unit_action_still_runs(self):
        """A unit production with a *non-PASS* action must not be
        collapsed — its action is observable."""
        wrap = lambda c: ("wrap", c[0])
        g = self._spec(wrap)
        pc = Parser(g)
        pi = Parser(g, scanner=ContextAwareScanner(
            g.terminal_set, backend="interpreted"), backend="interpreted")
        tree = pc.parse("1 + 2")
        assert tree == pi.parse("1 + 2")
        assert tree == ("+", ("wrap", 1), ("wrap", 2))

    def test_pass_identity_returns_same_object(self):
        """PASS passes the child through unchanged (same object), which
        is exactly what makes the bare-GOTO collapse safe."""
        sentinel = object()
        assert PASS([sentinel]) is sentinel


class TestPayloadRoundtrip:
    def test_tables_from_payload_parse_identically(self, engine_pair):
        pc, _pi = engine_pair
        ct = pc.compiled
        restored = CompiledTables.from_payload(ct.to_payload(), ct.universe)
        p2 = Parser(
            pc.grammar,
            tables=pc.tables,
            scanner=ContextAwareScanner(pc.grammar.terminal_set),
            compiled=restored,
        )
        for name in sorted(PROGRAMS):
            text = load(name)
            assert p2.parse(text, filename=name) == pc.parse(
                text, filename=name
            )

    def test_payload_universe_mismatch_rejected(self, engine_pair):
        pc, _pi = engine_pair
        ct = pc.compiled
        data = ct.to_payload()
        data["names"] = list(data["names"])[::-1]
        with pytest.raises(ValueError):
            CompiledTables.from_payload(data, ct.universe)

    def test_payload_shape_mismatch_rejected(self, engine_pair):
        pc, _pi = engine_pair
        ct = pc.compiled
        data = ct.to_payload()
        data["valid_masks"] = data["valid_masks"][:-1]
        with pytest.raises(ValueError):
            CompiledTables.from_payload(data, ct.universe)


class TestBackendSelection:
    def test_interpreted_backend_has_no_compiled_tables(self, engine_pair):
        _pc, pi = engine_pair
        assert pi.compiled is None
        assert pi.scanner.compiled is None

    def test_compiled_is_the_default(self, engine_pair):
        pc, _pi = engine_pair
        assert pc.compiled is not None
        assert pc.scanner.compiled is not None
