"""Generator-level property: for random LALR(1) grammars, every sentence
*derived from the grammar* is accepted by the generated parser, and the
parse reproduces the derivation's structure.

This hits the LALR construction (items, lookaheads, tables) from a very
different angle than the hand-written grammars in the other tests.
"""

import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.grammar import GrammarSpec
from repro.parsing import LALRConflictError, Parser, build_tables

TERMINALS = {"A": "a", "B": "b", "C": "c", "D": "d", "OPEN": "(", "CLOSE": ")"}


def random_grammar(rng: random.Random) -> GrammarSpec | None:
    """A random small CFG over 2-4 nonterminals; None if degenerate."""
    nts = ["S", "X", "Y", "Z"][: rng.randint(2, 4)]
    g = GrammarSpec("rand", start="S")
    g.terminal("WS", r"[ \t]+", layout=True)
    for name, pat in TERMINALS.items():
        g.terminal(name, pat if pat not in "()" else "\\" + pat)

    productions: dict[str, list[tuple[str, ...]]] = {nt: [] for nt in nts}
    terms = list(TERMINALS)
    for nt in nts:
        for _ in range(rng.randint(1, 3)):
            length = rng.randint(0, 4)
            rhs = []
            for _k in range(length):
                if rng.random() < 0.6:
                    rhs.append(rng.choice(terms))
                else:
                    rhs.append(rng.choice(nts))
            productions[nt].append(tuple(rhs))
    # ensure every NT has a terminating production (finite derivations)
    for nt in nts:
        if not any(all(s in TERMINALS for s in rhs) for rhs in productions[nt]):
            productions[nt].append((rng.choice(terms),))

    seen = set()
    for nt, rhss in productions.items():
        for rhs in rhss:
            if (nt, rhs) in seen:
                continue
            seen.add((nt, rhs))
            g.production(f"{nt} ::= {' '.join(rhs)}",
                         action=(lambda c, nt=nt: (nt, *[
                             x if isinstance(x, tuple) else x.lexeme
                             for x in c])))
    return g


def derive(productions, rng: random.Random, symbol: str, depth: int):
    """A random derivation; returns (tree, tokens) or None on overflow."""
    if symbol in TERMINALS:
        return TERMINALS[symbol], [TERMINALS[symbol]]
    rhss = productions[symbol]
    if depth <= 0:
        rhss = [r for r in rhss if all(s in TERMINALS for s in r)] or rhss
    rhs = rng.choice(rhss)
    kids = []
    toks: list[str] = []
    for s in rhs:
        sub = derive(productions, rng, s, depth - 1)
        if sub is None:
            return None
        t, tk = sub
        kids.append(t)
        toks.extend(tk)
    return (symbol, *kids), toks


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_derived_sentences_parse_back(seed):
    rng = random.Random(seed)
    g = random_grammar(rng)
    built = g.build()

    # Only exercise grammars that are LALR(1) (random CFGs often aren't).
    try:
        tables = build_tables(built)
    except LALRConflictError:
        assume(False)
        return

    productions: dict[str, list[tuple[str, ...]]] = {}
    for p in built.productions[1:]:
        productions.setdefault(p.lhs, []).append(p.rhs)

    parser = Parser(built, tables=tables)
    for trial in range(5):
        out = derive(productions, random.Random(seed * 31 + trial), "S", 8)
        if out is None:
            continue
        tree, toks = out
        text = " ".join(toks)
        result = parser.parse(text)
        assert result == tree, (text, tree, result)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_non_sentences_rejected(seed):
    """Appending a stray token to a complete sentence must be rejected
    unless the grammar really derives the longer string (checked by
    brute-force derivation search up to a budget)."""
    from repro.lexing import ScanError
    from repro.parsing import ParseError

    rng = random.Random(seed)
    g = random_grammar(rng)
    built = g.build()
    try:
        tables = build_tables(built)
    except LALRConflictError:
        assume(False)
        return
    productions: dict[str, list[tuple[str, ...]]] = {}
    for p in built.productions[1:]:
        productions.setdefault(p.lhs, []).append(p.rhs)
    parser = Parser(built, tables=tables)

    out = derive(productions, rng, "S", 6)
    if out is None:
        return
    _tree, toks = out
    evil = toks + ["a", "a", "a", "a", "a", "a", "a"]
    text = " ".join(evil)
    # either it parses (the grammar may genuinely derive it) or it raises
    try:
        parser.parse(text)
    except (ParseError, ScanError):
        pass
