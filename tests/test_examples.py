"""Smoke tests: every shipped example script runs to completion.

Kept cheap: examples are invoked with small problem sizes where they
accept one, and time-boxed.  These exist so the examples cannot rot
silently as the library evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cexec import gcc_available

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "OK: translated parallel C reproduces the temporal mean." in out


def test_ocean_eddy():
    out = run_example("ocean_eddy.py", "--shape", "12", "16", "32",
                      "--eddies", "2", "--render")
    assert "translated program == numpy reference: True" in out
    assert "eddy detection" in out
    assert "Fig 6 analogue" in out  # the rendered SSH map


def test_conncomp_map():
    out = run_example("conncomp_map.py")
    assert "ALL FRAMES MATCH" in out


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
def test_transform_tuning():
    out = run_example("transform_tuning.py", "--size", "16", "16", "16",
                      timeout=300)
    assert out.count("correct=True") == 5
    assert "#pragma omp parallel for" in out


def test_composability():
    out = run_example("composability.py")
    assert out.count("PASS") >= 8
    assert "isComposable(cminus, tuples-standalone): FAIL" in out
    assert 'All extensions described above pass this analysis.' in out


def test_cilk_tasks():
    out = run_example("cilk_tasks.py")
    assert "isComposable(cminus, cilk): PASS" in out
    assert "610" in out  # interpreter fib(15)
