"""Node tree utilities (the substrate higher-order transforms rely on)."""

from repro.ag.tree import Node
from repro.cminus.grammar import mk


def sample() -> Node:
    return mk.binop("+", mk.binop("*", mk.var("a"), mk.intLit(2)),
                    mk.var("b"))


class TestWalk:
    def test_preorder(self):
        t = sample()
        prods = [n.prod for n in t.walk()]
        assert prods == ["binop", "binop", "var", "intLit", "var"]

    def test_count_and_find(self):
        t = sample()
        assert t.count("var") == 2
        assert len(t.find_all("binop")) == 2


class TestReplace:
    def test_replace_by_identity(self):
        t = sample()
        target = t.children[2]  # var b
        new = mk.intLit(9)
        out = t.replace(target, new)
        assert out.children[2] is new
        # untouched subtree shared, not copied
        assert out.children[1] is t.children[1]
        # original unchanged
        assert t.children[2] is target

    def test_replace_no_match_returns_self(self):
        t = sample()
        assert t.replace(mk.var("zzz"), mk.intLit(0)) is t

    def test_replace_deep(self):
        t = sample()
        inner_a = t.children[1].children[1]
        out = t.replace(inner_a, mk.var("c"))
        assert out.children[1].children[1].children[0] == "c"
        # the spine is rebuilt, the sibling leaf shared
        assert out.children[1] is not t.children[1]
        assert out.children[2] is t.children[2]


class TestEquality:
    def test_structural_equality(self):
        assert sample() == sample()

    def test_inequality(self):
        a = sample()
        b = mk.binop("-", mk.var("a"), mk.var("b"))
        assert a != b


class TestSpans:
    def test_inferred_from_token_children(self):
        from repro.lexing.scanner import Token
        from repro.util.diagnostics import SourceLocation, SourceSpan

        t1 = Token("IntLit", "1", SourceSpan(
            SourceLocation(1, 0, 0), SourceLocation(1, 1, 1)))
        t2 = Token("IntLit", "22", SourceSpan(
            SourceLocation(1, 4, 4), SourceLocation(1, 6, 6)))
        n = Node("pair", [t1, t2])
        assert n.span.start.offset == 0
        assert n.span.end.offset == 6

    def test_parser_attaches_spans(self, host_translator):
        root = host_translator.parse("int main() {\n  return 1 + 2;\n}")
        adds = root.find_all("binop")
        assert adds and adds[0].span.start.line == 2
