"""Modular well-definedness analysis (§VI-B)."""

from repro.ag import AGSpec, check_well_definedness


def host_spec() -> AGSpec:
    ag = AGSpec("host")
    ag.nonterminal("Expr")
    ag.abstract_production("num", "Expr", ["#value"])
    ag.abstract_production("add", "Expr", ["Expr", "Expr"])
    ag.synthesized("ctrans", on="Expr")
    ag.synthesized("errors", on="Expr")
    ag.inherited("env", on="Expr", autocopy=True)
    ag.default("errors", lambda n: [])
    ag.equation("num", "ctrans", lambda n: str(n.node.children[0]))
    ag.equation("add", "ctrans", lambda n: f"{n[0].ctrans}+{n[1].ctrans}")
    return ag


def test_complete_host_passes():
    report = check_well_definedness(host_spec())
    assert report.passed, str(report)


def test_missing_equation_fails():
    ag = host_spec()
    ag.abstract_production("sub", "Expr", ["Expr", "Expr"])  # no ctrans eq
    report = check_well_definedness(ag)
    assert not report.passed
    assert any("sub" in v and "ctrans" in v for v in report.violations)


def test_forwarding_production_passes_without_equations():
    ag = host_spec()
    ag.abstract_production("double", "Expr", ["Expr"], origin="ext")
    ag.forward("double", lambda n: ag.make("add", [n.node.children[0], n.node.children[0]]))
    report = check_well_definedness(ag)
    assert report.passed, str(report)


def test_default_satisfies_completeness():
    # `errors` has a default, so no production needs an explicit equation.
    report = check_well_definedness(host_spec())
    assert not any("errors" in v for v in report.violations)


def test_non_autocopy_inherited_needs_equations():
    ag = AGSpec("g")
    ag.nonterminal("E")
    ag.abstract_production("wrap", "E", ["E"])
    ag.abstract_production("leaf", "E", [])
    ag.inherited("depth", on="E", autocopy=False)
    report = check_well_definedness(ag)
    assert not report.passed
    assert any("depth" in v for v in report.violations)


def test_autocopy_requires_occurrence_on_lhs():
    ag = AGSpec("g")
    ag.nonterminal("S")
    ag.nonterminal("E")
    ag.abstract_production("root", "S", ["E"])
    ag.abstract_production("leaf", "E", [])
    # env occurs on E but NOT on S: autocopy from root is not well-founded.
    ag.inherited("env", on="E", autocopy=True)
    report = check_well_definedness(ag)
    assert not report.passed
    assert any("env" in v for v in report.violations)


def test_extension_equation_on_foreign_prod_and_attr_flagged():
    host = host_spec()
    ext = AGSpec("ext")
    # ext defines an equation for the HOST attribute ctrans on the HOST
    # production num — interference two extensions could collide on.
    ext.abstract_production("neg", "Expr", ["Expr"], origin="ext")
    ext.equation("neg", "ctrans", lambda n: f"-{n[0].ctrans}", origin="ext")
    ext.equation_origin[("num", "ctrans2")] = "ext"  # simulate foreign override

    composed = host.compose(ext)
    # The simulated foreign equation targets an undeclared production/attr
    # combination; MWDA reports it rather than crashing.
    report = check_well_definedness(composed)
    assert not report.passed


def test_extension_view_blames_only_extension():
    host = host_spec()
    host.abstract_production("sub", "Expr", ["Expr", "Expr"])  # host bug
    ext = AGSpec("ext")
    ext.abstract_production("neg", "Expr", ["Expr"], origin="ext")
    ext.equation("neg", "ctrans", lambda n: f"-{n[0].att('ctrans')}", origin="ext")
    composed = host.compose(ext)
    # Full check sees the host bug...
    assert not check_well_definedness(composed).passed
    # ...but the extension-scoped view passes: ext's own obligations are met.
    report = check_well_definedness(composed, module="ext")
    assert report.passed, str(report)
