"""Attribute evaluation: synthesized, inherited, autocopy, forwarding,
higher-order attributes, cycles, and memoization."""

import pytest

from repro.ag import (
    AGError,
    AGSpec,
    CyclicAttributeError,
    MissingEquationError,
    Node,
    decorate,
)


@pytest.fixture()
def arith() -> AGSpec:
    """A tiny arithmetic language: value synthesis + env inheritance."""
    ag = AGSpec("arith")
    ag.nonterminal("Expr")
    ag.abstract_production("num", "Expr", ["#value"])
    ag.abstract_production("var", "Expr", ["#value"])
    ag.abstract_production("add", "Expr", ["Expr", "Expr"])
    ag.abstract_production("let", "Expr", ["#value", "Expr", "Expr"])
    ag.synthesized("value", on="Expr")
    ag.inherited("env", on="Expr", autocopy=True)
    ag.equation("num", "value", lambda n: n.node.children[0])
    ag.equation("var", "value", lambda n: n.inh("env")[n.node.children[0]])
    ag.equation("add", "value", lambda n: n[0].value + n[1].value)
    ag.equation("let", "value", lambda n: n[2].value)
    ag.inh_equation(
        "let", 2, "env",
        lambda p: {**p.inh("env"), p.node.children[0]: p[1].value},
    )
    return ag


def test_synthesized_evaluation(arith):
    t = arith.make("add", [arith.make("num", [2]), arith.make("num", [3])])
    assert decorate(arith, t).value == 5


def test_inherited_env_via_root(arith):
    t = arith.make("var", ["x"])
    assert decorate(arith, t, {"env": {"x": 7}}).value == 7


def test_autocopy_through_add(arith):
    t = arith.make("add", [arith.make("var", ["x"]), arith.make("num", [1])])
    assert decorate(arith, t, {"env": {"x": 10}}).value == 11


def test_let_overrides_env(arith):
    # let x = 4 in x + x  (outer env also has x, shadowed)
    t = arith.make(
        "let",
        ["x", arith.make("num", [4]),
         arith.make("add", [arith.make("var", ["x"]), arith.make("var", ["x"])])],
    )
    assert decorate(arith, t, {"env": {"x": 99}}).value == 8


def test_let_binding_expr_sees_outer_env(arith):
    # let x = y in x   with y bound outside
    t = arith.make(
        "let", ["x", arith.make("var", ["y"]), arith.make("var", ["x"])]
    )
    assert decorate(arith, t, {"env": {"y": 3}}).value == 3


def test_missing_root_inherited_raises(arith):
    t = arith.make("var", ["x"])
    with pytest.raises(MissingEquationError, match="not supplied at tree root"):
        decorate(arith, t).value


def test_missing_syn_equation_raises():
    ag = AGSpec("g")
    ag.nonterminal("E")
    ag.abstract_production("leaf", "E", [])
    ag.synthesized("v", on="E")
    with pytest.raises(MissingEquationError, match="does not forward"):
        decorate(ag, ag.make("leaf")).att("v")


def test_default_used_when_no_equation():
    ag = AGSpec("g")
    ag.nonterminal("E")
    ag.abstract_production("leaf", "E", [])
    ag.synthesized("errors", on="E")
    ag.default("errors", lambda n: [])
    assert decorate(ag, ag.make("leaf")).att("errors") == []


def test_arity_check():
    ag = AGSpec("g")
    ag.nonterminal("E")
    ag.abstract_production("pair", "E", ["E", "E"])
    with pytest.raises(AGError, match="expects 2"):
        ag.make("pair", [])


def test_unknown_production():
    ag = AGSpec("g")
    with pytest.raises(AGError, match="unknown"):
        ag.make("nope")


def test_cycle_detection():
    ag = AGSpec("g")
    ag.nonterminal("E")
    ag.abstract_production("loop", "E", [])
    ag.synthesized("v", on="E")
    ag.equation("loop", "v", lambda n: n.att("v"))
    with pytest.raises(CyclicAttributeError):
        decorate(ag, ag.make("loop")).att("v")


def test_memoization_evaluates_once():
    calls = []
    ag = AGSpec("g")
    ag.nonterminal("E")
    ag.abstract_production("leaf", "E", [])
    ag.synthesized("v", on="E")
    ag.equation("leaf", "v", lambda n: calls.append(1) or 42)
    dn = decorate(ag, ag.make("leaf"))
    assert dn.att("v") == 42 and dn.att("v") == 42
    assert len(calls) == 1


class TestForwarding:
    """Forwarding: the translation mechanism for extension constructs."""

    @pytest.fixture()
    def spec(self) -> AGSpec:
        ag = AGSpec("host")
        ag.nonterminal("Expr")
        ag.abstract_production("num", "Expr", ["#value"])
        ag.abstract_production("add", "Expr", ["Expr", "Expr"])
        ag.synthesized("value", on="Expr")
        ag.synthesized("ctrans", on="Expr")
        ag.inherited("env", on="Expr", autocopy=True)
        ag.equation("num", "value", lambda n: n.node.children[0])
        ag.equation("add", "value", lambda n: n[0].value + n[1].value)
        ag.equation("num", "ctrans", lambda n: str(n.node.children[0]))
        ag.equation("add", "ctrans", lambda n: f"({n[0].ctrans} + {n[1].ctrans})")
        # Extension: `double e` forwards to `e + e`.
        ag.abstract_production("double", "Expr", ["Expr"], origin="ext")
        ag.forward(
            "double",
            lambda n: ag.make("add", [n.node.children[0], n.node.children[0]]),
        )
        return ag

    def test_forward_provides_all_host_attributes(self, spec):
        t = spec.make("double", [spec.make("num", [21])])
        dn = decorate(spec, t)
        assert dn.value == 42
        assert dn.ctrans == "(21 + 21)"

    def test_explicit_equation_overrides_forward(self, spec):
        spec.equation("double", "ctrans", lambda n: f"2*{n[0].ctrans}")
        t = spec.make("double", [spec.make("num", [21])])
        assert decorate(spec, t).ctrans == "2*21"
        assert decorate(spec, t).value == 42  # still via forward

    def test_forward_chains(self, spec):
        # quadruple forwards to double which forwards to add: attributes
        # flow through a chain of forwards (extension-on-extension).
        spec.abstract_production("quadruple", "Expr", ["Expr"], origin="ext2")
        spec.forward(
            "quadruple",
            lambda n: spec.make("double",
                                [spec.make("double", [n.node.children[0]])]),
        )
        t = spec.make("quadruple", [spec.make("num", [5])])
        from repro.ag import decorate

        dn = decorate(spec, t)
        assert dn.value == 20
        assert dn.ctrans == "((5 + 5) + (5 + 5))"

    def test_forward_receives_forwarder_inherited(self, spec):
        # A forward whose tree mentions variables must see the same env.
        spec.abstract_production("var", "Expr", ["#value"])
        spec.equation("var", "value", lambda n: n.inh("env")[n.node.children[0]])
        spec.equation("var", "ctrans", lambda n: n.node.children[0])
        spec.abstract_production("incr", "Expr", ["#value"], origin="ext")
        spec.forward(
            "incr",
            lambda n: spec.make(
                "add", [spec.make("var", [n.node.children[0]]), spec.make("num", [1])]
            ),
        )
        t = spec.make("incr", ["x"])
        assert decorate(spec, t, {"env": {"x": 9}}).value == 10


class TestHigherOrder:
    def test_decorate_local_tree(self):
        """A higher-order attribute: an equation builds and decorates a tree."""
        ag = AGSpec("g")
        ag.nonterminal("E")
        ag.abstract_production("num", "E", ["#value"])
        ag.abstract_production("add", "E", ["E", "E"])
        ag.abstract_production("square", "E", ["E"])
        ag.synthesized("value", on="E")
        ag.equation("num", "value", lambda n: n.node.children[0])
        ag.equation("add", "value", lambda n: n[0].value + n[1].value)

        def square_value(n):
            # Build `e + e ... ` no — build add(e, e) then sum with itself:
            doubled = ag.make("add", [n.node.children[0], n.node.children[0]])
            v = n.decorate(doubled).value
            return v * v // 4

        ag.equation("square", "value", square_value)
        t = ag.make("square", [ag.make("num", [6])])
        assert decorate(ag, t).value == 36

    def test_decorated_local_tree_gets_inherited(self):
        ag = AGSpec("g")
        ag.nonterminal("E")
        ag.abstract_production("var", "E", ["#value"])
        ag.abstract_production("twice_x", "E", [])
        ag.synthesized("value", on="E")
        ag.inherited("env", on="E", autocopy=True)
        ag.equation("var", "value", lambda n: n.inh("env")[n.node.children[0]])
        ag.equation(
            "twice_x",
            "value",
            lambda n: n.decorate(ag.make("var", ["x"])).value * 2,
        )
        t = ag.make("twice_x")
        assert decorate(ag, t, {"env": {"x": 5}}).value == 10


class TestComposition:
    def test_compose_merges_and_rejects_duplicates(self):
        host = AGSpec("host")
        host.nonterminal("E")
        host.abstract_production("num", "E", ["#value"])
        host.synthesized("v", on="E")
        host.equation("num", "v", lambda n: n.node.children[0])

        ext = AGSpec("ext")
        ext.abstract_production("neg", "E", ["E"], origin="ext")
        ext.equation("neg", "v", lambda n: -n[0].att("v"))

        composed = host.compose(ext)
        t = composed.make("neg", [composed.make("num", [3])])
        assert decorate(composed, t).att("v") == -3

        bad = AGSpec("bad")
        bad.abstract_production("num", "E", ["#value"])
        with pytest.raises(AGError, match="two modules"):
            host.compose(bad)
