"""Context-aware scanner behaviour (paper §VI-A / Copper [9])."""

import pytest

from repro.lexing import (
    EOF,
    ContextAwareScanner,
    LexicalAmbiguityError,
    ScanError,
    TerminalSet,
)
from repro.util.diagnostics import SourceLocation


@pytest.fixture()
def terminals() -> TerminalSet:
    ts = TerminalSet()
    ts.declare("WS", r"[ \t\r\n]+", layout=True)
    ts.declare("LineComment", r"//[^\n]*", layout=True)
    ts.declare("Identifier", r"[a-zA-Z_]\w*")
    ts.declare("With", "with", keyword=True, marking=True, origin="matrix")
    ts.declare("Genarray", "genarray", keyword=True, origin="matrix")
    ts.declare("IntLit", r"\d+")
    ts.declare("FloatLit", r"\d+\.\d+")
    ts.declare("Plus", r"\+")
    ts.declare("Le", r"<=")
    ts.declare("Lt", r"<")
    return ts


@pytest.fixture()
def scanner(terminals) -> ContextAwareScanner:
    return ContextAwareScanner(terminals)


def scan1(scanner, text, valid):
    return scanner.scan(text, SourceLocation(), frozenset(valid))


class TestMaximalMunch:
    def test_longest_match_wins(self, scanner):
        tok = scan1(scanner, "<=", {"Lt", "Le"})
        assert tok.terminal == "Le"

    def test_shorter_token_when_longer_invalid(self, scanner):
        # Context-aware: if only Lt is valid, "<=" scans as "<".
        tok = scan1(scanner, "<=", {"Lt"})
        assert tok.terminal == "Lt" and tok.lexeme == "<"

    def test_float_vs_int(self, scanner):
        assert scan1(scanner, "3.5", {"IntLit", "FloatLit"}).terminal == "FloatLit"
        assert scan1(scanner, "35", {"IntLit", "FloatLit"}).terminal == "IntLit"


class TestContextAwareness:
    def test_keyword_in_keyword_context(self, scanner):
        assert scan1(scanner, "with", {"With", "Identifier"}).terminal == "With"

    def test_keyword_as_identifier_when_keyword_invalid(self, scanner):
        # THE point of context-aware scanning: `with` is a host identifier
        # wherever the matrix extension's With cannot appear.
        assert scan1(scanner, "with", {"Identifier"}).terminal == "Identifier"

    def test_identifier_prefix_of_keyword(self, scanner):
        tok = scan1(scanner, "withal", {"With", "Identifier"})
        assert tok.terminal == "Identifier" and tok.lexeme == "withal"

    def test_dominance_requires_declaration(self, terminals):
        # Two overlapping non-dominating terminals in the same context are
        # a lexical ambiguity the extension author must annotate away.
        terminals.declare("With2", "with", origin="other")
        sc = ContextAwareScanner(terminals)
        with pytest.raises(LexicalAmbiguityError):
            sc.scan("with", SourceLocation(), frozenset({"With", "With2"}))


class TestLayout:
    def test_layout_skipped(self, scanner):
        tok = scan1(scanner, "   // c\n  foo", {"Identifier"})
        assert tok.terminal == "Identifier"
        assert tok.span.start.line == 2

    def test_eof_after_trailing_layout(self, scanner):
        tok = scan1(scanner, "  // comment", {EOF})
        assert tok.terminal == EOF


class TestErrors:
    def test_no_valid_token(self, scanner):
        with pytest.raises(ScanError) as ei:
            scan1(scanner, "?", {"Identifier"})
        assert "expected one of" in str(ei.value)

    def test_unexpected_eof(self, scanner):
        with pytest.raises(ScanError):
            scan1(scanner, "", {"Identifier"})

    def test_error_location(self, scanner):
        # First token scans fine; the bad char on line 2 is reported there.
        tok = scan1(scanner, "ab\n?", {"Identifier"})
        assert tok.lexeme == "ab"
        with pytest.raises(ScanError) as ei:
            scanner.scan("ab\n?", tok.span.end, frozenset({"Identifier"}))
        assert ei.value.location.line == 2


class TestDominanceDeadEnd:
    """Mutual dominance eliminating every candidate used to fall through
    to an unhelpful internal error; it must name the cycle instead."""

    @pytest.fixture()
    def cyclic(self) -> TerminalSet:
        ts = TerminalSet()
        ts.declare("WS", r"[ \t]+", layout=True)
        ts.declare("Up", "[ab]+", dominates=("Down",))
        ts.declare("Down", "[ba]+", dominates=("Up",))
        return ts

    @pytest.mark.parametrize("backend", ["compiled", "interpreted"])
    def test_cycle_named_in_diagnostic(self, cyclic, backend):
        sc = ContextAwareScanner(cyclic, backend=backend)
        with pytest.raises(ScanError) as ei:
            sc.scan("abba", SourceLocation(), frozenset({"Up", "Down", EOF}))
        msg = str(ei.value)
        assert "mutual dominance" in msg
        assert "Down dominates Up" in msg and "Up dominates Down" in msg
        assert "break the dominance cycle" in msg

    def test_both_engines_raise_identically(self, cyclic):
        comp = ContextAwareScanner(cyclic, backend="compiled")
        interp = ContextAwareScanner(cyclic, backend="interpreted")
        errs = []
        for sc in (comp, interp):
            with pytest.raises(ScanError) as ei:
                sc.scan("ab", SourceLocation(), frozenset({"Up", "Down"}))
            errs.append(str(ei.value))
        assert errs[0] == errs[1]


class TestTokenizeAll:
    def test_stream(self, scanner):
        toks = scanner.tokenize_all("with x <= 4 + 3.5 // done")
        assert [t.terminal for t in toks] == [
            "With", "Identifier", "Le", "IntLit", "Plus", "FloatLit", EOF,
        ]

    def test_positions_advance(self, scanner):
        toks = scanner.tokenize_all("a b\n c")
        cols = [(t.span.start.line, t.span.start.column) for t in toks[:-1]]
        assert cols == [(1, 0), (1, 2), (2, 1)]


class TestTerminalSetComposition:
    def test_merge_disjoint(self, terminals):
        other = TerminalSet()
        other.declare("Fold", "fold", keyword=True, origin="matrix")
        merged = terminals.merge(other)
        assert "Fold" in merged and "With" in merged

    def test_merge_conflicting_raises(self, terminals):
        other = TerminalSet()
        other.declare("With", "WITH", keyword=True, origin="other")
        with pytest.raises(ValueError):
            terminals.merge(other)

    def test_merge_identical_shared_ok(self, terminals):
        merged = terminals.merge(terminals)
        assert len(list(merged)) == len(list(terminals))

    def test_duplicate_declare_raises(self, terminals):
        with pytest.raises(ValueError):
            terminals.declare("With", "with", keyword=True)
