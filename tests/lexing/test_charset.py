"""Unit and property tests for interval-based character sets."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.lexing.charset import MAX_CODEPOINT, CharSet, partition_atoms

# Small codepoint universe keeps brute-force oracles cheap.
cp = st.integers(min_value=0, max_value=200)
intervals = st.lists(st.tuples(cp, cp), max_size=6)


def mk(pairs):
    return CharSet.from_intervals((min(a, b), max(a, b)) for a, b in pairs)


def members(cs: CharSet, limit: int = 300) -> set[int]:
    return {p for p in range(limit) if cs.contains_cp(p)}


class TestConstruction:
    def test_single(self):
        cs = CharSet.single("a")
        assert "a" in cs and "b" not in cs
        assert cs.size() == 1

    def test_range(self):
        cs = CharSet.range("a", "f")
        assert all(c in cs for c in "abcdef")
        assert "g" not in cs
        assert cs.size() == 6

    def test_range_reversed_raises(self):
        import pytest

        with pytest.raises(ValueError):
            CharSet.range("z", "a")

    def test_of_merges_adjacent(self):
        cs = CharSet.of("abcxyz")
        assert cs.intervals == ((ord("a"), ord("c")), (ord("x"), ord("z")))

    def test_from_intervals_merges_overlap_and_adjacency(self):
        cs = CharSet.from_intervals([(10, 20), (15, 30), (32, 40), (31, 31)])
        assert cs.intervals == ((10, 40),)

    def test_from_intervals_keeps_gaps(self):
        cs = CharSet.from_intervals([(10, 20), (22, 40)])
        assert cs.intervals == ((10, 20), (22, 40))

    def test_empty_is_falsy(self):
        assert not CharSet.empty()
        assert CharSet.single("x")

    def test_any_char(self):
        cs = CharSet.any_char()
        assert "a" in cs and "\n" in cs and chr(MAX_CODEPOINT) in cs


class TestAlgebra:
    def test_union(self):
        a = CharSet.range("a", "c")
        b = CharSet.range("c", "e")
        assert members(a.union(b)) == {ord(c) for c in "abcde"}

    def test_intersect(self):
        a = CharSet.range("a", "m")
        b = CharSet.range("g", "z")
        assert members(a.intersect(b)) == {ord(c) for c in "ghijklm"}

    def test_subtract(self):
        a = CharSet.range("a", "e")
        b = CharSet.of("bc")
        assert members(a.subtract(b)) == {ord(c) for c in "ade"}

    def test_complement_roundtrip(self):
        a = CharSet.of(string.ascii_lowercase)
        assert a.complement().complement() == a

    def test_complement_membership(self):
        a = CharSet.single("a")
        c = a.complement()
        assert "a" not in c and "b" in c and "\n" in c


@given(intervals, intervals)
def test_union_is_set_union(p1, p2):
    a, b = mk(p1), mk(p2)
    assert members(a.union(b)) == members(a) | members(b)


@given(intervals, intervals)
def test_intersect_is_set_intersection(p1, p2):
    a, b = mk(p1), mk(p2)
    assert members(a.intersect(b)) == members(a) & members(b)


@given(intervals, intervals)
def test_subtract_is_set_difference(p1, p2):
    a, b = mk(p1), mk(p2)
    assert members(a.subtract(b)) == members(a) - members(b)


@given(intervals)
def test_normalization_is_canonical(p):
    a = mk(p)
    # Re-normalizing the normalized intervals is the identity.
    assert CharSet.from_intervals(a.intervals) == a
    # Intervals are sorted, disjoint, and non-adjacent.
    for (l1, h1), (l2, h2) in zip(a.intervals, a.intervals[1:]):
        assert h1 + 1 < l2


@given(st.lists(intervals, max_size=4))
def test_partition_atoms_cover_and_disjoint(sets):
    css = [mk(p) for p in sets]
    atoms = partition_atoms(css)
    # Atoms are pairwise disjoint.
    for i, a in enumerate(atoms):
        for b in atoms[i + 1:]:
            assert not a.intersect(b)
    # Every input set equals the union of the atoms it intersects.
    for cs in css:
        covered = set()
        for a in atoms:
            if cs.intersect(a):
                inter = cs.intersect(a)
                assert inter == a, "atom must be wholly inside or outside each set"
                covered |= members(a)
        assert covered == members(cs)
