"""Differential suite: compiled scanner vs. the interpreted reference (S24).

The compiled engine (dense equivalence-class map, array transitions,
accept bitmasks, memoized dominance resolution) must be *behaviorally
identical* to the interpreted charset-walking engine: same tokens with
the same spans, and the same error type / message / location on every
failure.  This suite drives both engines over the bundled program
corpus, randomized token streams, restricted valid-lookahead contexts,
non-ASCII inputs exercising the overflow interval map, and malformed
inputs — asserting equality throughout.
"""

from __future__ import annotations

import random

import pytest

from repro.api import make_translator
from repro.lexing import (
    EOF,
    ContextAwareScanner,
    LexicalAmbiguityError,
    ScanError,
    TerminalSet,
)
from repro.programs import PROGRAMS, load
from repro.util.diagnostics import SourceLocation


def scanner_pair(terminal_set) -> tuple[ContextAwareScanner, ContextAwareScanner]:
    return (
        ContextAwareScanner(terminal_set, backend="compiled"),
        ContextAwareScanner(terminal_set, backend="interpreted"),
    )


@pytest.fixture(scope="module")
def grammar_scanners():
    """Both engines over the fully composed extension grammar."""
    t = make_translator(["matrix", "transform"], fresh=True)
    ts = t.grammar.terminal_set
    return scanner_pair(ts)


class TestCorpusDifferential:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_identical_token_streams(self, grammar_scanners, name):
        comp, interp = grammar_scanners
        text = load(name)
        toks_c = comp.tokenize_all(text, filename=name)
        toks_i = interp.tokenize_all(text, filename=name)
        assert toks_c == toks_i
        assert toks_c[-1].terminal == EOF

    def test_spans_identical_not_just_tokens(self, grammar_scanners):
        comp, interp = grammar_scanners
        text = load("fig8")
        for tc, ti in zip(
            comp.tokenize_all(text), interp.tokenize_all(text), strict=True
        ):
            assert tc.span == ti.span
            assert (tc.span.start.line, tc.span.start.column) == (
                ti.span.start.line,
                ti.span.start.column,
            )


class TestRandomizedDifferential:
    FRAGMENTS = [
        "with", "genarray", "fold", "int", "float", "return", "if",
        "while", "matrix", "x", "ssh", "_tmp9", "withy", "genarray2",
        "0", "42", "3.25", "007",
        "+", "-", "*", "/", "<=", "<", ">=", ">", "==", "=", "(", ")",
        "[", "]", "{", "}", ";", ",", ".",
        " ", "  ", "\n", "\t", "// comment\n",
    ]

    def test_random_streams_identical(self, grammar_scanners):
        comp, interp = grammar_scanners
        rng = random.Random(24)
        for trial in range(60):
            text = "".join(
                rng.choice(self.FRAGMENTS) for _ in range(rng.randint(1, 60))
            )
            try:
                toks_i = interp.tokenize_all(text)
                err_i = None
            except ScanError as e:
                toks_i, err_i = None, e
            if err_i is None:
                assert comp.tokenize_all(text) == toks_i, repr(text)
            else:
                with pytest.raises(type(err_i)) as ei:
                    comp.tokenize_all(text)
                assert str(ei.value) == str(err_i), repr(text)

    def test_random_restricted_contexts_identical(self, grammar_scanners):
        """Per-call scan() with random valid-lookahead subsets — the
        context-aware path the parser exercises."""
        comp, interp = grammar_scanners
        names = sorted(t.name for t in comp.terminals if not t.layout)
        rng = random.Random(7)
        for trial in range(80):
            text = "".join(
                rng.choice(self.FRAGMENTS) for _ in range(rng.randint(1, 8))
            )
            valid = frozenset(rng.sample(names, rng.randint(1, len(names))))
            valid |= {EOF}
            loc = SourceLocation()
            try:
                tok_i = interp.scan(text, loc, valid)
                err_i = None
            except ScanError as e:
                tok_i, err_i = None, e
            if err_i is None:
                assert comp.scan(text, loc, valid) == tok_i, repr(text)
            else:
                with pytest.raises(type(err_i)) as ei:
                    comp.scan(text, loc, valid)
                assert str(ei.value) == str(err_i), repr(text)


class TestNonAsciiOverflow:
    @pytest.fixture(scope="class")
    def unicode_scanners(self):
        ts = TerminalSet()
        ts.declare("WS", r"[ \t\n]+", layout=True)
        ts.declare("Identifier", r"[a-zA-Z_]\w*")
        # Greek-range terminal: exercises the sorted-interval overflow
        # map (codepoints >= 256) in the compiled class mapper.
        ts.declare("Greek", "[α-ω]+")
        ts.declare("Plus", r"\+")
        return scanner_pair(ts)

    def test_greek_tokens_identical(self, unicode_scanners):
        comp, interp = unicode_scanners
        text = "abc + αβγ + ω + xyz"
        toks_c = comp.tokenize_all(text)
        assert toks_c == interp.tokenize_all(text)
        assert [t.terminal for t in toks_c] == [
            "Identifier", "Plus", "Greek", "Plus", "Greek", "Plus",
            "Identifier", EOF,
        ]

    def test_out_of_range_codepoints_error_identically(self, unicode_scanners):
        comp, interp = unicode_scanners
        # CJK and astral codepoints fall outside every overflow interval
        # (class 0 — no transition); both engines must reject alike.
        for text in ("中文", "a + \U0001f600", "α￿"):
            with pytest.raises(ScanError) as ec:
                comp.tokenize_all(text)
            with pytest.raises(ScanError) as ei:
                interp.tokenize_all(text)
            assert str(ec.value) == str(ei.value)

    def test_class_map_matches_scalar_query(self, unicode_scanners):
        comp, _ = unicode_scanners
        cd = comp.compiled
        text = "ab αωκ + 中\U0001f600 z"
        cls = cd.classes_of_text(text)
        assert list(cls) == [cd.class_of(ord(c)) for c in text]


class TestErrorIdentity:
    CASES = [
        "int x @ 3;",          # no token at '@'
        "@",                   # error at offset 0
        "x = 1;\n  @@",        # error on a later line (location check)
        "",                    # EOF only
        "   \n\t ",            # layout then EOF
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_same_error_or_stream(self, grammar_scanners, text):
        comp, interp = grammar_scanners
        try:
            toks_i = interp.tokenize_all(text)
            err_i = None
        except ScanError as e:
            toks_i, err_i = None, e
        if err_i is None:
            assert comp.tokenize_all(text) == toks_i
        else:
            with pytest.raises(type(err_i)) as ec:
                comp.tokenize_all(text)
            assert str(ec.value) == str(err_i)
            assert ec.value.location == err_i.location

    def test_ambiguity_identical(self):
        ts = TerminalSet()
        ts.declare("WS", r"[ \t]+", layout=True)
        ts.declare("A", "[ab]+")
        ts.declare("B", "[ba]+")
        comp, interp = scanner_pair(ts)
        loc = SourceLocation()
        valid = frozenset({"A", "B", EOF})
        with pytest.raises(LexicalAmbiguityError) as ec:
            comp.scan("abab", loc, valid)
        with pytest.raises(LexicalAmbiguityError) as ei:
            interp.scan("abab", loc, valid)
        assert str(ec.value) == str(ei.value)
