"""Regex parsing, NFA/DFA construction, and NFA≡DFA property tests."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lexing.dfa import build_scanner_dfa, minimize, subset_construct
from repro.lexing.nfa import build_combined_nfa, build_nfa
from repro.lexing.regex import RegexError, literal, parse_regex


def accepts(pattern: str, text: str) -> bool:
    nfa = build_nfa(parse_regex(pattern))
    return bool(nfa.matches(text))


def dfa_accepts(pattern: str, text: str) -> bool:
    dfa = build_scanner_dfa(build_nfa(parse_regex(pattern)))
    state = dfa.start
    for ch in text:
        nxt = dfa.step(state, ch)
        if nxt is None:
            return False
        state = nxt
    return bool(dfa.accepts[state])


class TestRegexParsing:
    @pytest.mark.parametrize(
        "pattern,yes,no",
        [
            ("abc", ["abc"], ["ab", "abcd", ""]),
            ("a|b", ["a", "b"], ["ab", ""]),
            ("a*", ["", "a", "aaaa"], ["b", "ab"]),
            ("a+", ["a", "aa"], [""]),
            ("a?b", ["b", "ab"], ["aab"]),
            ("(ab)+", ["ab", "abab"], ["a", "aba"]),
            ("[a-c]+", ["abc", "c"], ["d", ""]),
            ("[^a-c]", ["d", "z", "0"], ["a", "b", ""]),
            (r"\d+", ["0", "123"], ["a", ""]),
            (r"\d+\.\d+", ["3.14"], ["3.", ".5", "3"]),
            (r"\w+", ["foo_1"], ["-", ""]),
            (r"a{3}", ["aaa"], ["aa", "aaaa"]),
            (r"a{2,4}", ["aa", "aaa", "aaaa"], ["a", "aaaaa"]),
            (r"//[^\n]*", ["// hi", "//"], ["/", "// x\n"]),
            (r"\.", ["."], ["a"]),
            (".", ["a", "."], ["\n", ""]),
        ],
    )
    def test_membership(self, pattern, yes, no):
        for t in yes:
            assert accepts(pattern, t), (pattern, t)
            assert dfa_accepts(pattern, t), (pattern, t)
        for t in no:
            assert not accepts(pattern, t), (pattern, t)
            assert not dfa_accepts(pattern, t), (pattern, t)

    @pytest.mark.parametrize(
        "bad",
        ["(a", "a)", "[abc", "*a", "+", "a{", "a{2", "a{4,2}", "a\\q", "a|*"],
    )
    def test_malformed_raise(self, bad):
        with pytest.raises(RegexError):
            parse_regex(bad)

    def test_literal_escapes_metachars(self):
        # literal() must match the text verbatim even if it contains metachars.
        nfa = build_nfa(literal("a+b*(c)"))
        assert nfa.matches("a+b*(c)")
        assert not nfa.matches("aab")

    def test_block_comment_regex(self):
        # The classic C comment regex exercises classes and nesting-free loops.
        pat = r"/\*([^*]|\*+[^*/])*\*+/"
        for t in ["/**/", "/* x */", "/* a*b **/", "/***/"]:
            assert accepts(pat, t), t
        for t in ["/*", "/* */ */", "/**"]:
            assert not accepts(pat, t), t


class TestCombinedNFA:
    def test_accept_sets(self):
        terms = {
            "Identifier": parse_regex(r"[a-z]+"),
            "With": literal("with"),
            "IntLit": parse_regex(r"\d+"),
        }
        nfa = build_combined_nfa(terms)
        assert nfa.matches("with") == {"Identifier", "With"}
        assert nfa.matches("withal") == {"Identifier"}
        assert nfa.matches("42") == {"IntLit"}
        assert nfa.matches("") == set()

    def test_dfa_preserves_accept_sets(self):
        terms = {
            "Identifier": parse_regex(r"[a-z]+"),
            "With": literal("with"),
        }
        dfa = build_scanner_dfa(build_combined_nfa(terms))
        best = dfa.longest_match("with ")
        assert best is not None
        end, names = best
        assert end == 4 and names == frozenset({"Identifier", "With"})


class TestMinimization:
    def test_minimize_smaller_or_equal(self):
        nfa = build_nfa(parse_regex("(a|b)*abb"))
        raw = subset_construct(nfa)
        small = minimize(raw)
        assert small.num_states <= raw.num_states

    def test_minimize_preserves_language_on_samples(self):
        pattern = "(a|b)*abb"
        nfa = build_nfa(parse_regex(pattern))
        raw = subset_construct(nfa)
        small = minimize(raw)
        for text in ["abb", "aabb", "babb", "ab", "abba", "", "abbabb"]:
            def run(d):
                s = d.start
                for ch in text:
                    s = d.step(s, ch)
                    if s is None:
                        return False
                return bool(d.accepts[s])
            assert run(raw) == run(small), text


# --- property tests: our engine agrees with Python's re on a safe subset ----

ALPHABET = "ab"


@st.composite
def simple_patterns(draw):
    """Generate regexes valid in both engines (no backtracking pathologies)."""
    depth = draw(st.integers(0, 3))

    def go(d):
        if d == 0:
            return draw(st.sampled_from(["a", "b", "[ab]", "[^a]"]))
        kind = draw(st.sampled_from(["cat", "alt", "star", "plus", "opt"]))
        if kind == "cat":
            return go(d - 1) + go(d - 1)
        if kind == "alt":
            return f"({go(d - 1)}|{go(d - 1)})"
        inner = go(d - 1)
        return f"({inner})" + {"star": "*", "plus": "+", "opt": "?"}[kind]

    return go(depth)


@settings(max_examples=150, deadline=None)
@given(simple_patterns(), st.text(alphabet=ALPHABET, max_size=8))
def test_engine_agrees_with_stdlib_re(pattern, text):
    ours = accepts(pattern, text)
    theirs = re.fullmatch(pattern, text) is not None
    assert ours == theirs, (pattern, text)


@settings(max_examples=100, deadline=None)
@given(simple_patterns(), st.text(alphabet=ALPHABET, max_size=8))
def test_dfa_equals_nfa(pattern, text):
    assert dfa_accepts(pattern, text) == accepts(pattern, text)
