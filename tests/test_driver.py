"""Driver and public API: module composition, dependency resolution,
compile pipeline plumbing."""

import pytest

from repro.api import (
    compile_source,
    host_only,
    make_translator,
    module_registry,
)
from repro.driver import CompileError, Translator, resolve_dependencies


class TestRegistry:
    def test_all_modules_present(self):
        reg = module_registry()
        assert set(reg) >= {"cminus", "tuples", "refcount", "matrix",
                            "transform", "cilk"}

    def test_host_only_includes_tuples(self):
        names = [m.name for m in host_only()]
        assert names == ["cminus", "tuples"]


class TestDependencyResolution:
    def test_matrix_pulls_refcount(self):
        t = make_translator(["matrix"])
        assert {m.name for m in t.modules} >= {"cminus", "refcount", "matrix"}

    def test_transform_pulls_matrix_transitively(self):
        t = make_translator(["transform"])
        names = {m.name for m in t.modules}
        assert {"matrix", "refcount", "transform"} <= names

    def test_host_first(self):
        t = make_translator(["transform", "cilk"])
        assert t.modules[0].name == "cminus"

    def test_unknown_extension_rejected(self):
        with pytest.raises(ValueError, match="unknown extension"):
            make_translator(["warp-drive"])

    def test_unknown_requirement_rejected(self):
        from repro.ag.core import AGSpec
        from repro.driver import LanguageModule
        from repro.grammar.cfg import GrammarSpec

        reg = module_registry()
        bogus = LanguageModule("bogus", GrammarSpec("bogus"), AGSpec("bogus"),
                               requires=("no-such-module",))
        with pytest.raises(ValueError, match="requires unknown module"):
            resolve_dependencies([reg["cminus"], bogus])

    def test_transform_program_without_explicit_matrix(self):
        # requesting only "transform" must still give a translator that
        # understands matrix syntax (its prerequisite)
        result = compile_source("""
        int main() {
            Matrix float <1> v = init(Matrix float <1>, 8);
            v = with ([0] <= [i] < [8]) genarray([8], 1.0)
                transform unroll i by 2;
            return 0;
        }
        """, ["transform"])
        assert result.ok, result.errors


class TestPipeline:
    def test_check_only_skips_lowering(self):
        t = make_translator(["matrix"])
        result = t.compile("int main() { return 0; }", check_only=True)
        assert result.ok and result.c_source is None and result.lowered is None

    def test_compile_or_raise(self):
        t = make_translator([])
        with pytest.raises(CompileError, match="undeclared"):
            t.compile_or_raise("int main() { return x; }")

    def test_fresh_context_per_compile(self):
        t = make_translator(["matrix"])
        r1 = t.compile("int main() { Matrix float <1> v = init(Matrix float <1>, 2); return 0; }")
        r2 = t.compile("int main() { Matrix float <1> v = init(Matrix float <1>, 2); return 0; }")
        assert r1.ok and r2.ok
        assert r1.ctx is not r2.ctx
        # gensym counters restart: identical programs -> identical C
        assert r1.c_source == r2.c_source

    def test_translator_reuse_across_programs(self):
        t = make_translator(["matrix"])
        for i in range(3):
            r = t.compile(f"int main() {{ return {i}; }}")
            assert r.ok

    def test_errors_returned_not_raised(self):
        t = make_translator(["matrix"])
        result = t.compile("int main() { Matrix float <1> v = init(Matrix float <1>, 1, 2); return 0; }")
        assert not result.ok
        assert any("rank-1" in e for e in result.errors)

    def test_filename_in_errors(self):
        t = make_translator([])
        result = t.compile("int main() { return zz; }", filename="prog.xc")
        assert any("prog.xc:" in e for e in result.errors)


class TestRuntimeFeatureSelection:
    def test_host_only_program_gets_no_matrix_runtime(self):
        result = compile_source("int main() { return 0; }", [])
        assert "rt_allocf" not in result.c_source
        assert "rt_pool_init" in result.c_source  # main always brackets pool

    def test_matrix_program_gets_matrix_runtime(self):
        result = compile_source(
            "int main() { Matrix float <1> v = init(Matrix float <1>, 2); return 0; }",
            ["matrix"],
        )
        assert "rt_allocf" in result.c_source
        assert "rc_dec" in result.c_source

    def test_vector_runtime_only_when_vectorizing(self):
        plain = compile_source("int main() { return 0; }", ["matrix", "transform"])
        assert "rt_vloadf" not in plain.c_source
        vec = compile_source("""
        int main() {
            Matrix float <1> v = init(Matrix float <1>, 8);
            v = with ([0] <= [i] < [8]) genarray([8], 1.0)
                transform vectorize i;
            return 0;
        }
        """, ["matrix", "transform"])
        assert "rt_vloadf" in vec.c_source

    def test_tasks_runtime_only_with_spawn(self):
        plain = compile_source("int main() { return 0; }", ["cilk"])
        assert "rt_spawn" not in plain.c_source
        spawned = compile_source("""
        void f() { }
        int main() { spawn f(); sync; return 0; }
        """, ["cilk"])
        assert "rt_spawn" in spawned.c_source
