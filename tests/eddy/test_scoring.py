"""E-F7 and the eddy substrate: trough scoring identifies eddies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eddy import (
    compute_area,
    conn_comp,
    conn_comp_networkx,
    detection_quality,
    fig7_series,
    get_trough,
    score_time_series,
    synthetic_ssh,
    temporal_scores,
)


class TestFig7:
    def test_trough_area_dwarfs_noise_bumps(self):
        """Fig 7's point: "Large areas will then correspond to ... troughs
        that underwent substantial drops and rises, and those that are
        shallow ... can be associated with noise"."""
        s = fig7_series(trough_center=60, trough_depth=1.0, seed=1)
        scores = score_time_series(s)
        eddy_region = scores[50:70]
        noise_region = np.concatenate([scores[:30], scores[95:]])
        assert eddy_region.max() > 5 * max(noise_region.max(), 1e-6)

    def test_score_scales_with_depth(self):
        shallow = score_time_series(fig7_series(trough_depth=0.3, seed=2)).max()
        deep = score_time_series(fig7_series(trough_depth=1.5, seed=2)).max()
        assert deep > 2 * shallow

    def test_every_point_in_trough_gets_same_area(self):
        s = fig7_series(seed=4, noise_sigma=0.0, bump_amplitude=0.0)
        scores = score_time_series(s)
        mid = scores[55:65]
        assert np.allclose(mid, mid[0])


class TestGetTrough:
    def test_walk_down_then_up(self):
        ts = np.array([5, 4, 3, 1, 2, 4, 6, 5], dtype=np.float32)
        trough, beg, end = get_trough(ts, 0)
        assert beg == 0 and end == 6
        assert np.allclose(trough, ts[0:7])

    def test_flat_tail(self):
        ts = np.array([3, 2, 1], dtype=np.float32)
        trough, beg, end = get_trough(ts, 0)
        assert (beg, end) == (0, 2)

    def test_progress_guaranteed(self):
        rng = np.random.default_rng(0)
        ts = rng.normal(0, 1, 50).astype(np.float32)
        i = 0
        # simulate scoreTS's loop; must terminate
        while ts[i] < ts[i + 1] and i + 1 < len(ts) - 1:
            i += 1
        steps = 0
        while i < len(ts) - 1:
            _t, _b, j = get_trough(ts, i)
            assert j > i or j == len(ts) - 1
            i = j
            steps += 1
            assert steps < 100


class TestComputeArea:
    def test_v_shape(self):
        # line from 4 to 4 over a V of depth 4: area = sum(line - trough)
        trough = np.array([4, 2, 0, 2, 4], dtype=np.float32)
        out = compute_area(trough)
        assert out.shape == (5,)
        # line is flat at 4; area = (4-4)+(4-2)+(4-0)+(4-2)+(4-4) = 8
        assert out[0] == pytest.approx(8.0)

    def test_flat_trough_zero_area(self):
        out = compute_area(np.array([1, 1, 1], dtype=np.float32))
        assert np.allclose(out, 0.0, atol=1e-5)

    def test_single_point(self):
        out = compute_area(np.array([2.0], dtype=np.float32))
        assert out.shape == (1,) and out[0] == 0.0


class TestSyntheticSSH:
    def test_shapes_and_truth(self):
        data = synthetic_ssh((12, 14, 30), n_eddies=2, seed=0)
        assert data.cube.shape == (12, 14, 30)
        assert data.cube.dtype == np.float32
        assert len(data.tracks) == 2
        mask = data.eddy_mask()
        assert mask.shape == (12, 14)
        assert 0 < mask.sum() < mask.size

    def test_eddies_leave_troughs(self):
        data = synthetic_ssh((16, 16, 40), n_eddies=1, eddy_depth=1.5,
                             noise_sigma=0.0, restlessness=0.0, seed=5)
        tr = data.tracks[0]
        t_mid = (tr.t_start + tr.t_end) // 2
        ci, cj = tr.center_at(t_mid)
        series = data.cube[int(ci), int(cj), :]
        assert series.min() < -0.5 * tr.depth * 0.5

    def test_detection_beats_chance(self):
        data = synthetic_ssh((20, 24, 64), n_eddies=3, seed=13)
        scores = temporal_scores(data.cube)
        q = detection_quality(scores, data.eddy_mask())
        base_rate = data.eddy_mask().mean()
        assert q["precision"] > 2 * base_rate
        assert q["recall"] > 0.4

    def test_reproducible(self):
        a = synthetic_ssh((8, 8, 16), seed=7).cube
        b = synthetic_ssh((8, 8, 16), seed=7).cube
        assert np.array_equal(a, b)


class TestConnComp:
    def test_matches_scipy_partition(self):
        from scipy import ndimage

        rng = np.random.default_rng(3)
        for _ in range(5):
            frame = rng.normal(0.2, 0.5, (12, 15)).astype(np.float32)
            ours = conn_comp(frame)
            ref, n = ndimage.label(frame < 0.0)
            assert ((ours > 0) == (ref > 0)).all()
            assert len(np.unique(ours[ours > 0])) == n
            for lab in np.unique(ours[ours > 0]):
                assert len(np.unique(ref[ours == lab])) == 1

    def test_matches_networkx_count(self):
        rng = np.random.default_rng(5)
        frame = rng.normal(0.0, 0.5, (10, 10)).astype(np.float32)
        ours = conn_comp(frame)
        assert len(np.unique(ours[ours > 0])) == conn_comp_networkx(frame)

    def test_all_background(self):
        frame = np.ones((4, 4), dtype=np.float32)
        assert (conn_comp(frame) == 0).all()

    def test_all_foreground_single_component(self):
        frame = -np.ones((4, 4), dtype=np.float32)
        labels = conn_comp(frame)
        assert (labels == 1).all()


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_scoring_properties(seed):
    """Properties of scoreTS on random series: shape-preserving, finite,
    deterministic, and bounded by the series' total variation.  (Scores
    can be slightly negative: a purely convex descent's peak-to-peak line
    lies below the curve — noise artifacts the ranking ignores.)"""
    rng = np.random.default_rng(seed)
    ts = rng.normal(0, 1, 40).astype(np.float32)
    scores = score_time_series(ts)
    assert scores.shape == ts.shape
    assert np.isfinite(scores).all()
    total_variation = float(np.abs(np.diff(ts)).sum())
    assert np.abs(scores).max() <= total_variation * len(ts)
    assert np.array_equal(scores, score_time_series(ts))


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 30), st.integers(0, 1000))
def test_compute_area_nonnegative_for_true_troughs(n, seed):
    """For a series that descends then ascends (a genuine trough), the
    area between the peak line and the curve is non-negative."""
    rng = np.random.default_rng(seed)
    down = np.sort(rng.uniform(0, 1, n))[::-1]
    up = np.sort(rng.uniform(0, float(down[-1] + 1), n))
    trough = np.concatenate([down, up]).astype(np.float32)
    out = compute_area(trough)
    assert out[0] >= -1e-3
