"""Golden diagnostics: ``reproc check --explain-parallel`` output for
every shipped analysis example and paper program must match the
committed files under ``examples/analysis/golden/`` exactly — and every
*clean* shipped program must produce zero diagnostics."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_result
from repro.api import make_translator

ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = ROOT / "examples" / "analysis"
GOLDEN = EXAMPLES / "golden"
PROGRAMS_DIR = ROOT / "src" / "repro" / "programs"

# (source path, extension set) per golden; paper programs need the
# transform extension for their with-loop pipelines.
CASES = sorted(
    [(p, ("matrix",)) for p in EXAMPLES.glob("*.xc")]
    + [(p, ("matrix", "transform")) for p in PROGRAMS_DIR.glob("*.xc")],
    key=lambda c: c[0].name,
)

CLEAN = {"clean.xc"} | {p.name for p in PROGRAMS_DIR.glob("*.xc")}


def check_output(path: Path, exts) -> str:
    translator = make_translator(list(exts))
    rel = path.relative_to(ROOT).as_posix()
    result = translator.compile(path.read_text(), rel)
    assert result.ok, "\n".join(str(e) for e in result.errors)
    report = analyze_result(result, filename=rel)
    return report.format(explain_parallel=True)


def test_every_example_has_a_golden_and_vice_versa():
    want = {p.with_suffix(".txt").name for p, _exts in CASES}
    have = {p.name for p in GOLDEN.glob("*.txt")}
    assert want == have


@pytest.mark.parametrize("path,exts",
                         [pytest.param(p, e, id=p.name) for p, e in CASES])
def test_output_matches_golden(path, exts):
    golden = (GOLDEN / path.with_suffix(".txt").name).read_text()
    assert check_output(path, exts) == golden.rstrip("\n")


@pytest.mark.parametrize(
    "path,exts",
    [pytest.param(p, e, id=p.name) for p, e in CASES if p.name in CLEAN])
def test_clean_programs_produce_zero_diagnostics(path, exts):
    translator = make_translator(list(exts))
    result = translator.compile(path.read_text(), str(path))
    report = analyze_result(result, filename=path.name)
    assert report.diagnostics == (), [str(d) for d in report.diagnostics]
