"""Severity levels and the stable source-order sort that golden files
and --werror depend on."""

from __future__ import annotations

from repro.util.diagnostics import (
    Diagnostics, Severity, SourceLocation, SourceSpan,
)


def span(line, col, filename="f.xc"):
    return SourceSpan.at(SourceLocation(line, col, 0, filename))


def test_sorted_is_source_order():
    d = Diagnostics()
    d.warning("late", span(9, 0))
    d.error("early", span(2, 4))
    d.error("middle", span(5, 0))
    assert [x.message for x in d.sorted()] == ["early", "middle", "late"]


def test_colocated_errors_before_warnings():
    d = Diagnostics()
    d.warning("w", span(3, 0))
    d.error("e", span(3, 0))
    assert [x.severity for x in d.sorted()] == \
        [Severity.ERROR, Severity.WARNING]


def test_emission_order_breaks_remaining_ties():
    d = Diagnostics()
    d.error("first", span(1, 0))
    d.error("second", span(1, 0))
    assert [x.message for x in d.sorted()] == ["first", "second"]


def test_files_group_separately():
    d = Diagnostics()
    d.error("b", span(1, 0, "b.xc"))
    d.error("a", span(9, 0, "a.xc"))
    assert [x.message for x in d.sorted()] == ["a", "b"]


def test_counts_and_filters():
    d = Diagnostics()
    d.error("e", span(1, 0))
    d.warning("w", span(2, 0))
    d.note("n", span(3, 0))
    assert len(d.errors()) == 1
    assert len(d.warnings()) == 1
    assert d.has_errors


def test_str_rendering():
    d = Diagnostics()
    d.error("boom", span(4, 2), phase="analysis.shape")
    (only,) = list(d)
    assert str(only) == "f.xc:4:3: error: [analysis.shape] boom"
