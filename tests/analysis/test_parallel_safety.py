"""Explainable parallel safety: differential equivalence with the S23
fixpoint, witness chains, and the VM consuming the same verdicts.

``ref_hazards`` below is a line-for-line reimplementation of the
*pre-S25* private fixpoint (``BytecodeProgram._hazards`` /
``_direct_hazards`` as of the S23 tree) operating on the public
bytecode surface only.  The differential tests prove the shared
:class:`ParallelSafety` analysis reaches bit-identical hazard sets and
shard/task eligibility decisions on every function and lifted worker of
every shipped program."""

from __future__ import annotations

import pytest

from repro.analysis import ParallelSafety, analyze_parallel
from repro.analysis.hazards import (
    ALL_HAZARDS, H_IO, H_POOL, H_PRINT, H_RC, H_SPAWN, H_TRAP,
    SHARD_BLOCKERS, TASK_BLOCKERS, TRAP_OPS,
)
from repro.cexec.interp import InterpError
from repro.programs import PROGRAMS, load
from tests.analysis.common import compile_xc

# -- reference: the S23 fixpoint, reimplemented independently ----------------


def ref_direct_hazards(program, key):
    kind, name = key
    try:
        code = (program.lifted_code_for(name) if kind == "lifted"
                else program.code_for(name))
    except InterpError:
        return set(ALL_HAZARDS), set()
    hazards, calls = set(), set()
    for ins in code.instrs:
        op = ins[0]
        if op in TRAP_OPS:
            hazards.add(H_TRAP)
        if op in ("rc_inc", "rc_dec"):
            hazards.add(H_RC)
        elif op == "intr":
            method = ins[2]
            if method in ("_read_matrix", "_write_matrix"):
                hazards.update((H_IO, H_TRAP))
            elif method in ("_print_int", "_print_float"):
                hazards.update((H_PRINT, H_TRAP))
            else:
                hazards.add(H_TRAP)
                if method == "rt_assign_copy":
                    hazards.add(H_RC)
        elif op == "pool":
            hazards.add(H_POOL)
            calls.add(("lifted", ins[1]))
        elif op in ("spawn", "call"):
            if op == "spawn":
                hazards.add(H_SPAWN)
            callee, nargs = ins[2], len(ins[3])
            sig = program.functions.get(callee)
            if sig is not None and len(sig[0]) == nargs:
                calls.add(("fn", callee))
            else:
                hazards.update(ALL_HAZARDS)
    return hazards, calls


def ref_hazards(program, root, memo):
    cached = memo.get(root)
    if cached is not None:
        return cached
    direct, edges = {}, {}
    stack = [root]
    while stack:
        key = stack.pop()
        if key in direct:
            continue
        direct[key], edges[key] = ref_direct_hazards(program, key)
        for callee in edges[key]:
            if callee not in direct and callee not in memo:
                stack.append(callee)
    changed = True
    while changed:
        changed = False
        for key, hz in direct.items():
            for callee in edges[key]:
                callee_hz = memo.get(callee) or direct.get(callee, ())
                if not (set(callee_hz) <= hz):
                    hz |= set(callee_hz)
                    changed = True
    for key, hz in direct.items():
        memo[key] = frozenset(hz)
    return memo[root]


# -- corpus ------------------------------------------------------------------

UNSAFE_IO = """
float peek(Matrix float <1> v, int i) {
    writeMatrix("dbg.data", v);
    return v[i];
}
int main() {
    Matrix float <1> a = init(Matrix float <1>, 8);
    Matrix float <1> b = init(Matrix float <1>, 8);
    b = with ([0] <= [i] < [8]) genarray([8], peek(a, i) + 1.0);
    writeMatrix("out.data", b);
    return 0;
}
"""

RECURSIVE = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    printInt(fib(10));
    return 0;
}
"""


def corpus():
    cases = [(name, load(name), ("matrix", "transform"))
             for name in sorted(PROGRAMS)]
    cases.append(("unsafe_io", UNSAFE_IO, ("matrix",)))
    cases.append(("recursive", RECURSIVE, ("matrix",)))
    return cases


@pytest.mark.parametrize("name,source,exts",
                         [pytest.param(*c, id=c[0]) for c in corpus()])
def test_differential_bit_identical_decisions(name, source, exts):
    program = compile_xc(source, exts).bytecode()
    memo: dict = {}
    # Every lifted worker: identical hazard set and shard decision.
    for worker in program.lifted_trees:
        key = ("lifted", worker)
        ref = ref_hazards(program, key, memo)
        assert program.safety.hazards(key) == ref
        assert program.lifted_parallel_safe(worker) == (
            not (ref & SHARD_BLOCKERS))
    # Every function: identical hazard set and task decision.
    for fn in program.functions:
        key = ("fn", fn)
        ref = ref_hazards(program, key, memo)
        assert program.safety.hazards(key) == ref
        assert program.task_parallel_safe(fn) == (
            not (ref & TASK_BLOCKERS))
    # Unknown callees are never task-safe, in both worlds.
    assert program.task_parallel_safe("no_such_function") is False


def test_hazards_for_is_the_shared_analysis():
    program = compile_xc(UNSAFE_IO).bytecode()
    for worker in program.lifted_trees:
        assert program.hazards_for(worker, lifted=True) == \
            program.safety.hazards(("lifted", worker))
    # One ParallelSafety instance is memoized per program.
    assert program.safety is program.safety


# -- witnesses and explanations ----------------------------------------------


def test_unsafe_region_has_witness_chain_through_callee():
    program = compile_xc(UNSAFE_IO).bytecode()
    verdicts = analyze_parallel(program)
    refused = [v for v in verdicts if v.kind == "shard" and not v.safe]
    assert len(refused) == 1
    (v,) = refused
    assert v.blockers, "every refusal must carry a reason"
    b = v.blockers[0]
    assert b.hazard == H_IO
    assert b.chain[-1] == ("fn", "peek")
    assert "writeMatrix" in b.what
    text = v.explain()
    assert "runs sequentially" in text
    assert "blocked by" in text and "peek" in text


def test_safe_region_verdict_is_positive():
    program = compile_xc(
        "int main() {\n"
        "    Matrix float <1> a = init(Matrix float <1>, 8);\n"
        "    a = with ([0] <= [i] < [8]) genarray([8], 1.0);\n"
        "    writeMatrix(\"a.data\", a);\n"
        "    return 0;\n"
        "}\n").bytecode()
    verdicts = analyze_parallel(program)
    shard = [v for v in verdicts if v.kind == "shard"]
    assert shard and all(v.safe for v in shard)
    assert "OK" in shard[0].explain()


def test_every_refusal_everywhere_carries_a_reason():
    for _name, source, exts in corpus():
        program = compile_xc(source, exts).bytecode()
        for v in analyze_parallel(program):
            if not v.safe:
                assert v.blockers
                for b in v.blockers:
                    assert b.what and b.render()


def test_witness_is_shortest_chain():
    # main's region calls peek directly: the chain is region -> peek,
    # not any longer path.
    program = compile_xc(UNSAFE_IO).bytecode()
    safety = ParallelSafety(program)
    (worker,) = program.lifted_trees
    b = safety.witness(("lifted", worker), H_IO)
    assert len(b.chain) == 2


def test_vm_refuses_exactly_what_the_analysis_refuses(tmp_path):
    # The bail ledger names the same hazard the verdict explains.
    import numpy as np
    from repro.cexec.vm import VM

    result = compile_xc(UNSAFE_IO)
    program = result.bytecode()
    vm = VM(result.lowered, result.ctx, workdir=tmp_path, nthreads=4,
            program=program)
    vm.run_main()
    try:
        reasons = list(vm.stats.shard_bails)
        assert any("not shard-safe" in r and "io" in r for r in reasons)
    finally:
        vm.close()
