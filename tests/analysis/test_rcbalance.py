"""Refcount-balance pass on hand-built lowered trees.

Surface programs cannot express rc violations — the lowering's hooks
maintain the ownership discipline by construction (and the shipped-
examples guard proves the pass is silent on them) — so each warning is
exercised here on small crafted trees that break the discipline on
purpose."""

from __future__ import annotations

from repro.ag.tree import Node
from repro.analysis.cfg import build_cfg
from repro.analysis.rcbalance import check_rc_balance
from repro.util.diagnostics import Diagnostics

# -- tiny lowered-tree builders ----------------------------------------------


def mat_t() -> Node:
    return Node("tRaw", ["rt_mat *"])


def elist(*args) -> Node:
    out = Node("eNil", [])
    for a in reversed(args):
        out = Node("eCons", [a, out])
    return out


def call(name, *args) -> Node:
    return Node("call", [name, elist(*args)])


def var(name) -> Node:
    return Node("var", [name])


def num(v) -> Node:
    return Node("intLit", [str(v)])


def alloc() -> Node:
    return call("rt_allocf", num(1), num(4))


def stmts(*items) -> Node:
    out = Node("stmtNil", [])
    for s in reversed(items):
        out = Node("stmtCons", [s, out])
    return out


def block(*items) -> Node:
    return Node("block", [stmts(*items)])


def decl_init(name, rhs) -> Node:
    return Node("declInit", [mat_t(), name, rhs])


def estmt(e) -> Node:
    return Node("exprStmt", [e])


def rc_dec(name) -> Node:
    return estmt(call("rc_dec", var(name)))


def rc_inc(name) -> Node:
    return estmt(call("rc_inc", var(name)))


def if_stmt(cond, then_body) -> Node:
    return Node("ifStmt", [cond, then_body])


def rc_warnings(body: Node, params=()) -> list[str]:
    cfg = build_cfg("f", list(params), body)
    diags = Diagnostics()
    check_rc_balance(cfg, diags)
    return [d.message for d in diags]


# -- the warnings ------------------------------------------------------------


def test_balanced_alloc_release_is_silent():
    assert rc_warnings(block(
        decl_init("m", alloc()),
        rc_dec("m"),
    )) == []


def test_leak_on_every_path():
    msgs = rc_warnings(block(
        decl_init("m", alloc()),
    ))
    assert any("still holds an owned reference at function exit" in m
               and "'m'" in m for m in msgs)


def test_double_release():
    msgs = rc_warnings(block(
        decl_init("m", alloc()),
        rc_dec("m"),
        rc_dec("m"),
    ))
    assert any("released more often than it is acquired" in m
               for m in msgs)


def test_overwrite_leaks_owned_reference():
    msgs = rc_warnings(block(
        decl_init("m", alloc()),
        estmt(Node("assign", [var("m"), alloc()])),
        rc_dec("m"),
    ))
    assert any("overwrites matrix 'm'" in m for m in msgs)


def test_conditional_acquire_without_release_leaks():
    # m = NULL; if (...) m = alloc();  -> leaks on every path where it
    # is allocated (the surplus is conditioned on non-nullness).
    msgs = rc_warnings(block(
        Node("decl", [mat_t(), "m"]),
        if_stmt(num(1), block(
            estmt(Node("assign", [var("m"), alloc()])))),
    ))
    assert any("on every path where it is allocated" in m for m in msgs)


def test_conditional_release_leaks_on_some_paths():
    msgs = rc_warnings(block(
        decl_init("m", alloc()),
        if_stmt(num(1), block(rc_dec("m"))),
    ))
    assert any("leaks its reference on some paths" in m for m in msgs)


def test_conditional_acquire_then_release_is_balanced():
    # The conditioned-surplus join: releasing only where allocated is
    # exactly balanced, not a spurious partial leak.
    assert rc_warnings(block(
        Node("decl", [mat_t(), "m"]),
        if_stmt(num(1), block(
            estmt(Node("assign", [var("m"), alloc()])),
            rc_dec("m"))),
    )) == []


def test_use_after_release():
    msgs = rc_warnings(block(
        decl_init("m", alloc()),
        rc_dec("m"),
        estmt(call("writeMatrix", Node("strLit", ["m.data"]), var("m"))),
    ))
    assert any("used after its last reference is released" in m
               for m in msgs)


def test_move_transfers_ownership_once():
    # t = alloc(); m = t; rc_dec(m) — the var-to-var move must not
    # double-count the reference (one acquire, one release).
    assert rc_warnings(block(
        decl_init("t", alloc()),
        decl_init("m", var("t")),
        rc_dec("m"),
    )) == []


def test_inc_then_double_dec_is_balanced():
    assert rc_warnings(block(
        decl_init("m", alloc()),
        rc_inc("m"),
        rc_dec("m"),
        rc_dec("m"),
    )) == []


def test_params_are_borrowed_and_untracked():
    # Releasing a parameter's reference is the caller's business; the
    # pass must not warn about names it does not track.
    assert rc_warnings(block(rc_dec("p")), params=("p",)) == []


def test_release_of_definitely_null_is_silent():
    assert rc_warnings(block(
        Node("decl", [mat_t(), "m"]),
        rc_dec("m"),
    )) == []
