"""Definite-assignment pass: errors for reads that are uninitialized on
every path, warnings for some-path reads, silence for clean programs."""

from __future__ import annotations

from tests.analysis.common import messages, report_for

PHASE = "analysis.init"


def test_read_before_any_assignment_is_error():
    r = report_for("int main() { int x; int y = x + 1; return y; }")
    assert any("'x' is read before it is initialized" in m
               for m in messages(r, PHASE))
    assert r.error_count == 1


def test_one_branch_assignment_is_warning():
    r = report_for(
        "int main() { int y = 1; int z;"
        " if (y > 0) { z = 2; } return z; }")
    msgs = messages(r, PHASE)
    assert any("'z' may be read" in m for m in msgs)
    assert r.error_count == 0 and r.warning_count == 1


def test_both_branches_assign_is_clean():
    r = report_for(
        "int main() { int y = 1; int z;"
        " if (y > 0) { z = 2; } else { z = 3; } return z; }")
    assert messages(r, PHASE) == []


def test_assignment_in_loop_body_is_maybe():
    r = report_for(
        "int main() { int i = 0; int z;"
        " while (i < 3) { z = i; i = i + 1; } return z; }")
    assert any("'z' may be read" in m for m in messages(r, PHASE))


def test_straight_line_clean():
    r = report_for("int main() { int x = 1; int y = x; return y; }")
    assert messages(r, PHASE) == []


def test_error_span_points_at_the_read():
    r = report_for("int main() {\n    int x;\n    int y = x + 1;\n"
                   "    return y;\n}\n")
    d = [d for d in r.diagnostics if d.phase == PHASE][0]
    assert d.span.start.line == 3


def test_dead_code_reads_do_not_fire():
    r = report_for(
        "int main() { int x; return 0; int y = x + 1; return y; }")
    assert messages(r, PHASE) == []
