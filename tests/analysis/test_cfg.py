"""CFG construction over lowered bodies: block/edge shapes for each
control construct, reverse postorder, and dead-code unreachability."""

from __future__ import annotations

from tests.analysis.common import cfgs_for


def edges(cfg):
    return {(b.bid, t, lbl) for b in cfg.blocks for t, lbl in b.succs}


def test_straight_line_single_path():
    cfg = cfgs_for("int main() { int x = 1; int y = x + 2; return y; }")[
        "main"]
    order = cfg.rpo()
    assert order[0] == cfg.entry
    assert cfg.exit in order
    # Exactly one path entry -> exit; every reachable block has <= 1
    # unlabeled successor.
    for b in cfg.blocks:
        if b.bid in cfg.reachable():
            assert len(b.succs) <= 1


def test_if_has_labeled_branch_edges():
    cfg = cfgs_for(
        "int main() { int x = 0; if (x < 1) { x = 2; } return x; }")["main"]
    labeled = [(b, t, lbl) for b, t, lbl in edges(cfg) if lbl is not None]
    assert {lbl for _b, _t, lbl in labeled} == {True, False}
    # The condition block fans out to exactly two targets.
    srcs = {b for b, _t, _lbl in labeled}
    assert len(srcs) == 1


def test_if_else_joins():
    cfg = cfgs_for(
        "int main() { int x = 0; if (x < 1) { x = 2; } else { x = 3; }"
        " return x; }")["main"]
    labeled = [(b, t) for b, t, lbl in edges(cfg) if lbl is not None]
    then_b, else_b = (t for _b, t in labeled)
    # Both arms flow into one join block.
    join_t = {t for t, _l in cfg.blocks[then_b].succs}
    join_e = {t for t, _l in cfg.blocks[else_b].succs}
    assert join_t == join_e and len(join_t) == 1


def test_while_has_back_edge():
    cfg = cfgs_for(
        "int main() { int i = 0; while (i < 4) { i = i + 1; } return i; }"
    )["main"]
    order = cfg.rpo()
    pos = {bid: k for k, bid in enumerate(order)}
    back = [(b, t) for b, t, _l in edges(cfg)
            if b in pos and t in pos and pos[t] <= pos[b]]
    assert back, "a while loop must produce a back edge"


def test_for_loop_step_block():
    cfg = cfgs_for(
        "int main() { int s = 0;"
        " for (int i = 0; i < 3; i = i + 1) { s = s + i; } return s; }"
    )["main"]
    # head (cond) has True/False out-edges and is the back-edge target.
    labeled = [(b, t, lbl) for b, t, lbl in edges(cfg) if lbl is not None]
    heads = {b for b, _t, _l in labeled}
    assert len(heads) == 1
    (head,) = heads
    assert any(t == head and b != head for b, t, _l in edges(cfg)
               if b in cfg.reachable())


def test_return_terminates_block_dead_code_unreachable():
    cfg = cfgs_for(
        "int main() { return 1; }")["main"]
    # Statements behind a return would land in an unreachable block.
    reach = cfg.reachable()
    ret_blocks = [b for b in cfg.blocks
                  if any(i.prod == "returnStmt" for i in b.items)]
    assert ret_blocks
    for b in ret_blocks:
        assert all(t == cfg.exit or t not in reach for t, _l in b.succs)


def test_break_exits_loop():
    cfg = cfgs_for(
        "int main() { int i = 0; while (i < 10) {"
        " if (i > 3) { break; } i = i + 1; } return i; }")["main"]
    # The loop's after-block is reachable, and some block other than the
    # condition head jumps straight to it (the break edge).
    assert cfg.exit in cfg.reachable()


def test_continue_targets_loop_head():
    cfgs = cfgs_for(
        "int main() { int i = 0; int s = 0; while (i < 10) {"
        " i = i + 1; if (i > 3) { continue; } s = s + i; } return s; }")
    cfg = cfgs["main"]
    order = cfg.rpo()
    pos = {bid: k for k, bid in enumerate(order)}
    back = [(b, t) for b, t, _l in edges(cfg)
            if b in pos and t in pos and pos[t] <= pos[b]]
    # continue adds a second back edge to the condition head
    assert len(back) >= 2


def test_rpo_entry_first_and_covers_reachable_once():
    cfg = cfgs_for(
        "int main() { int x = 0; if (x) { x = 1; } else { x = 2; }"
        " while (x < 9) { x = x + 3; } return x; }")["main"]
    order = cfg.rpo()
    assert order[0] == cfg.entry
    assert len(order) == len(set(order))
    assert set(order) == cfg.reachable()


def test_lifted_worker_bodies_get_cfgs():
    cfgs = cfgs_for(
        "int main() {\n"
        "    Matrix float <1> a = init(Matrix float <1>, 8);\n"
        "    a = with ([0] <= [i] < [8]) genarray([8], 1.0);\n"
        "    writeMatrix(\"a.data\", a);\n"
        "    return 0;\n"
        "}\n")
    lifted = [n for n in cfgs if n != "main"]
    assert lifted, "the with-loop body must appear as a lifted CFG"
    for name in lifted:
        cfg = cfgs[name]
        assert "__lo" in cfg.params and "__hi" in cfg.params
