"""Shared helpers for the S25 analysis tests: compile a source string
through the (process-cached) translator and hand back lowered trees,
CFGs, or a full :class:`AnalysisReport`."""

from __future__ import annotations

from repro.analysis import analyze_result, function_cfgs
from repro.api import make_translator

EXTS = ("matrix",)


def compile_xc(source: str, extensions=EXTS, filename: str = "<test>"):
    translator = make_translator(list(extensions))
    result = translator.compile(source, filename)
    assert result.ok, "\n".join(str(e) for e in result.errors)
    return result


def report_for(source: str, extensions=EXTS, filename: str = "<test>"):
    result = compile_xc(source, extensions, filename)
    return analyze_result(result, filename=filename)


def cfgs_for(source: str, extensions=EXTS):
    result = compile_xc(source, extensions)
    return function_cfgs(result.lowered, result.ctx)


def messages(report, phase: str | None = None) -> list[str]:
    return [d.message for d in report.diagnostics
            if phase is None or d.phase == phase]
