"""The generic worklist solver on hand-built CFGs: forward/backward,
may/must gen-kill, lattice-join transfer, and the widening hook."""

from __future__ import annotations

from repro.analysis.cfg import CFG, Block
from repro.analysis.dataflow import GenKill, solve, solve_genkill


def diamond() -> CFG:
    """0 -> {1, 2} -> 3 (entry 0, exit 3)."""
    blocks = [Block(0), Block(1), Block(2), Block(3)]
    for a, b, lbl in [(0, 1, True), (0, 2, False), (1, 3, None),
                      (2, 3, None)]:
        blocks[a].succs.append((b, lbl))
        blocks[b].preds.append(a)
    return CFG("d", [], blocks, entry=0, exit=3)


def loop() -> CFG:
    """0 -> 1 <-> 2, 1 -> 3 (entry 0, exit 3)."""
    blocks = [Block(0), Block(1), Block(2), Block(3)]
    for a, b, lbl in [(0, 1, None), (1, 2, True), (2, 1, None),
                      (1, 3, False)]:
        blocks[a].succs.append((b, lbl))
        blocks[b].preds.append(a)
    return CFG("l", [], blocks, entry=0, exit=3)


def test_forward_may_union_reaches_join():
    cfg = diamond()
    gk = {1: GenKill(frozenset({"a"}), frozenset()),
          2: GenKill(frozenset({"b"}), frozenset())}
    sol = solve_genkill(cfg, gk)
    ins, _out = sol[3]
    assert ins == frozenset({"a", "b"})


def test_forward_must_intersection_at_join():
    cfg = diamond()
    universe = frozenset({"a", "b", "c"})
    gk = {0: GenKill(frozenset({"c"}), frozenset()),
          1: GenKill(frozenset({"a"}), frozenset()),
          2: GenKill(frozenset({"b"}), frozenset())}
    sol = solve_genkill(cfg, gk, may=False, universe=universe,
                        boundary=frozenset())
    ins, _out = sol[3]
    # Only "c" is generated on *every* path into the join.
    assert ins == frozenset({"c"})


def test_kill_removes_fact():
    cfg = diamond()
    gk = {0: GenKill(frozenset({"x"}), frozenset()),
          1: GenKill(frozenset(), frozenset({"x"}))}
    sol = solve_genkill(cfg, gk)
    assert "x" not in sol[1][1]     # killed through the then-arm
    assert "x" in sol[2][1]         # survives the else-arm
    assert "x" in sol[3][0]         # may-reach at the join


def test_backward_liveness():
    cfg = diamond()
    # Block 3 reads "v"; block 1 writes it; block 2 does nothing.
    gk = {3: GenKill(frozenset({"v"}), frozenset()),
          1: GenKill(frozenset(), frozenset({"v"}))}
    sol = solve_genkill(cfg, gk, direction="backward")
    # Backward: sol[bid] = (state flowing in from successors, state out).
    assert "v" in sol[2][0]
    assert "v" not in sol[1][1]     # dead above the write


def test_loop_reaches_fixpoint():
    cfg = loop()
    gk = {2: GenKill(frozenset({"i"}), frozenset())}
    sol = solve_genkill(cfg, gk)
    # The fact generated in the loop body flows around the back edge
    # into the loop head and out the exit edge.
    assert "i" in sol[1][0]
    assert "i" in sol[3][0]


def test_lattice_join_transfer_counts():
    cfg = diamond()

    def transfer(block, state):
        return state | {block.bid}

    sol = solve(cfg, transfer, join=lambda a, b: a | b,
                entry_state=frozenset(), init=frozenset())
    assert sol[3][1] == frozenset({0, 1, 2, 3})


def test_widening_terminates_unbounded_chain():
    cfg = loop()
    calls = {"widened": 0}

    def transfer(block, state):
        # A strictly ascending chain that would never converge on the
        # back edge without widening.
        return state + 1 if block.bid == 2 else state

    def widen(old, new):
        calls["widened"] += 1
        return 10 ** 9

    sol = solve(cfg, transfer, join=max, entry_state=0, init=0,
                widen=widen, widen_after=3)
    assert calls["widened"] > 0
    assert sol[3][0] == 10 ** 9


def test_bad_direction_rejected():
    import pytest

    with pytest.raises(ValueError):
        solve(diamond(), lambda b, s: s, join=lambda a, b: a,
              entry_state=0, init=0, direction="sideways")
    with pytest.raises(ValueError):
        solve_genkill(diamond(), {}, may=False)  # must needs a universe
