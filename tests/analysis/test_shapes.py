"""Shape/bounds interval pass: every crafted must-fail program yields at
least one static error, and clean programs — including all shipped
paper programs — yield none (the pass is must-fail-only by design)."""

from __future__ import annotations

import pytest

from repro.programs import PROGRAMS, load
from tests.analysis.common import cfgs_for, messages, report_for

PHASE = "analysis.shape"


def shape_msgs(r):
    return messages(r, PHASE)


def test_static_oob_flat_index():
    r = report_for(
        "int main() {\n"
        "    Matrix float <2> a = init(Matrix float <2>, 3, 4);\n"
        "    a[10, 0] = 1.0;\n"
        "    writeMatrix(\"a.data\", a);\n"
        "    return 0;\n"
        "}\n")
    assert any("out of bounds" in m for m in shape_msgs(r))
    assert r.error_count >= 1


def test_elementwise_shape_mismatch():
    r = report_for(
        "int main() {\n"
        "    Matrix float <2> a = init(Matrix float <2>, 2, 2);\n"
        "    Matrix float <2> b = init(Matrix float <2>, 3, 3);\n"
        "    Matrix float <2> c = a + b;\n"
        "    writeMatrix(\"c.data\", c);\n"
        "    return 0;\n"
        "}\n")
    assert any("never match" in m for m in shape_msgs(r))
    assert r.error_count >= 1


def test_matmul_inner_dims_never_agree():
    r = report_for(
        "int main() {\n"
        "    Matrix float <2> a = init(Matrix float <2>, 3, 4);\n"
        "    Matrix float <2> b = init(Matrix float <2>, 3, 4);\n"
        "    Matrix float <2> c = a * b;\n"
        "    writeMatrix(\"c.data\", c);\n"
        "    return 0;\n"
        "}\n")
    assert any("dimensions never agree" in m for m in shape_msgs(r))


def test_diagnostic_carries_real_source_span():
    r = report_for(
        "int main() {\n"
        "    Matrix float <2> a = init(Matrix float <2>, 3, 4);\n"
        "    Matrix float <2> b = init(Matrix float <2>, 3, 4);\n"
        "    Matrix float <2> c = a * b;\n"
        "    writeMatrix(\"c.data\", c);\n"
        "    return 0;\n"
        "}\n")
    d = [d for d in r.diagnostics if d.phase == PHASE][0]
    assert d.span.start.line == 4   # the c = a * b line, not <input>:1


def test_negative_dimension():
    r = report_for(
        "int main() {\n"
        "    Matrix float <1> a = init(Matrix float <1>, 0 - 2);\n"
        "    writeMatrix(\"a.data\", a);\n"
        "    return 0;\n"
        "}\n")
    assert any("negative dimension" in m for m in shape_msgs(r))


def test_matmul_matching_dims_is_clean():
    r = report_for(
        "int main() {\n"
        "    Matrix float <2> a = init(Matrix float <2>, 3, 4);\n"
        "    Matrix float <2> b = init(Matrix float <2>, 4, 5);\n"
        "    Matrix float <2> c = a * b;\n"
        "    writeMatrix(\"c.data\", c);\n"
        "    return 0;\n"
        "}\n")
    assert shape_msgs(r) == []


def test_unknown_shapes_stay_silent():
    # readMatrix shapes are unknown; must-fail-only means no report.
    r = report_for(
        "int main() {\n"
        "    Matrix float <2> a = readMatrix(\"a.data\");\n"
        "    Matrix float <2> b = readMatrix(\"b.data\");\n"
        "    Matrix float <2> c = a + b;\n"
        "    writeMatrix(\"c.data\", c);\n"
        "    return 0;\n"
        "}\n")
    assert shape_msgs(r) == []


def test_loop_widening_does_not_false_positive():
    r = report_for(
        "int main() {\n"
        "    Matrix float <1> a = init(Matrix float <1>, 8);\n"
        "    for (int i = 0; i < 8; i = i + 1) {\n"
        "        a[i] = 1.0;\n"
        "    }\n"
        "    writeMatrix(\"a.data\", a);\n"
        "    return 0;\n"
        "}\n")
    assert shape_msgs(r) == []


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_paper_programs_have_zero_diagnostics(name):
    r = report_for(load(name), extensions=("matrix", "transform"),
                   filename=name)
    assert r.diagnostics == (), [str(d) for d in r.diagnostics]


# -- S30 branch-edge refinement ----------------------------------------------
#
# The interval pass narrows states along labeled CFG edges (the True /
# False sides of branch and loop-header comparisons), so guards that
# sanitize an unknown value before an access now discharge statically.


def proven_counts(source: str) -> dict[str, int]:
    from repro.analysis.shapes import proven_in_range

    return {name: len(proven_in_range(cfg))
            for name, cfg in cfgs_for(source).items()}


EQ_GUARDED = """
int f(Matrix float <1> m, int k) {
    if (k == dimSize(m, 0)) {
        Matrix float <1> r = with ([0] <= [i] < [k])
            genarray([dimSize(m, 0)], 2.0 * i);
        printFloat(r[0]);
    }
    return 0;
}
int main() {
    Matrix float <1> m = readMatrix("m.data");
    printInt(f(m, dimSize(m, 0)));
    return 0;
}
"""

NUM_GUARDED = """
int f(int k) {
    Matrix float <1> r = init(Matrix float <1>, 8);
    if (k >= 0) {
        if (k <= 8) {
            r = with ([0] <= [i] < [k]) genarray([8], 2.0 * i);
        }
    }
    printFloat(r[0]);
    return 0;
}
int main() { printInt(f(5)); return 0; }
"""


def test_equality_guard_donates_dim_witness():
    # ``k == dimSize(m, 0)`` donates the dimension's symbolic witness to
    # ``k`` on the True edge, so the with-loop's [0, k) range check
    # against a genarray of that same dimension is proven in range.
    assert proven_counts(EQ_GUARDED)["f"] == 1
    unguarded = EQ_GUARDED.replace("if (k == dimSize(m, 0)) {", "{")
    assert proven_counts(unguarded)["f"] == 0


def test_numeric_guards_narrow_unknown_bound():
    # ``0 <= k <= 8`` pins the unknown bound numerically; [0, k) then
    # fits a genarray of size 8.
    assert proven_counts(NUM_GUARDED)["f"] == 1
    unguarded = NUM_GUARDED.replace("if (k <= 8) {", "{")
    assert proven_counts(unguarded)["f"] == 0


def test_refinement_keeps_guarded_access_silent():
    # No diagnostics either way: refinement adds proofs, never reports.
    assert shape_msgs(report_for(EQ_GUARDED)) == []
    assert shape_msgs(report_for(NUM_GUARDED)) == []
