"""S30 static race detection: every crafted racy example under
``examples/analysis/races/`` is flagged with its witness chain, every
race-free one is cleared (and becomes task-pool eligible), the
``--races`` text output matches the committed goldens exactly, and the
cleared programs stay observationally identical at any worker count —
with ``REPRO_NO_RACE_CHECK`` restoring the pre-S30 decisions."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_result
from repro.analysis.races import race_analysis_for
from repro.api import make_translator
from repro.cexec.bytecode import BytecodeProgram
from repro.cexec.interp import run_program

ROOT = Path(__file__).resolve().parents[2]
RACES = ROOT / "examples" / "analysis" / "races"
GOLDEN = RACES / "golden"
EXTS = ("matrix", "cilk")

CASES = sorted(RACES.glob("*.xc"), key=lambda p: p.name)

#: name -> (expected finding count, tasks expected cleared)
EXPECT = {
    "disjoint_halves.xc": (0, {"fill"}),
    "even_odd.xc": (0, {"evens", "odds"}),
    "indirect_index.xc": (1, set()),
    "racy_continuation.xc": (1, set()),
    "racy_overlap.xc": (1, set()),
}


def compiled(path: Path):
    translator = make_translator(list(EXTS))
    rel = path.relative_to(ROOT).as_posix()
    result = translator.compile(path.read_text(), rel)
    assert result.ok, "\n".join(str(e) for e in result.errors)
    return result, rel


def test_examples_and_goldens_in_sync():
    assert {p.name for p in CASES} == set(EXPECT)
    want = {p.with_suffix(".txt").name for p in CASES}
    assert want == {p.name for p in GOLDEN.glob("*.txt")}


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.name)
def test_races_output_matches_golden(path):
    result, rel = compiled(path)
    report = analyze_result(result, filename=rel)
    golden = (GOLDEN / path.with_suffix(".txt").name).read_text()
    assert report.format(races=True) == golden.rstrip("\n")


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.name)
def test_verdicts_and_clearance(path):
    result, _ = compiled(path)
    program = BytecodeProgram(result.lowered, result.ctx)
    ra = race_analysis_for(program)
    assert ra is not None
    nfind, cleared = EXPECT[path.name]
    assert len(ra.findings) == nfind, [f.message for f in ra.findings]
    assert set(ra.cleared) == cleared
    # clearance (or its absence) drives task-pool eligibility
    for name in cleared:
        assert program.task_parallel_safe(name)
    for name in ra.blocked:
        assert not program.task_parallel_safe(name)


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.name)
def test_racy_findings_carry_witness_chains(path):
    nfind, _ = EXPECT[path.name]
    if not nfind:
        pytest.skip("race-free example")
    result, _ = compiled(path)
    program = BytecodeProgram(result.lowered, result.ctx)
    ra = race_analysis_for(program)
    (finding,) = ra.findings
    text = "\n".join(finding.lines())
    assert "cannot be proven disjoint" in text
    assert "spawned at" in text and "conflicting access at" in text


def test_escape_hatch_restores_pre_race_decisions(monkeypatch):
    # Under REPRO_NO_RACE_CHECK the analysis returns None and the
    # effect-hazard verdict stands: 'fill' writes a shared matrix, so
    # it is task-blocked exactly as before S30.
    path = RACES / "disjoint_halves.xc"
    result, _ = compiled(path)
    program = BytecodeProgram(result.lowered, result.ctx)
    assert program.task_parallel_safe("fill")

    monkeypatch.setenv("REPRO_NO_RACE_CHECK", "1")
    result2, _ = compiled(path)
    program2 = BytecodeProgram(result2.lowered, result2.ctx)
    assert race_analysis_for(program2) is None
    assert not program2.task_parallel_safe("fill")


@pytest.mark.parametrize(
    "name", ["disjoint_halves.xc", "even_odd.xc"])
def test_cleared_programs_identical_at_any_worker_count(name):
    # The proof has teeth: the cleared spawns actually run on the task
    # pool at nthreads=4 and the observable behavior is bit-identical
    # to the sequential run.
    src = (RACES / name).read_text()

    def run(n):
        rc, outs, st, ex = run_program(src, list(EXTS), nthreads=n)
        return rc, list(ex.stdout), outs, st

    rc1, out1, files1, st1 = run(1)
    rc4, out4, files4, st4 = run(4)
    assert (rc1, out1, files1) == (rc4, out4, files4)
    # clearance made the spawns pool-eligible, and they really ran there
    assert st1.tasks_pooled == 0
    assert st4.tasks_pooled > 0
