"""The ``reproc check`` subcommand: exit codes, --werror, and the
explanation/stat surfaces."""

from __future__ import annotations

import pytest

from repro.cli import main

CLEAN = """int main() {
    Matrix float <1> a = init(Matrix float <1>, 8);
    a = with ([0] <= [i] < [8]) genarray([8], 1.0);
    writeMatrix("a.data", a);
    return 0;
}
"""

OOB = """int main() {
    Matrix float <2> a = init(Matrix float <2>, 3, 4);
    a[10, 0] = 1.0;
    writeMatrix("a.data", a);
    return 0;
}
"""

WARN_ONLY = """int main() {
    int y = 1;
    int z;
    if (y > 0) { z = 2; }
    printInt(z);
    return 0;
}
"""

UNSAFE = """float peek(Matrix float <1> v, int i) {
    writeMatrix("dbg.data", v);
    return v[i];
}
int main() {
    Matrix float <1> a = init(Matrix float <1>, 8);
    a = with ([0] <= [i] < [8]) genarray([8], peek(a, i));
    writeMatrix("a.data", a);
    return 0;
}
"""


@pytest.fixture()
def write(tmp_path):
    def _write(name, text):
        p = tmp_path / name
        p.write_text(text)
        return str(p)
    return _write


def test_clean_program_exits_zero(write, capsys):
    assert main(["check", write("ok.xc", CLEAN)]) == 0
    assert "no issues" in capsys.readouterr().out


def test_static_error_exits_one(write, capsys):
    assert main(["check", write("oob.xc", OOB)]) == 1
    out = capsys.readouterr().out
    assert "out of bounds" in out and "error" in out


def test_warnings_pass_unless_werror(write, capsys):
    path = write("warn.xc", WARN_ONLY)
    assert main(["check", path]) == 0
    assert "may be read" in capsys.readouterr().out
    assert main(["check", path, "--werror"]) == 1


def test_explain_parallel_prints_verdicts(write, capsys):
    assert main(["check", write("unsafe.xc", UNSAFE),
                 "--explain-parallel"]) == 0
    out = capsys.readouterr().out
    assert "runs sequentially" in out
    assert "blocked by" in out and "peek" in out


def test_compile_error_exits_one(write, capsys):
    assert main(["check", write("bad.xc", "int main() { return nope; }")]
                ) == 1
    assert capsys.readouterr().err


def test_missing_file_exits_one(capsys):
    assert main(["check", "definitely-not-here.xc"]) == 1


def test_multiple_files_aggregate(write, capsys):
    ok = write("ok.xc", CLEAN)
    bad = write("oob.xc", OOB)
    assert main(["check", ok, bad]) == 1
    out = capsys.readouterr().out
    assert "no issues" in out and "1 error" in out


def test_stats_prints_analysis_counters(write, capsys):
    assert main(["check", write("ok.xc", CLEAN), "--stats"]) == 0
    assert "analysis reports" in capsys.readouterr().out
