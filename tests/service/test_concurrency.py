"""Satellite: concurrent ``Translator.compile`` from >=8 threads.

The translator's pipeline must keep all mutable state per call — parser
stacks, scanner position, the CompileContext (gensym counter, lifted
functions, runtime features) and the decorated-tree caches.  These tests
hammer one shared translator from many threads on mixed programs and
require byte-identical results to the sequential run.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.programs import PROGRAMS, load
from repro.service import CompileRequest, CompileService

EXTS = ("matrix", "transform")
CORPUS = sorted(PROGRAMS)
THREADS = 8
ROUNDS = 3  # each thread compiles the whole corpus this many times


def test_concurrent_compiles_match_sequential(mem_cache):
    translator = mem_cache.get(list(EXTS))
    sources = {name: load(name) for name in CORPUS}
    expected = {n: translator.compile(s, n).c_source for n, s in sources.items()}
    assert all(c is not None for c in expected.values())

    barrier = threading.Barrier(THREADS)
    mismatches: list[str] = []

    def worker(tid: int) -> None:
        barrier.wait()  # maximise interleaving
        for round_ in range(ROUNDS):
            # Stagger the order per thread so different programs overlap.
            for i in range(len(CORPUS)):
                name = CORPUS[(tid + round_ + i) % len(CORPUS)]
                result = translator.compile(sources[name], name)
                if result.errors:
                    mismatches.append(f"{name}: errors {result.errors[:1]}")
                elif result.c_source != expected[name]:
                    mismatches.append(f"{name}: output diverged")

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        list(pool.map(worker, range(THREADS)))

    assert not mismatches, mismatches[:5]


def test_concurrent_check_only_and_errors(mem_cache):
    """Error-reporting compiles interleaved with good ones stay isolated."""
    translator = mem_cache.get(list(EXTS))
    good = load("fig1")
    bad = "int main() { return nope; }"

    def worker(i: int):
        if i % 2:
            return translator.compile(bad, check_only=True).errors
        return translator.compile(good, check_only=True).errors

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        results = list(pool.map(worker, range(THREADS * 4)))
    for i, errors in enumerate(results):
        if i % 2:
            assert any("undeclared identifier" in e for e in errors)
        else:
            assert errors == []


def test_cold_process_concurrent_first_builds():
    """8 threads racing into a *cold* process must see fully-installed
    language modules (registry construction is serialized) and one shared
    translator, producing identical output.

    Runs in a subprocess because the registry in this process is already
    warm by the time any test executes.
    """
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    src_dir = Path(repro.__file__).resolve().parent.parent

    script = """
import threading
from concurrent.futures import ThreadPoolExecutor
from repro.api import compile_source
from repro.programs import load

src = load("fig1")
barrier = threading.Barrier(8)

def work(_):
    barrier.wait()
    r = compile_source(src, ["matrix"])
    assert r.ok, r.errors
    return r.c_source

with ThreadPoolExecutor(max_workers=8) as pool:
    outputs = list(pool.map(work, range(8)))
assert len(set(outputs)) == 1, "divergent outputs from cold concurrent builds"
print("COLD-CONCURRENT-OK")
"""
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=300,
        env={**os.environ, "REPRO_CACHE_DIR": "off", "PYTHONPATH": str(src_dir)},
    )
    assert proc.returncode == 0, proc.stderr
    assert "COLD-CONCURRENT-OK" in proc.stdout


def test_service_batch_under_contention(mem_cache):
    """Two services over one cache, batching concurrently."""
    svc = CompileService(mem_cache, max_workers=4)
    reference = {
        n: svc.compile(CompileRequest(load(n), extensions=EXTS)).c_source
        for n in CORPUS
    }
    requests = [
        CompileRequest(load(n), extensions=EXTS, filename=n) for n in CORPUS
    ] * 4

    def run_batch(_):
        return svc.compile_batch(requests, max_workers=4)

    with ThreadPoolExecutor(max_workers=2) as pool:
        batches = list(pool.map(run_batch, range(2)))
    for responses in batches:
        for resp in responses:
            assert resp.ok, resp.errors
            assert resp.c_source == reference[resp.request.filename]
