"""Persistent artifact store: roundtrip, corruption, env toggles."""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.api import module_registry
from repro.driver import Translator
from repro.lexing.scanner import ContextAwareScanner
from repro.parsing.parser import Parser
from repro.programs import load
from repro.service import ArtifactStore, TranslatorCache, syntax_fingerprint
from repro.service.artifacts import default_cache_dir

FIG1 = load("fig1")


def _host_modules():
    reg = module_registry()
    return [reg["cminus"], reg["tuples"]]


def _cold_parser():
    modules = _host_modules()
    t = Translator(list(modules))
    return modules, t


class TestRoundtrip:
    def test_tables_and_dfa_roundtrip(self, disk_store):
        modules, t = _cold_parser()
        fp = syntax_fingerprint(modules)
        assert disk_store.save(fp, t.parser.tables, t.parser.scanner.dfa)

        restored = disk_store.load(fp, t.grammar)
        assert restored is not None
        tables, dfa, cdfa, ct = restored
        assert tables.action == t.parser.tables.action
        assert tables.goto == t.parser.tables.goto
        assert tables.automaton is None
        assert dfa.accepts == t.parser.scanner.dfa.accepts
        assert dfa.start == t.parser.scanner.dfa.start
        key = lambda edge: (edge[0].intervals, edge[1])
        assert [sorted(row, key=key) for row in dfa.transitions] == [
            sorted(row, key=key) for row in t.parser.scanner.dfa.transitions
        ]
        # Saved without the compiled payloads -> restored without them.
        assert cdfa is None and ct is None

    def test_compiled_tables_roundtrip(self, disk_store):
        modules, t = _cold_parser()
        fp = syntax_fingerprint(modules)
        assert disk_store.save(
            fp,
            t.parser.tables,
            t.parser.scanner.dfa,
            t.parser.scanner.compiled,
            t.parser.compiled,
        )
        restored = disk_store.load(fp, t.grammar)
        assert restored is not None
        _tables, _dfa, cdfa, ct = restored
        orig_cdfa = t.parser.scanner.compiled
        assert cdfa.universe.names == orig_cdfa.universe.names
        assert cdfa.trans == orig_cdfa.trans
        assert cdfa.accept_masks == orig_cdfa.accept_masks
        assert cdfa.classmap == orig_cdfa.classmap
        assert cdfa.layout_mask == orig_cdfa.layout_mask
        orig_ct = t.parser.compiled
        assert ct.action == orig_ct.action
        assert ct.goto == orig_ct.goto
        assert ct.nonterms == orig_ct.nonterms
        assert ct.valid_masks == orig_ct.valid_masks

    def test_restored_parser_parses_identically(self, disk_store):
        modules, t = _cold_parser()
        fp = syntax_fingerprint(modules)
        disk_store.save(
            fp,
            t.parser.tables,
            t.parser.scanner.dfa,
            t.parser.scanner.compiled,
            t.parser.compiled,
        )
        tables, dfa, cdfa, ct = disk_store.load(fp, t.grammar)
        parser = Parser(
            t.grammar,
            tables=tables,
            scanner=ContextAwareScanner(
                t.grammar.terminal_set, dfa=dfa, compiled=cdfa
            ),
            compiled=ct,
        )
        src = "int main() { int x; x = 1 + 2 * 3; return x; }"
        assert parser.parse(src) == t.parser.parse(src)

    def test_warm_cache_compiles_identically(self, disk_store):
        cold = TranslatorCache(artifacts=disk_store).get(["matrix"])
        warm_cache = TranslatorCache(artifacts=disk_store)
        warm = warm_cache.get(["matrix"])
        assert warm_cache.stats().artifact_hits == 1
        assert warm.compile(FIG1).c_source == cold.compile(FIG1).c_source


class TestCorruption:
    def _entry(self, disk_store) -> Path:
        TranslatorCache(artifacts=disk_store).get([])
        files = list(disk_store.root.rglob("*.pkl"))
        assert len(files) == 1
        return files[0]

    def test_truncated_entry_discarded_and_rebuilt(self, disk_store):
        path = self._entry(disk_store)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        cache = TranslatorCache(artifacts=disk_store)
        t = cache.get([])  # must rebuild, not raise
        assert t.compile("int main() { return 0; }").ok
        assert cache.stats().artifact_misses == 1
        # The rebuild replaced the corrupt entry with a healthy one.
        healed = TranslatorCache(artifacts=disk_store)
        healed.get([])
        assert healed.stats().artifact_hits == 1

    def test_garbage_entry_discarded(self, disk_store):
        path = self._entry(disk_store)
        path.write_bytes(b"not a pickle at all")
        cache = TranslatorCache(artifacts=disk_store)
        assert cache.get([]) is not None
        assert cache.stats().artifact_misses == 1  # garbage did not load

    def test_fingerprint_echo_mismatch_discarded(self, disk_store):
        path = self._entry(disk_store)
        payload = pickle.loads(path.read_bytes())
        payload["fingerprint"] = "0" * 64
        path.write_bytes(pickle.dumps(payload))
        cache = TranslatorCache(artifacts=disk_store)
        assert cache.get([]) is not None
        assert cache.stats().artifact_misses == 1

    def test_wrong_pickled_shape_discarded(self, disk_store):
        path = self._entry(disk_store)
        path.write_bytes(pickle.dumps({"magic": "repro-artifact"}))
        cache = TranslatorCache(artifacts=disk_store)
        assert cache.get([]) is not None
        assert cache.stats().artifact_misses == 1


class TestEnvToggles:
    def test_cache_dir_off_disables_persistence(self, monkeypatch):
        for off in ("off", "OFF", "0", "none", "disabled"):
            monkeypatch.setenv("REPRO_CACHE_DIR", off)
            assert default_cache_dir() is None
            assert not ArtifactStore.from_env().enabled

    def test_cache_dir_env_sets_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        store = ArtifactStore.from_env()
        assert store.root == tmp_path / "c"
        TranslatorCache(artifacts=store).get([])
        assert list((tmp_path / "c").rglob("*.pkl"))

    def test_xdg_cache_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro"

    def test_disabled_store_never_writes(self, tmp_path):
        store = ArtifactStore(None)
        modules, t = _cold_parser()
        assert not store.save("x" * 64, t.parser.tables, t.parser.scanner.dfa)
        assert store.load("x" * 64, t.grammar) is None

    def test_unwritable_root_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where a directory must go")
        store = ArtifactStore(blocker)
        modules, t = _cold_parser()
        assert not store.save(syntax_fingerprint(modules), t.parser.tables,
                              t.parser.scanner.dfa)


class TestVersioning:
    def test_version_bump_misses_old_artifact(self, disk_store, monkeypatch):
        import repro

        modules, _ = _cold_parser()
        cache = TranslatorCache(artifacts=disk_store)
        cache.get([])
        assert cache.stats().artifact_misses == 1

        monkeypatch.setattr(repro, "__version__", "999.0.0")
        bumped = TranslatorCache(artifacts=disk_store)
        bumped.get([])
        # Different fingerprint -> a fresh build and a second on-disk entry.
        assert bumped.stats().artifact_misses == 1
        assert len(list(disk_store.root.rglob("*.pkl"))) == 2
