"""CompileService: staged compiles, batch parity, stats, error isolation."""

from __future__ import annotations

import pytest

from repro.api import make_translator
from repro.programs import PROGRAMS, load
from repro.service import CompileRequest, CompileService

EXTS = ("matrix", "transform")
CORPUS = sorted(PROGRAMS)  # fig1, fig4, fig8, fig9, mandelbrot


@pytest.fixture()
def service(mem_cache) -> CompileService:
    return CompileService(mem_cache, max_workers=4)


def corpus_requests() -> list[CompileRequest]:
    return [
        CompileRequest(load(name), extensions=EXTS, filename=name)
        for name in CORPUS
    ]


class TestSingleCompile:
    def test_ok_response_carries_everything(self, service):
        resp = service.compile(CompileRequest(load("fig1"), extensions=EXTS))
        assert resp.ok
        assert resp.c_source and "int main" in resp.c_source
        assert resp.result is not None and resp.result.ok
        assert resp.timings.parse > 0
        assert resp.timings.total >= resp.timings.parse

    def test_semantic_errors_reported_not_raised(self, service):
        resp = service.compile(
            CompileRequest("int main() { return nope; }", extensions=EXTS)
        )
        assert not resp.ok
        assert any("undeclared identifier" in e for e in resp.errors)
        assert resp.c_source is None

    def test_syntax_errors_reported_not_raised(self, service):
        resp = service.compile(
            CompileRequest("int main() { return + ; }", extensions=EXTS)
        )
        assert not resp.ok
        assert "expected one of" in resp.errors[0]
        assert resp.timings.parse > 0 and resp.timings.decorate == 0.0

    def test_scan_errors_reported_not_raised(self, service):
        resp = service.compile(CompileRequest("int main( {", extensions=EXTS))
        assert not resp.ok
        assert "no valid token" in resp.errors[0]

    def test_unknown_extension_reported_not_raised(self, service):
        resp = service.compile(CompileRequest("int main(){}", extensions=("zap",)))
        assert not resp.ok
        assert "unknown extension" in resp.errors[0]

    def test_check_only_skips_lowering(self, service):
        resp = service.compile(
            CompileRequest(load("fig1"), extensions=EXTS, check_only=True)
        )
        assert resp.ok
        assert resp.c_source is None
        assert resp.timings.lower == 0.0
        assert resp.timings.emit == 0.0


class TestBatch:
    def test_batch_matches_sequential_compile_byte_for_byte(self, service):
        """Acceptance: pooled batch output == one-shot sequential output."""
        reference = {
            name: make_translator(list(EXTS), fresh=True).compile(load(name)).c_source
            for name in CORPUS
        }
        for workers in (1, 2, 4):
            responses = service.compile_batch(corpus_requests(), max_workers=workers)
            assert [r.request.filename for r in responses] == CORPUS
            for resp in responses:
                assert resp.ok, resp.errors
                assert resp.c_source == reference[resp.request.filename]

    def test_one_bad_program_does_not_poison_the_batch(self, service):
        requests = corpus_requests()
        requests.insert(2, CompileRequest("int main() { return nope; }",
                                          extensions=EXTS, filename="bad"))
        responses = service.compile_batch(requests)
        expect = [True] * len(requests)
        expect[2] = False
        assert [r.ok for r in responses] == expect

    def test_batch_reuses_one_translator(self, service):
        service.compile_batch(corpus_requests())
        stats = service.stats()
        assert stats.translator_misses == 1
        assert stats.translator_hits == len(CORPUS) - 1


class TestStats:
    def test_counters_accumulate(self, service):
        service.compile_batch(corpus_requests(), max_workers=2)
        service.compile(CompileRequest("int main() { return nope; }",
                                       extensions=EXTS))
        stats = service.stats()
        assert stats.requests == len(CORPUS) + 1
        assert stats.failures == 1
        assert stats.batches == 1
        assert stats.parse_s > 0
        assert stats.decorate_s > 0
        assert 0 < stats.hit_rate < 1
        pretty = stats.pretty()
        assert "hit rate" in pretty and "requests" in pretty

    def test_reset(self, service):
        service.compile(CompileRequest(load("fig1"), extensions=EXTS))
        service.reset_stats()
        stats = service.stats()
        assert stats.requests == 0 and stats.translator_misses == 0
