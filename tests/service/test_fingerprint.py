"""Fingerprint canonicality and invalidation (satellite: cache invalidation)."""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro
from repro.api import module_registry
from repro.cminus.env import Optimizations
from repro.grammar.cfg import GrammarSpec
from repro.service import syntax_fingerprint, translator_fingerprint


@pytest.fixture()
def host_modules():
    reg = module_registry()
    return [reg["cminus"], reg["tuples"]]


def test_fingerprint_is_stable(host_modules):
    a = syntax_fingerprint(host_modules)
    b = syntax_fingerprint(host_modules)
    assert a == b
    assert len(a) == 64  # sha256 hex


def test_extension_set_changes_fingerprint(host_modules):
    reg = module_registry()
    with_matrix = host_modules + [reg["matrix"]]
    assert syntax_fingerprint(host_modules) != syntax_fingerprint(with_matrix)


def test_added_production_changes_fingerprint(host_modules):
    host = host_modules[0]
    spec = GrammarSpec(
        name=host.grammar.name,
        start=host.grammar.start,
        terminals=host.grammar.terminals,
        raw_productions=list(host.grammar.raw_productions),
    )
    spec.production("Expr ::= Expr PlusOp Expr", name="bogus_add")
    grown = [replace(host, grammar=spec)] + host_modules[1:]
    assert syntax_fingerprint(host_modules) != syntax_fingerprint(grown)


def test_version_bump_changes_fingerprint(host_modules, monkeypatch):
    before = syntax_fingerprint(host_modules)
    monkeypatch.setattr(repro, "__version__", "999.0.0")
    assert syntax_fingerprint(host_modules) != before


def test_options_affect_translator_key_not_syntax_key(host_modules):
    opt_a = Optimizations()
    opt_b = Optimizations(parallelize=False)
    syn = syntax_fingerprint(host_modules)
    assert syn == syntax_fingerprint(host_modules)
    assert translator_fingerprint(host_modules, opt_a, 4) != translator_fingerprint(
        host_modules, opt_b, 4
    )


def test_nthreads_affects_translator_key(host_modules):
    assert translator_fingerprint(host_modules, None, 4) != translator_fingerprint(
        host_modules, None, 8
    )


def test_equal_valued_options_share_a_key(host_modules):
    assert translator_fingerprint(
        host_modules, Optimizations(), 4
    ) == translator_fingerprint(host_modules, Optimizations(), 4)
