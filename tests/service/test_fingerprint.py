"""Fingerprint canonicality and invalidation (satellite: cache invalidation)."""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro
from repro.api import module_registry
from repro.cminus.env import Optimizations
from repro.grammar.cfg import GrammarSpec
from repro.service import syntax_fingerprint, translator_fingerprint


@pytest.fixture()
def host_modules():
    reg = module_registry()
    return [reg["cminus"], reg["tuples"]]


def test_fingerprint_is_stable(host_modules):
    a = syntax_fingerprint(host_modules)
    b = syntax_fingerprint(host_modules)
    assert a == b
    assert len(a) == 64  # sha256 hex


def test_extension_set_changes_fingerprint(host_modules):
    reg = module_registry()
    with_matrix = host_modules + [reg["matrix"]]
    assert syntax_fingerprint(host_modules) != syntax_fingerprint(with_matrix)


def test_added_production_changes_fingerprint(host_modules):
    host = host_modules[0]
    spec = GrammarSpec(
        name=host.grammar.name,
        start=host.grammar.start,
        terminals=host.grammar.terminals,
        raw_productions=list(host.grammar.raw_productions),
    )
    spec.production("Expr ::= Expr PlusOp Expr", name="bogus_add")
    grown = [replace(host, grammar=spec)] + host_modules[1:]
    assert syntax_fingerprint(host_modules) != syntax_fingerprint(grown)


def test_version_bump_changes_fingerprint(host_modules, monkeypatch):
    before = syntax_fingerprint(host_modules)
    monkeypatch.setattr(repro, "__version__", "999.0.0")
    assert syntax_fingerprint(host_modules) != before


def test_options_affect_translator_key_not_syntax_key(host_modules):
    opt_a = Optimizations()
    opt_b = Optimizations(parallelize=False)
    syn = syntax_fingerprint(host_modules)
    assert syn == syntax_fingerprint(host_modules)
    assert translator_fingerprint(host_modules, opt_a, 4) != translator_fingerprint(
        host_modules, opt_b, 4
    )


def test_nthreads_affects_translator_key(host_modules):
    assert translator_fingerprint(host_modules, None, 4) != translator_fingerprint(
        host_modules, None, 8
    )


def test_equal_valued_options_share_a_key(host_modules):
    assert translator_fingerprint(
        host_modules, Optimizations(), 4
    ) == translator_fingerprint(host_modules, Optimizations(), 4)


class TestOptLevelCacheHazard:
    """S28 regression: a warm -O0 artifact must never satisfy a -O2
    request (or vice versa) — the optimization level is part of the
    translator configuration, so it must be part of the key."""

    def test_opt_level_changes_translator_key(self, host_modules):
        keys = {
            translator_fingerprint(
                host_modules, Optimizations(opt_level=lvl), 4)
            for lvl in (0, 1, 2)
        }
        assert len(keys) == 3

    def test_same_opt_level_shares_a_key(self, host_modules):
        assert translator_fingerprint(
            host_modules, Optimizations(opt_level=0), 4
        ) == translator_fingerprint(host_modules, Optimizations(opt_level=0), 4)

    def test_warm_O0_cache_misses_for_O2(self, mem_cache):
        t0 = mem_cache.get(["matrix"], options=Optimizations(opt_level=0))
        warm = mem_cache.stats()
        t2 = mem_cache.get(["matrix"], options=Optimizations(opt_level=2))
        after = mem_cache.stats()
        assert t2 is not t0
        assert after.translator_misses == warm.translator_misses + 1
        assert after.translator_hits == warm.translator_hits
        # and the repeat -O2 request *is* served warm
        assert mem_cache.get(["matrix"],
                             options=Optimizations(opt_level=2)) is t2
        assert mem_cache.stats().translator_hits == after.translator_hits + 1

    def test_service_executions_respect_opt_level(self, mem_cache):
        """End to end through CompileService: the same source compiled
        at -O0 then -O2 yields differently-optimized bytecode."""
        from repro.cexec.bytecode import BytecodeProgram
        from repro.service import CompileRequest, CompileService

        src = ("int f(int a, int b) { return a * b + a * b; }\n"
               "int main() { printInt(f(3, 4)); return 0; }\n")
        service = CompileService(mem_cache)
        progs = {}
        for lvl in (0, 2):
            resp = service.compile(CompileRequest(
                src, extensions=("matrix",),
                options=Optimizations(opt_level=lvl)))
            assert resp.ok, resp.errors
            progs[lvl] = BytecodeProgram(resp.result.lowered,
                                         resp.result.ctx)
        o0 = progs[0].code_for("f").dis()
        o2 = progs[2].code_for("f").dis()
        assert o0.count("*") == 2  # a*b computed twice at -O0
        assert o2.count("*") == 1  # CSE'd at -O2
