"""TranslatorCache behaviour: sharing, keying, LRU, in-flight dedup."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cminus.env import Optimizations
from repro.service import ArtifactStore, TranslatorCache


def test_same_config_shares_one_translator(mem_cache):
    a = mem_cache.get(["matrix"])
    b = mem_cache.get(["matrix"])
    assert a is b
    stats = mem_cache.stats()
    assert stats.translator_hits == 1
    assert stats.translator_misses == 1


def test_equal_valued_options_hit(mem_cache):
    a = mem_cache.get(["matrix"], options=Optimizations(parallelize=False))
    b = mem_cache.get(["matrix"], options=Optimizations(parallelize=False))
    assert a is b


def test_distinct_configs_get_distinct_translators(mem_cache):
    base = mem_cache.get(["matrix"])
    assert mem_cache.get(["matrix"], nthreads=8) is not base
    assert mem_cache.get(["matrix"], options=Optimizations(fuse_assignment=False)) is not base
    assert mem_cache.get([]) is not base
    assert mem_cache.stats().translator_misses == 4


def test_cached_translator_is_isolated_from_caller_mutation(mem_cache):
    opts = Optimizations(parallelize=False)
    t = mem_cache.get(["matrix"], options=opts)
    opts.parallelize = True  # caller mutates their object afterwards
    assert t.options.parallelize is False


def test_extension_order_and_duplicates_normalize(mem_cache):
    # Dependency resolution orders modules host-first deterministically, so
    # a duplicated extension name maps to the same fingerprint.
    a = mem_cache.get(["matrix"])
    b = mem_cache.get(["matrix", "matrix"])
    assert a is b


def test_unknown_extension_raises(mem_cache):
    with pytest.raises(ValueError, match="unknown extension"):
        mem_cache.get(["nope"])
    # A failed build must not wedge the in-flight table.
    with pytest.raises(ValueError, match="unknown extension"):
        mem_cache.get(["nope"])


def test_lru_eviction():
    cache = TranslatorCache(maxsize=1, artifacts=ArtifactStore(None))
    a = cache.get([])
    cache.get(["matrix"])  # evicts the host-only translator
    assert cache.stats().evictions == 1
    assert len(cache) == 1
    b = cache.get([])  # rebuilt, not the evicted object
    assert b is not a
    assert cache.stats().translator_misses == 3


def test_concurrent_cold_gets_build_once(mem_cache):
    barrier = threading.Barrier(8)

    def grab():
        barrier.wait()
        return mem_cache.get(["matrix"])

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(lambda _: grab(), range(8)))
    assert all(t is results[0] for t in results)
    assert mem_cache.stats().translator_misses == 1
    assert mem_cache.stats().translator_hits == 7


def test_clear_forces_rebuild(mem_cache):
    a = mem_cache.get([])
    mem_cache.clear()
    assert mem_cache.get([]) is not a
