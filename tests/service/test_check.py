"""CompileService.check: analysis reports, the fingerprint-keyed LRU,
and batch parity."""

from __future__ import annotations

import pytest

from repro.service import CompileRequest, CompileService

CLEAN = """int main() {
    Matrix float <1> a = init(Matrix float <1>, 8);
    a = with ([0] <= [i] < [8]) genarray([8], 1.0);
    writeMatrix("a.data", a);
    return 0;
}
"""

OOB = """int main() {
    Matrix float <2> a = init(Matrix float <2>, 3, 4);
    a[10, 0] = 1.0;
    writeMatrix("a.data", a);
    return 0;
}
"""


@pytest.fixture()
def service(mem_cache) -> CompileService:
    return CompileService(mem_cache, max_workers=4)


def test_check_attaches_report(service):
    resp = service.check(CompileRequest(OOB))
    assert resp.ok  # compile succeeded; the *analysis* found the bug
    assert resp.report is not None
    assert resp.report.error_count >= 1
    assert any("out of bounds" in d.message for d in resp.report.diagnostics)


def test_clean_report_is_ok(service):
    resp = service.check(CompileRequest(CLEAN))
    assert resp.report.ok
    assert resp.report.diagnostics == ()
    assert any(v.safe for v in resp.report.parallel)


def test_repeat_check_hits_the_analysis_cache(service):
    first = service.check(CompileRequest(CLEAN))
    assert service.stats().analyses == 1
    assert service.stats().analysis_cache_hits == 0
    second = service.check(CompileRequest(CLEAN))
    assert service.stats().analyses == 1
    assert service.stats().analysis_cache_hits == 1
    assert second.report is first.report  # frozen, shared


def test_edited_source_misses(service):
    service.check(CompileRequest(CLEAN))
    service.check(CompileRequest(CLEAN.replace("1.0", "2.0")))
    assert service.stats().analyses == 2
    assert service.stats().analysis_cache_hits == 0


def test_different_extensions_miss(service):
    service.check(CompileRequest(CLEAN, extensions=("matrix",)))
    service.check(CompileRequest(CLEAN, extensions=("matrix", "transform")))
    assert service.stats().analyses == 2
    assert service.stats().analysis_cache_hits == 0


def test_check_only_requests_still_analyze(service):
    resp = service.check(CompileRequest(OOB, check_only=True))
    assert resp.report is not None and resp.report.error_count >= 1


def test_compile_errors_short_circuit(service):
    resp = service.check(CompileRequest("int main() { return nope; }"))
    assert not resp.ok
    assert resp.report is None


def test_lru_evicts_oldest(mem_cache):
    service = CompileService(mem_cache, analysis_cache_size=1)
    service.check(CompileRequest(CLEAN))
    service.check(CompileRequest(OOB))       # evicts CLEAN
    service.check(CompileRequest(CLEAN))     # must recompute
    assert service.stats().analyses == 3
    assert service.stats().analysis_cache_hits == 0


def test_check_batch_preserves_order(service):
    responses = service.check_batch(
        [CompileRequest(CLEAN, filename="a"),
         CompileRequest(OOB, filename="b"),
         CompileRequest(CLEAN, filename="a")],
        max_workers=1)
    assert [r.request.filename for r in responses] == ["a", "b", "a"]
    assert responses[0].report.ok
    assert not responses[1].report.ok
    # the repeated request shares the first one's cached report
    assert responses[2].report is responses[0].report
    assert service.stats().analysis_cache_hits == 1
