"""Service-layer fixtures: isolated caches (no shared process state)."""

from __future__ import annotations

import pytest

from repro.service import ArtifactStore, TranslatorCache


@pytest.fixture()
def disk_store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "artifacts")


@pytest.fixture()
def mem_cache() -> TranslatorCache:
    """A translator cache with persistence disabled."""
    return TranslatorCache(artifacts=ArtifactStore(None))


@pytest.fixture()
def disk_cache(disk_store) -> TranslatorCache:
    return TranslatorCache(artifacts=disk_store)
