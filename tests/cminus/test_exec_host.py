"""Host-language execution semantics (interpreter backend, C semantics)."""

import pytest


def ret(xc_host, src: str) -> int:
    rc, _outs, _interp = xc_host.run(src)
    return rc


def printed(xc_host, src: str) -> list[str]:
    _rc, _outs, interp = xc_host.run(src)
    return interp.stdout


class TestArithmetic:
    def test_basic(self, xc_host):
        assert ret(xc_host, "int main() { return 2 + 3 * 4; }") == 14

    def test_int_division_truncates_toward_zero(self, xc_host):
        assert ret(xc_host, "int main() { return 7 / 2; }") == 3
        assert ret(xc_host, "int main() { return -7 / 2; }") == -3
        assert ret(xc_host, "int main() { return 7 / -2; }") == -3

    def test_c_modulo_sign(self, xc_host):
        assert ret(xc_host, "int main() { return -7 % 3; }") == -1
        assert ret(xc_host, "int main() { return 7 % -3; }") == 1

    def test_float_to_int_cast_truncates(self, xc_host):
        assert ret(xc_host, "int main() { return (int) 2.9; }") == 2

    def test_mixed_arith_promotes(self, xc_host):
        out = printed(xc_host, "int main() { printFloat(1 / 2.0); return 0; }")
        assert out == ["0.5"]

    def test_unary_ops(self, xc_host):
        assert ret(xc_host, "int main() { return -(-5); }") == 5
        assert ret(xc_host, "int main() { if (!false) return 1; return 0; }") == 1

    def test_compound_assign(self, xc_host):
        assert ret(xc_host, "int main() { int x = 10; x += 5; x -= 3; return x; }") == 12


class TestControlFlow:
    def test_if_else_chain(self, xc_host):
        src = """
        int classify(int x) {
            if (x < 0) return -1;
            else if (x == 0) return 0;
            else return 1;
        }
        int main() { return classify(-5) + classify(0) * 10 + classify(7) * 100; }
        """
        assert ret(xc_host, src) == 99

    def test_while_with_break_continue(self, xc_host):
        src = """
        int main() {
            int total = 0;
            int i = 0;
            while (true) {
                i = i + 1;
                if (i > 10) break;
                if (i % 2 == 0) continue;
                total = total + i;   // 1+3+5+7+9
            }
            return total;
        }
        """
        assert ret(xc_host, src) == 25

    def test_nested_loops(self, xc_host):
        src = """
        int main() {
            int count = 0;
            for (int i = 0; i < 4; i = i + 1)
                for (int j = 0; j < 4; j = j + 1)
                    if (i < j) count = count + 1;
            return count;
        }
        """
        assert ret(xc_host, src) == 6

    def test_do_while_runs_at_least_once(self, xc_host):
        assert ret(xc_host,
                   "int main() { int x = 0; do x = 9; while (false); return x; }"
                   ) == 9

    def test_do_while_break_continue(self, xc_host):
        src = """
        int main() {
            int i = 0;
            int total = 0;
            do {
                total = total + i;
                i = i + 1;
                if (i == 4) continue;
                if (i > 6) break;
            } while (i < 100);
            return total;   // 0+1+...+6
        }
        """
        assert ret(xc_host, src) == 21

    def test_short_circuit_and(self, xc_host):
        # the second operand would divide by zero if evaluated
        src = """
        int boom(int x) { return 1 / x; }
        int main() {
            int z = 0;
            if (z != 0 && boom(z) > 0) return 1;
            return 42;
        }
        """
        assert ret(xc_host, src) == 42

    def test_short_circuit_or(self, xc_host):
        src = """
        int boom(int x) { return 1 / x; }
        int main() {
            int z = 0;
            if (z == 0 || boom(z) > 0) return 42;
            return 1;
        }
        """
        assert ret(xc_host, src) == 42


class TestFunctions:
    def test_recursion(self, xc_host):
        src = """
        int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
        int main() { return fib(12); }
        """
        assert ret(xc_host, src) == 144

    def test_mutual_recursion(self, xc_host):
        src = """
        int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        int odd(int n) { if (n == 0) return 0; return even(n - 1); }
        int main() { return even(10) * 10 + odd(7); }
        """
        assert ret(xc_host, src) == 11

    def test_params_by_value(self, xc_host):
        src = """
        void mutate(int x) { x = 99; }
        int main() { int x = 5; mutate(x); return x; }
        """
        assert ret(xc_host, src) == 5

    def test_void_function_side_effect_via_print(self, xc_host):
        src = """
        void report(int x) { printInt(x * 2); }
        int main() { report(21); return 0; }
        """
        assert printed(xc_host, src) == ["42"]


class TestTuples:
    def test_destructuring(self, xc_host):
        src = """
        (int, int) divmod(int a, int b) { return (a / b, a % b); }
        int main() {
            int q = 0;
            int r = 0;
            (q, r) = divmod(17, 5);
            return q * 10 + r;
        }
        """
        assert ret(xc_host, src) == 32

    def test_tuple_through_variable(self, xc_host):
        src = """
        int main() {
            (int, float) t = (3, 2.5);
            int a = 0;
            float b = 0.0;
            (a, b) = t;
            return a;
        }
        """
        assert ret(xc_host, src) == 3

    def test_three_way_tuple(self, xc_host):
        src = """
        (int, int, int) three() { return (1, 2, 3); }
        int main() {
            int a = 0; int b = 0; int c = 0;
            (a, b, c) = three();
            return a * 100 + b * 10 + c;
        }
        """
        assert ret(xc_host, src) == 123


class TestScoping:
    def test_block_shadowing(self, xc_host):
        src = """
        int main() {
            int x = 1;
            { int x = 2; x = x + 1; }
            return x;
        }
        """
        assert ret(xc_host, src) == 1

    def test_for_scope_reuse(self, xc_host):
        src = """
        int main() {
            int total = 0;
            for (int i = 0; i < 3; i = i + 1) total = total + i;
            for (int i = 10; i < 12; i = i + 1) total = total + i;
            return total;
        }
        """
        assert ret(xc_host, src) == 24


@pytest.mark.usefixtures("xc_host")
class TestNativeAgreement:
    """The interpreter and the gcc backend must agree on host programs."""

    PROGRAMS = [
        "int main() { return 7 / 2 + -7 / 2 + 100; }",
        "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"
        " int main() { return fib(10); }",
        "int main() { int t = 0; for (int i = 0; i < 10; i = i + 1)"
        " { if (i % 3 == 0) continue; t = t + i; } return t; }",
        "(int, int) p() { return (6, 7); } int main() { int a = 0; int b = 0;"
        " (a, b) = p(); return a * b; }",
    ]

    @pytest.mark.parametrize("src", PROGRAMS, ids=["div", "fib", "loop", "tuple"])
    def test_backends_agree(self, xc_host, src):
        from tests.conftest import requires_gcc  # noqa: F401
        from repro.cexec import gcc_available

        interp_rc = ret(xc_host, src)
        if gcc_available():
            from repro.cexec import compile_and_run

            native = compile_and_run(src, [], check=False)
            assert native.returncode == interp_rc
        else:
            pytest.skip("gcc not available")
