"""CMINUS concrete syntax: what parses and what doesn't."""

import pytest

from repro.lexing import ScanError
from repro.parsing import ParseError


def parses(tr, src: str) -> bool:
    tr.parse(src)
    return True


GOOD = [
    "int main() { return 0; }",
    "void f() { } int main() { return 0; }",
    "int main() { int x = 1; float y = 2.5; bool b = true; return x; }",
    "int main() { int x = 1 + 2 * 3 - 4 / 5 % 6; return x; }",
    "int main() { bool b = 1 < 2 && 3 >= 4 || !(5 == 6); return 0; }",
    "int main() { if (true) return 1; else return 0; }",
    "int main() { if (true) if (false) return 1; else return 2; return 0; }",
    "int main() { while (1 < 2) break; return 0; }",
    "int main() { for (int i = 0; i < 10; i = i + 1) continue; return 0; }",
    "int main() { int i = 0; for (i = 1; i < 3; i = i + 1) { } return i; }",
    "int f(int a, float b) { return a; } int main() { return f(1, 2.0); }",
    "int main() { int x = 0; x += 2; x -= 1; return x; }",
    "int main() { float f = (float) 3; int i = (int) 2.5; return i; }",
    "int main(int argc, char ** argv) { return argc; }",
    'int main() { int x = 1; /* block\ncomment */ return x; // line\n}',
    "int main() { { int x = 1; } { int x = 2; } return 0; }",
    # host-packaged syntax (semantics may error later; syntax parses)
    "int main() { (int, float) t = (1, 2.0); return 0; }",
    "int main() { float x = m[1, 0:4, :, end - 1]; return 0; }",
    "int main() { int r = (0 :: 9); return 0; }",
    "int main() { float y = a .* b; return 0; }",
]

BAD = [
    "",                                      # empty program is not a TU? (it is; main check is semantic)
    "int main() { return 0 }",               # missing semicolon
    "int main() { int 3x = 1; return 0; }",  # bad identifier
    "int main() { return (1 + ; }",          # broken expression
    "int main() { if true return 1; }",      # missing parens
    "int main() { for (int i = 0; i < 10) return 0; }",  # missing clause
    "int main() { int x = 1; } }",           # extra brace
    "int x;",                                # no globals in CMINUS
    "int main() { x ==; }",                  # garbage statement
    "int main() { 'c' }",                    # no char literals in CMINUS
]


@pytest.mark.parametrize("src", GOOD, ids=[f"good{i}" for i in range(len(GOOD))])
def test_accepts(host_translator, src):
    if src == "":
        host_translator.parse(src)  # empty TU parses; sema flags missing main
        return
    assert parses(host_translator, src)


@pytest.mark.parametrize("src", [s for s in BAD if s], ids=[f"bad{i}" for i in range(1, len(BAD))])
def test_rejects(host_translator, src):
    with pytest.raises((ParseError, ScanError)):
        host_translator.parse(src)


class TestPrecedence:
    def find_binop(self, node, op):
        return [n for n in node.walk() if n.prod == "binop" and n.children[0] == op]

    def test_mul_binds_tighter(self, host_translator):
        root = host_translator.parse("int main() { int x = 1 + 2 * 3; return x; }")
        adds = self.find_binop(root, "+")
        assert adds and adds[0].children[2].prod == "binop"  # rhs is the *

    def test_comparison_of_sums(self, host_translator):
        root = host_translator.parse("int main() { bool b = 1 + 2 < 3 + 4; return 0; }")
        lts = self.find_binop(root, "<")
        assert lts and lts[0].children[1].prod == "binop"

    def test_unary_minus(self, host_translator):
        root = host_translator.parse("int main() { int x = -1 + 2; return x; }")
        adds = self.find_binop(root, "+")
        assert adds and adds[0].children[1].prod == "unop"

    def test_assignment_right_assoc(self, host_translator):
        root = host_translator.parse("int main() { int a = 0; int b = 0; a = b = 1; return a; }")
        assigns = [n for n in root.walk() if n.prod == "assign"]
        # a = (b = 1)
        outer = [a for a in assigns if a.children[0].children[0] == "a"][0]
        assert outer.children[1].prod == "assign"

    def test_dangling_else_binds_inner(self, host_translator):
        root = host_translator.parse(
            "int main() { if (true) if (false) return 1; else return 2; return 0; }"
        )
        # the else must belong to the inner if: outer is plain ifStmt
        if_elses = [n for n in root.walk() if n.prod == "ifElse"]
        if_plains = [n for n in root.walk() if n.prod == "ifStmt"]
        assert len(if_elses) == 1 and len(if_plains) == 1
        assert any(c is if_elses[0] for c in if_plains[0].walk())

    def test_range_expr_precedence(self, host_translator):
        # a+1 :: b*2 groups the arithmetic under the range
        root = host_translator.parse("int main() { int r = (1 + 1 :: 2 * 3); return 0; }")
        ranges = [n for n in root.walk() if n.prod == "rangeE"]
        assert ranges and ranges[0].children[0].prod == "binop"


class TestCommentsAndTokens:
    def test_keyword_prefix_identifiers(self, host_translator):
        host_translator.parse("int main() { int iffy = 1; int forx = 2; return iffy + forx; }")

    def test_float_forms(self, host_translator):
        host_translator.parse(
            "int main() { float a = 1.5; float b = 2.0e3; float c = 1e2; return 0; }"
        )

    def test_string_escapes(self, host_translator):
        root = host_translator.parse(r'int main() { printInt(0); return 0; }')
        assert root.prod == "root"

    def test_leading_zero_int_is_decimal(self, host_translator):
        # the paper's Fig 4 uses `01012000`; CMINUS reads it as decimal
        root = host_translator.parse("int main() { return 01012000; }")
        lits = [n for n in root.walk() if n.prod == "intLit"]
        assert lits[0].children[0] == 1012000
