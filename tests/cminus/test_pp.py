"""The C pretty-printer: output forms and the unlowered-node guards."""

import pytest

from repro.ag.tree import Node
from repro.cminus.grammar import mk
from repro.cminus.pp import (
    PPError,
    pp_expr,
    pp_expr_bare,
    pp_function,
    pp_prototype,
    pp_stmt,
    pp_type,
)


class TestExpressions:
    def test_literals(self):
        assert pp_expr(mk.intLit(42)) == "42"
        assert pp_expr(mk.floatLit(2.5)) == "2.5f"
        assert pp_expr(mk.boolLit(True)) == "1"
        assert pp_expr(mk.boolLit(False)) == "0"

    def test_string_escaping(self):
        out = pp_expr(mk.strLit('he said "hi"\n'))
        assert out == '"he said \\"hi\\"\\n"'

    def test_binop_parenthesized(self):
        e = mk.binop("+", mk.var("a"), mk.binop("*", mk.var("b"), mk.var("c")))
        assert pp_expr(e) == "(a + (b * c))"

    def test_bare_strips_outer_parens_only(self):
        e = mk.binop("<", mk.var("i"), mk.binop("+", mk.var("n"), mk.intLit(1)))
        assert pp_expr_bare(e) == "i < (n + 1)"

    def test_cast(self):
        assert pp_expr(mk.castE(mk.tFloat(), mk.var("x"))) == "((float) x)"

    def test_call(self):
        e = mk.call("f", mk.expr_list([mk.intLit(1), mk.var("y")]))
        assert pp_expr(e) == "f(1, y)"

    def test_tuple_literal_form(self):
        e = mk.call("__tuple_tup_i_f", mk.expr_list([mk.intLit(1), mk.floatLit(2.0)]))
        assert pp_expr(e) == "((tup_i_f){1, 2.0f})"

    def test_tuple_get_form(self):
        e = mk.call("__tget_1", mk.expr_list([mk.var("t")]))
        assert pp_expr(e) == "(t).f1"

    def test_unlowered_expr_rejected(self):
        with pytest.raises(PPError, match="unlowered"):
            pp_expr(mk.endE())
        with pytest.raises(PPError, match="unlowered"):
            pp_expr(mk.rangeE(mk.intLit(0), mk.intLit(3)))
        with pytest.raises(PPError, match="unlowered operator"):
            pp_expr(mk.binop(".*", mk.var("a"), mk.var("b")))


class TestTypes:
    def test_builtin_types(self):
        assert pp_type(mk.tInt()) == "int"
        assert pp_type(mk.tBool()) == "int"
        assert pp_type(mk.tPtr(mk.tChar())) == "char *"
        assert pp_type(mk.tRaw("rt_mat *")) == "rt_mat *"

    def test_unlowered_type_rejected(self):
        t = mk.tTuple(mk.type_list([mk.tInt(), mk.tFloat()]))
        with pytest.raises(PPError, match="unlowered type"):
            pp_type(t)


class TestStatements:
    def test_block_and_indent(self):
        s = mk.block(mk.stmt_list([
            mk.declInit(mk.tInt(), "x", mk.intLit(1)),
            mk.returnStmt(mk.var("x")),
        ]))
        out = pp_stmt(s)
        assert out.splitlines()[0] == "{"
        assert "    int x = 1;" in out
        assert "    return x;" in out
        assert out.splitlines()[-1] == "}"

    def test_seq_stmt_no_braces(self):
        s = mk.seqStmt(mk.stmt_list([
            mk.exprStmt(mk.assign(mk.var("a"), mk.intLit(1))),
            mk.exprStmt(mk.assign(mk.var("b"), mk.intLit(2))),
        ]))
        out = pp_stmt(s)
        assert "{" not in out
        assert out == "a = 1;\nb = 2;"

    def test_for_header_bare(self):
        s = Node("forStmt", [
            Node("forDecl", [mk.tRaw("long"), "i", mk.intLit(0)]),
            mk.binop("<", mk.var("i"), mk.var("n")),
            mk.assign(mk.var("i"), mk.binop("+", mk.var("i"), mk.intLit(1))),
            mk.block(mk.stmt_list([])),
        ])
        out = pp_stmt(s)
        assert "for (long i = 0; i < n; i = i + 1)" in out

    def test_if_else(self):
        s = mk.ifElse(mk.var("c"), mk.returnStmt(mk.intLit(1)),
                      mk.returnStmt(mk.intLit(0)))
        out = pp_stmt(s)
        assert "if (c)" in out and "else" in out

    def test_pragma_rawstmt(self):
        assert pp_stmt(mk.rawStmt("#pragma omp parallel for")) == \
            "#pragma omp parallel for"


class TestFunctions:
    def mk_func(self):
        return mk.funcDef(
            mk.tInt(), "f",
            mk.param_list([mk.param(mk.tInt(), "a"),
                           mk.param(mk.tFloat(), "b")]),
            mk.block(mk.stmt_list([mk.returnStmt(mk.var("a"))])),
        )

    def test_definition(self):
        out = pp_function(self.mk_func())
        assert out.startswith("int f(int a, float b)")

    def test_prototype(self):
        assert pp_prototype(self.mk_func()) == "int f(int, float);"

    def test_no_params_void(self):
        f = mk.funcDef(mk.tVoid(), "g", mk.param_list([]),
                       mk.block(mk.stmt_list([mk.returnVoid()])))
        assert "void g(void)" in pp_function(f)
