"""Host semantic analysis: errors CMINUS must report (and not report)."""

import pytest


def errors_of(xc_host, src):
    return xc_host.check(src)


def assert_error(xc_host, src, fragment):
    errs = errors_of(xc_host, src)
    assert any(fragment in e for e in errs), f"expected {fragment!r} in {errs}"


def assert_clean(xc_host, src):
    errs = errors_of(xc_host, src)
    assert errs == [], errs


class TestNamesAndScopes:
    def test_undeclared_identifier(self, xc_host):
        assert_error(xc_host, "int main() { return x; }", "undeclared identifier 'x'")

    def test_use_before_declaration_in_block(self, xc_host):
        assert_error(xc_host, "int main() { int y = x; int x = 1; return y; }",
                     "undeclared identifier 'x'")

    def test_redeclaration_same_scope(self, xc_host):
        assert_error(xc_host, "int main() { int x = 1; int x = 2; return x; }",
                     "redeclaration of 'x'")

    def test_shadowing_in_inner_scope_ok(self, xc_host):
        assert_clean(xc_host,
                     "int main() { int x = 1; { int x = 2; x = 3; } return x; }")

    def test_functions_mutually_visible(self, xc_host):
        assert_clean(xc_host, """
            int even(int n) { if (n == 0) return 1; return odd(n - 1); }
            int odd(int n) { if (n == 0) return 0; return even(n - 1); }
            int main() { return even(4); }
        """)

    def test_duplicate_function(self, xc_host):
        assert_error(xc_host,
                     "int f() { return 0; } int f() { return 1; } int main() { return 0; }",
                     "duplicate definition of function 'f'")

    def test_missing_main(self, xc_host):
        assert_error(xc_host, "int f() { return 0; }", "missing definition of function 'main'")

    def test_duplicate_parameter(self, xc_host):
        assert_error(xc_host, "int f(int a, int a) { return a; } int main() { return 0; }",
                     "duplicate parameter 'a'")

    def test_void_parameter(self, xc_host):
        assert_error(xc_host, "int f(void v) { return 0; } int main() { return 0; }",
                     "has void type")

    def test_void_variable(self, xc_host):
        assert_error(xc_host, "int main() { void v; return 0; }", "declared void")

    def test_loop_variable_scoped_to_loop(self, xc_host):
        assert_error(xc_host,
                     "int main() { for (int i = 0; i < 3; i = i + 1) { } return i; }",
                     "undeclared identifier 'i'")


class TestTypes:
    def test_int_float_coercion_ok(self, xc_host):
        assert_clean(xc_host, "int main() { float f = 1; int i = 2; f = i; return i; }")

    def test_assign_string_to_int(self, xc_host):
        errs = errors_of(xc_host, 'int main() { int x = 1; x = 1 == 2 && true; return x; }')
        assert errs == []  # bool->int fine

    def test_bad_modulo_operands(self, xc_host):
        assert_error(xc_host, "int main() { int x = 1 % 2.5; return x; }",
                     "invalid operands to '%'")

    def test_bool_modulo_coerces_like_c(self, xc_host):
        assert_clean(xc_host, "int main() { bool b = true; int x = b % true; return x; }")

    def test_condition_must_be_boolish(self, xc_host):
        assert_error(xc_host, "int main() { if (2.5) return 1; return 0; }",
                     "condition has type float")

    def test_return_type_mismatch(self, xc_host):
        assert_error(xc_host, "void f() { return 3; } int main() { return 0; }",
                     "return of type int from function returning void")

    def test_return_without_value(self, xc_host):
        assert_error(xc_host, "int f() { return; } int main() { return 0; }",
                     "return without value")

    def test_void_return_ok(self, xc_host):
        assert_clean(xc_host, "void f() { return; } int main() { f(); return 0; }")

    def test_cast_between_scalars_ok(self, xc_host):
        assert_clean(xc_host, "int main() { int i = (int) 2.5; float f = (float) i; return i; }")

    def test_arith_on_comparison_result(self, xc_host):
        # (a < b) + 1 : bool+int -> int, C-compatible
        assert_clean(xc_host, "int main() { int x = (1 < 2) + 1; return x; }")


class TestCalls:
    def test_wrong_arity(self, xc_host):
        assert_error(xc_host,
                     "int f(int a) { return a; } int main() { return f(1, 2); }",
                     "expects 1 arguments, got 2")

    def test_wrong_arg_type(self, xc_host):
        assert_error(xc_host,
                     "int f(int a) { return a; } int main() { (int, int) t = (1, 2); return f(t); }",
                     "argument 1 of 'f'")

    def test_call_undeclared(self, xc_host):
        assert_error(xc_host, "int main() { return g(1); }",
                     "call to undeclared function 'g'")

    def test_call_non_function(self, xc_host):
        assert_error(xc_host, "int main() { int g = 1; return g(1); }",
                     "'g' is not a function")

    def test_builtin_print(self, xc_host):
        assert_clean(xc_host, "int main() { printInt(3); printFloat(2.5); return 0; }")


class TestControlFlow:
    def test_break_outside_loop(self, xc_host):
        assert_error(xc_host, "int main() { break; return 0; }", "outside of a loop")

    def test_continue_outside_loop(self, xc_host):
        assert_error(xc_host, "int main() { continue; return 0; }", "outside of a loop")

    def test_break_in_if_inside_loop_ok(self, xc_host):
        assert_clean(xc_host,
                     "int main() { while (true) { if (true) break; } return 0; }")

    def test_break_in_function_called_from_loop(self, xc_host):
        # lexical, not dynamic: still an error in the callee
        assert_error(xc_host,
                     "void f() { break; } int main() { while (true) f(); return 0; }",
                     "outside of a loop")

    def test_statement_with_no_effect(self, xc_host):
        assert_error(xc_host, "int main() { 1 + 2; return 0; }", "no effect")


class TestHostPackagedSyntax:
    def test_end_outside_index(self, xc_host):
        assert_error(xc_host, "int main() { int x = end; return x; }",
                     "'end' used outside of a matrix index")

    def test_range_without_matrix_extension(self, xc_host):
        assert_error(xc_host, "int main() { int r = (1 :: 4); return 0; }",
                     "no extension provides '::'")

    def test_indexing_scalar(self, xc_host):
        assert_error(xc_host, "int main() { int x = 3; int y = x[0]; return y; }",
                     "is not indexable")

    def test_tuple_decl_assign(self, xc_host):
        assert_clean(xc_host, """
            (int, float) pair() { return (1, 2.5); }
            int main() { int a = 0; float b = 0.0; (a, b) = pair(); return a; }
        """)

    def test_tuple_arity_mismatch(self, xc_host):
        assert_error(xc_host, """
            (int, float) pair() { return (1, 2.5); }
            int main() { int a = 0; int b = 0; int c = 0; (a, b, c) = pair(); return a; }
        """, "cannot assign")

    def test_tuple_component_not_lvalue(self, xc_host):
        assert_error(xc_host, """
            (int, int) pair() { return (1, 2); }
            int main() { int a = 0; (a, 3) = pair(); return a; }
        """, "not an lvalue")

    def test_tuple_element_type_mismatch(self, xc_host):
        assert_error(xc_host, """
            (int, float) pair() { return (1, 2.5); }
            int main() { int a = 0; bool b = false; (a, b) = pair(); return a; }
        """, "cannot assign")

    def test_assignment_target_not_lvalue(self, xc_host):
        assert_error(xc_host, "int main() { 1 = 2; return 0; }", "not an lvalue")


class TestErrorAccumulation:
    def test_multiple_errors_reported_at_once(self, xc_host):
        errs = errors_of(xc_host, """
            int main() {
                int x = y;
                break;
                return z;
            }
        """)
        assert len(errs) >= 3

    def test_error_locations_present(self, xc_host):
        errs = errors_of(xc_host, "int main() {\n  return nope;\n}")
        assert any(":2:" in e for e in errs)
