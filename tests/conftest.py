"""Shared fixtures: cached translators and execution helpers.

Translator construction (LALR table generation) takes ~0.5s for the full
extension stack, so translators are built once per session per extension
set.  ``run_xc`` executes a program on the interpreter backend by
default (no compile step); tests that specifically exercise the native
path use the ``gcc`` fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Optimizations, make_translator
from repro.cexec import gcc_available
from repro.cexec.interp import Interpreter
from repro.cexec.rmat import read_rmat, write_rmat

_TRANSLATORS: dict[tuple, object] = {}


def get_translator(extensions: tuple[str, ...] = ("matrix",), **opt_kwargs):
    key = (extensions, tuple(sorted(opt_kwargs.items())))
    if key not in _TRANSLATORS:
        options = Optimizations(**opt_kwargs) if opt_kwargs else None
        _TRANSLATORS[key] = make_translator(list(extensions), options=options)
    return _TRANSLATORS[key]


@pytest.fixture(scope="session")
def matrix_translator():
    return get_translator(("matrix",))


@pytest.fixture(scope="session")
def full_translator():
    return get_translator(("matrix", "transform"))


@pytest.fixture(scope="session")
def host_translator():
    return get_translator(())


class XCRunner:
    """Translate + execute extended-C programs inside a test tmpdir.

    ``engine`` picks the Python execution engine: ``"vm"`` (the default
    register-bytecode VM, so the whole suite exercises it) or ``"tree"``
    (the tree-walking reference).  Both expose the same ``stats`` and
    ``stdout`` surface on the returned executor.
    """

    def __init__(self, tmp_path, extensions=("matrix",), engine="vm",
                 **opt_kwargs):
        self.tmp_path = tmp_path
        self.engine = engine
        self.translator = get_translator(tuple(extensions), **opt_kwargs)

    def check(self, source: str) -> list[str]:
        """Errors only (no lowering)."""
        return self.translator.compile(source, check_only=True).errors

    def run(
        self,
        source: str,
        inputs: dict[str, np.ndarray] | None = None,
        outputs: list[str] | None = None,
        nthreads: int = 1,
    ):
        result = self.translator.compile(source)
        assert result.ok, "\n".join(result.errors)
        for name, arr in (inputs or {}).items():
            write_rmat(self.tmp_path / name, arr)
        if self.engine == "tree":
            interp = Interpreter(result.lowered, result.ctx,
                                 workdir=self.tmp_path, nthreads=nthreads)
        else:
            from repro.cexec.vm import VM

            interp = VM(result.lowered, result.ctx, workdir=self.tmp_path,
                        nthreads=nthreads, program=result.bytecode())
        rc = interp.run_main()
        outs = {}
        for name in outputs or []:
            p = self.tmp_path / name
            if p.exists():
                outs[name] = read_rmat(p)
        return rc, outs, interp


@pytest.fixture()
def xc(tmp_path) -> XCRunner:
    return XCRunner(tmp_path, ("matrix",))


@pytest.fixture()
def xct(tmp_path) -> XCRunner:
    return XCRunner(tmp_path, ("matrix", "transform"))


@pytest.fixture()
def xc_host(tmp_path) -> XCRunner:
    return XCRunner(tmp_path, ())


requires_gcc = pytest.mark.skipif(not gcc_available(), reason="gcc not available")
