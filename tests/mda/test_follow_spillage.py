"""MDA condition 4: follow-set containment ("follow spillage").

Two individually-LALR extensions can still conflict jointly when an
extension's nonterminal can be followed by host context the bridged
nonterminal never sees; the analysis flags the spillage pattern.
"""

from repro.grammar import GrammarSpec
from repro.mda import is_composable


def host() -> GrammarSpec:
    g = GrammarSpec("host", start="S")
    g.terminal("A", "a")
    g.terminal("B", "b")
    g.terminal("Semi", ";")
    g.production("S ::= E Semi")
    g.production("E ::= A")
    return g


def test_spillage_flagged():
    # The extension's NT X is followed by the *host* terminal B via the
    # extension's own production — but B can never follow the bridged
    # host nonterminal E in the host grammar.
    e = GrammarSpec("spill")
    e.terminal("Mark", "mk", keyword=True, marking=True)
    e.production("E ::= Mark X B")
    e.production("X ::= A")
    report = is_composable(host(), e)
    assert not report.passed
    assert any("follow spillage" in v and "'B'" in v for v in report.violations)


def test_no_spillage_when_host_terminal_already_follows():
    # Semi follows E in the host, so an extension NT followed by Semi
    # spills nothing.
    e = GrammarSpec("ok")
    e.terminal("Mark", "mk", keyword=True, marking=True)
    e.production("E ::= Mark X")
    e.production("X ::= A")
    report = is_composable(host(), e)
    assert report.passed, str(report)


def test_extension_own_terminals_allowed():
    e = GrammarSpec("own")
    e.terminal("Mark", "mk", keyword=True, marking=True)
    e.terminal("Close", "end_mk", keyword=True)
    e.production("E ::= Mark X Close")
    e.production("X ::= A")
    e.production("X ::= A X")
    report = is_composable(host(), e)
    assert report.passed, str(report)


def test_real_extensions_have_no_spillage():
    from repro.api import module_registry

    reg = module_registry()
    report = is_composable(reg["cminus"].grammar, reg["matrix"].grammar,
                           prefer_shift=reg["cminus"].prefer_shift)
    assert not any("spillage" in v for v in report.violations)
