"""Modular determinism analysis — isComposable (§VI-A)."""

import pytest

from repro.grammar import GrammarSpec
from repro.mda import is_composable, verify_composition_theorem


def tiny_host() -> GrammarSpec:
    """A miniature statement/expression host language."""
    g = GrammarSpec("host", start="Stmt")
    g.terminal("WS", r"[ \t\n]+", layout=True)
    g.terminal("Identifier", r"[a-zA-Z_]\w*")
    g.terminal("IntLit", r"\d+")
    g.terminal("Eq", "=")
    g.terminal("Semi", ";")
    g.terminal("Plus", r"\+")
    g.terminal("LParen", r"\(")
    g.terminal("RParen", r"\)")
    g.terminal("Comma", ",")
    g.production("Stmt ::= Identifier Eq Expr Semi")
    g.production("Expr ::= Expr Plus Primary")
    g.production("Expr ::= Primary")
    g.production("Primary ::= IntLit")
    g.production("Primary ::= Identifier")
    g.production("Primary ::= LParen Expr RParen")
    return g


def with_ext() -> GrammarSpec:
    """A with-loop-flavored extension: marked by the `with` keyword."""
    e = GrammarSpec("withloop")
    e.terminal("With", "with", keyword=True, marking=True)
    e.terminal("Fold", "fold", keyword=True)
    e.production("Primary ::= With WithBody")
    e.production("WithBody ::= Fold LParen Expr RParen")
    e.production("WithBody ::= LParen Expr RParen")
    return e


def tuple_ext() -> GrammarSpec:
    """The paper's tuples extension: bridge begins with host's LParen."""
    e = GrammarSpec("tuples")
    e.production("Primary ::= LParen Expr Comma TupleRest RParen")
    e.production("TupleRest ::= Expr")
    e.production("TupleRest ::= Expr Comma TupleRest")
    return e


def marked_tuple_ext() -> GrammarSpec:
    """The paper's suggested fix: distinguishable delimiters `(| ... |)`."""
    e = GrammarSpec("tuples-marked")
    e.terminal("LTup", r"\(\|", marking=True)
    e.terminal("RTup", r"\|\)")
    e.production("Primary ::= LTup TupleElems RTup")
    e.production("TupleElems ::= Expr")
    e.production("TupleElems ::= Expr Comma TupleElems")
    return e


class TestIsComposable:
    def test_marked_extension_passes(self):
        report = is_composable(tiny_host(), with_ext())
        assert report.passed, str(report)

    def test_tuples_fails_on_initial_lparen(self):
        # Reproduces the paper's §VI-A result verbatim: the tuples
        # extension's initial "(" is not a unique marking terminal.
        report = is_composable(tiny_host(), tuple_ext())
        assert not report.passed
        assert any("marking terminal" in v for v in report.violations)

    def test_marked_tuples_passes(self):
        # "One could modify the tuple terminals to be (| and |) ... and
        # thus pass this analysis."
        report = is_composable(tiny_host(), marked_tuple_ext())
        assert report.passed, str(report)

    def test_marking_terminal_misuse_flagged(self):
        e = GrammarSpec("bad")
        e.terminal("Mark", "mark", keyword=True, marking=True)
        e.production("Primary ::= Mark Expr Mark")  # marker reused mid-rhs
        report = is_composable(tiny_host(), e)
        assert any("outside bridge-initial" in v for v in report.violations)

    def test_conflicting_extension_fails_lalr(self):
        e = GrammarSpec("amb")
        e.terminal("Mark", "mk", keyword=True, marking=True)
        # Ambiguous internal syntax: E ::= E E style.
        e.production("Primary ::= Mark AmbE")
        e.production("AmbE ::= AmbE AmbE")
        e.production("AmbE ::= IntLit")
        report = is_composable(tiny_host(), e)
        assert not report.passed
        assert any("not LALR(1)" in v for v in report.violations)

    def test_extension_without_bridges_passes_trivially(self):
        e = GrammarSpec("empty")
        report = is_composable(tiny_host(), e)
        assert report.passed


class TestCompositionTheorem:
    def test_passing_extensions_compose(self):
        host = tiny_host()
        exts = [with_ext(), marked_tuple_ext()]
        for e in exts:
            assert is_composable(host, e).passed
        assert verify_composition_theorem(host, exts)

    def test_three_way_composition_parses(self):
        from repro.parsing import Parser

        host = tiny_host()
        e1, e2 = with_ext(), marked_tuple_ext()
        composed = host.compose(e1, e2).build()
        parser = Parser(composed)
        # Default actions produce labeled tuples; just check both extension
        # syntaxes parse in one program composed from both extensions.
        parser.parse("x = with fold (1 + 2);")
        parser.parse("y = (| 1, 2, 3 |);")
        parser.parse("z = (1 + 2);")  # host parens still fine

    def test_layered_extension_uses_base(self):
        host = tiny_host()
        base = with_ext()
        layered = GrammarSpec("transform")
        layered.terminal("Transform", "transform", keyword=True, marking=True)
        layered.production("WithBody ::= Transform LParen Expr RParen")
        # Against host alone: WithBody is unknown -> composition fails.
        report_alone = is_composable(host, layered)
        assert not report_alone.passed
        # With the matrix-like base treated as host: passes.
        report = is_composable(host, layered, base=(base,))
        assert report.passed, str(report)
