"""GrammarSpec construction, composition, and symbol resolution."""

import pytest

from repro.grammar import Grammar, GrammarError, GrammarSpec, GrammarSets


def simple_spec() -> GrammarSpec:
    g = GrammarSpec("host", start="S")
    g.terminal("A", "a")
    g.terminal("B", "b")
    g.production("S ::= A S")
    g.production("S ::= B")
    return g


class TestSpec:
    def test_build(self):
        gr = simple_spec().build()
        assert "S" in gr.nonterminals
        assert {"A", "B"} <= gr.terminals
        # augmented production + two declared
        assert len(gr.productions) == 3

    def test_missing_start_raises(self):
        g = GrammarSpec("g")
        g.terminal("A", "a")
        g.production("S ::= A")
        g.start = None
        with pytest.raises(GrammarError):
            g.build()

    def test_undefined_symbol_raises(self):
        g = GrammarSpec("g", start="S")
        g.production("S ::= Missing")
        with pytest.raises(GrammarError, match="undefined"):
            g.build()

    def test_start_without_production_raises(self):
        g = GrammarSpec("g", start="S")
        g.terminal("A", "a")
        g.production("T ::= A")
        with pytest.raises(GrammarError):
            g.build()

    def test_duplicate_production_raises(self):
        g = simple_spec()
        g.production("S ::= B")
        with pytest.raises(GrammarError, match="duplicate"):
            g.build()

    def test_malformed_rule_raises(self):
        g = GrammarSpec("g", start="S")
        with pytest.raises(GrammarError):
            g.production("S A B")
        with pytest.raises(GrammarError):
            g.production("S T ::= A")

    def test_terminal_nonterminal_overlap_raises(self):
        g = GrammarSpec("g", start="S")
        g.terminal("S", "s")
        g.production("S ::= S")
        with pytest.raises(GrammarError, match="both"):
            g.build()

    def test_epsilon_production(self):
        g = GrammarSpec("g", start="S")
        g.terminal("A", "a")
        g.production("S ::= A S")
        g.production("S ::=")
        gr = g.build()
        assert gr.productions[2].rhs == ()


class TestComposition:
    def test_extension_adds_production_on_host_nonterminal(self):
        host = simple_spec()
        ext = GrammarSpec("ext")
        ext.terminal("C", "c")
        ext.production("S ::= C")
        composed = host.compose(ext).build()
        assert len(composed.productions) == 4
        origins = {p.origin for p in composed.productions}
        assert {"host", "ext"} <= origins

    def test_compose_keeps_host_start(self):
        host = simple_spec()
        ext = GrammarSpec("ext")
        composed = host.compose(ext)
        assert composed.start == "S"

    def test_compose_merges_terminals(self):
        host = simple_spec()
        ext = GrammarSpec("ext")
        ext.terminal("C", "c")
        ext.production("S ::= C")
        gr = host.compose(ext).build()
        assert "C" in gr.terminals

    def test_conflicting_terminal_decls_raise(self):
        host = simple_spec()
        ext = GrammarSpec("ext")
        ext.terminal("A", "different")
        with pytest.raises(ValueError):
            host.compose(ext).build()


class TestSets:
    @pytest.fixture()
    def sets(self) -> GrammarSets:
        g = GrammarSpec("g", start="S")
        for name, pat in [("A", "a"), ("B", "b"), ("C", "c")]:
            g.terminal(name, pat)
        # S -> A S | N B ;  N -> C | ε
        g.production("S ::= A S")
        g.production("S ::= N B")
        g.production("N ::= C")
        g.production("N ::=")
        return GrammarSets(g.build())

    def test_nullable(self, sets):
        assert "N" in sets.nullable
        assert "S" not in sets.nullable

    def test_first(self, sets):
        assert sets.first["S"] == {"A", "B", "C"}
        assert sets.first["N"] == {"C"}

    def test_follow(self, sets):
        assert sets.follow["N"] == {"B"}
        assert "$EOF" in sets.follow["S"]

    def test_first_of_seq_skips_nullable(self, sets):
        assert sets.first_of_seq(("N", "B")) == {"C", "B"}
        assert sets.is_nullable_seq(("N",))
        assert not sets.is_nullable_seq(("N", "B"))
