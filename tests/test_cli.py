"""The reproc command-line driver."""

import numpy as np
import pytest

from repro.cexec import gcc_available
from repro.cexec.rmat import read_rmat, write_rmat
from repro.cli import main
from repro.programs import load


@pytest.fixture()
def workdir(tmp_path):
    (tmp_path / "prog.xc").write_text(load("fig1"))
    write_rmat(tmp_path / "ssh.data",
               np.random.default_rng(0).random((3, 4, 5), dtype=np.float32))
    return tmp_path


def test_list_extensions(capsys):
    assert main(["--list-extensions"]) == 0
    out = capsys.readouterr().out
    for name in ("cminus", "matrix", "refcount", "transform", "tuples"):
        assert name in out


def test_translate_writes_c(workdir, capsys):
    rc = main([str(workdir / "prog.xc"), "-x", "matrix"])
    assert rc == 0
    c = (workdir / "prog.c").read_text()
    assert "rt_pool_run" in c or "for (long" in c


def test_check_mode_clean(workdir, capsys):
    assert main([str(workdir / "prog.xc"), "-x", "matrix", "--check"]) == 0
    assert "no errors" in capsys.readouterr().out


def test_check_mode_errors(tmp_path, capsys):
    (tmp_path / "bad.xc").write_text("int main() { return nope; }")
    assert main([str(tmp_path / "bad.xc"), "--check"]) == 1
    assert "undeclared identifier" in capsys.readouterr().err


def test_missing_file(capsys):
    assert main(["/nonexistent.xc"]) == 1


def test_output_path_option(workdir):
    out = workdir / "custom.c"
    assert main([str(workdir / "prog.xc"), "-x", "matrix", "-o", str(out)]) == 0
    assert out.exists()


def test_ablation_flags_change_output(workdir):
    main([str(workdir / "prog.xc"), "-x", "matrix", "--sequential",
          "-o", str(workdir / "a.c")])
    main([str(workdir / "prog.xc"), "-x", "matrix", "--sequential",
          "--no-fusion", "--no-slice-elim", "-o", str(workdir / "b.c")])
    a = (workdir / "a.c").read_text()
    b = (workdir / "b.c").read_text()
    a_body = a[a.index("int __user_main"):]
    b_body = b[b.index("int __user_main"):]
    assert "rt_assign_copy" not in a_body
    assert "rt_assign_copy" in b_body


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
def test_run_mode_native(workdir):
    rc = main([str(workdir / "prog.xc"), "-x", "matrix", "--run",
               "--engine", "native", "--threads", "2"])
    assert rc == 0
    got = read_rmat(workdir / "means.data")
    want = read_rmat(workdir / "ssh.data").mean(axis=2)
    assert np.allclose(got, want, atol=1e-5)


@pytest.mark.parametrize("engine", ["vm", "tree"])
def test_run_mode_python_engines(workdir, engine):
    """--run needs no gcc on the Python engines (vm is the default)."""
    rc = main([str(workdir / "prog.xc"), "-x", "matrix", "--run",
               "--engine", engine, "--threads", "2"])
    assert rc == 0
    got = read_rmat(workdir / "means.data")
    want = read_rmat(workdir / "ssh.data").mean(axis=2)
    assert np.allclose(got, want, atol=1e-5)


def test_run_default_engine_is_vm(workdir):
    rc = main([str(workdir / "prog.xc"), "-x", "matrix", "--run"])
    assert rc == 0
    assert (workdir / "means.data").exists()


def test_run_trap_exits_2(tmp_path, capsys):
    (tmp_path / "trap.xc").write_text("""
        int main() {
            Matrix float <1> a = init(Matrix float <1>, 4);
            Matrix float <1> b = init(Matrix float <1>, 5);
            Matrix float <1> c = a + b;
            writeMatrix("c.data", c);
            return 0;
        }
    """)
    rc = main([str(tmp_path / "trap.xc"), "-x", "matrix", "--run"])
    assert rc == 2
    assert "runtime error" in capsys.readouterr().err


def test_unknown_extension(workdir, capsys):
    with pytest.raises(ValueError, match="unknown extension"):
        main([str(workdir / "prog.xc"), "-x", "nonsense"])


# -- batch mode (S21 compilation service) -------------------------------------


@pytest.fixture()
def batchdir(tmp_path):
    for name in ("fig1", "fig4", "fig8"):
        (tmp_path / f"{name}.xc").write_text(load(name))
    return tmp_path


def test_batch_writes_all_outputs(batchdir, capsys):
    files = [str(batchdir / f"{n}.xc") for n in ("fig1", "fig4", "fig8")]
    assert main(["batch", *files, "-x", "matrix", "-j", "2"]) == 0
    for n in ("fig1", "fig4", "fig8"):
        assert (batchdir / f"{n}.c").exists()
    out = capsys.readouterr().out
    assert out.count("wrote ") == 3


def test_batch_matches_single_file_mode(batchdir):
    src = str(batchdir / "fig1.xc")
    assert main([src, "-x", "matrix", "-o", str(batchdir / "single.c")]) == 0
    assert main(["batch", src, "-x", "matrix",
                 "--out-dir", str(batchdir / "out")]) == 0
    single = (batchdir / "single.c").read_text()
    batch = (batchdir / "out" / "fig1.c").read_text()
    assert single == batch


def test_batch_stats_flag(batchdir, capsys):
    files = [str(batchdir / f"{n}.xc") for n in ("fig1", "fig4")]
    assert main(["batch", *files, "-x", "matrix", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "translator cache" in out
    assert "requests" in out


def test_batch_check_mode(batchdir, capsys):
    src = str(batchdir / "fig1.xc")
    assert main(["batch", src, "-x", "matrix", "--check"]) == 0
    assert "no errors" in capsys.readouterr().out


def test_batch_reports_errors_and_fails(batchdir, capsys):
    bad = batchdir / "bad.xc"
    bad.write_text("int main() { return nope; }")
    good = str(batchdir / "fig1.xc")
    assert main(["batch", good, str(bad), "-x", "matrix"]) == 1
    err = capsys.readouterr().err
    assert "undeclared identifier" in err
    assert (batchdir / "fig1.c").exists()  # good program still compiled


def test_batch_missing_file(capsys):
    assert main(["batch", "/nonexistent.xc"]) == 1
    assert "no such file" in capsys.readouterr().err
