"""With-loop semantics (§III-A.4): genarray, fold, generators, bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st


def run_out(xc, src, inputs=None, out="out.data"):
    rc, outs, _ = xc.run(src, inputs or {}, [out])
    assert rc == 0
    return outs[out]


class TestGenarray:
    def test_full_coverage(self, xc):
        src = """int main() {
            Matrix float <2> m = init(Matrix float <2>, 3, 4);
            m = with ([0,0] <= [i,j] < [3,4]) genarray([3,4], (float)(i * 10 + j));
            writeMatrix("out.data", m);
            return 0;
        }"""
        out = run_out(xc, src)
        want = np.fromfunction(lambda i, j: i * 10 + j, (3, 4))
        assert np.allclose(out, want)

    def test_partial_generator_zero_elsewhere(self, xc):
        """§III-A.4: elements outside the generator's index set are 0."""
        src = """int main() {
            Matrix float <2> m = init(Matrix float <2>, 4, 4);
            m = with ([1,1] <= [i,j] < [3,3]) genarray([4,4], 9.0);
            writeMatrix("out.data", m);
            return 0;
        }"""
        out = run_out(xc, src)
        want = np.zeros((4, 4))
        want[1:3, 1:3] = 9.0
        assert np.allclose(out, want)

    def test_inclusive_bounds(self, xc):
        # lo < i  and  i <= hi
        src = """int main() {
            Matrix float <1> m = init(Matrix float <1>, 6);
            m = with ([0] < [i] <= [4]) genarray([6], 1.0);
            writeMatrix("out.data", m);
            return 0;
        }"""
        out = run_out(xc, src)
        assert np.allclose(out, [0, 1, 1, 1, 1, 0])

    def test_generator_exceeding_shape_traps(self, xc):
        """§III-A.4: "the shape ... must be a superset of the indexes in
        the generator, which is ... checked at runtime"."""
        from repro.cexec import RuntimeTrap

        src = """int main() {
            Matrix float <1> m = init(Matrix float <1>, 4);
            m = with ([0] <= [i] < [9]) genarray([4], 1.0);
            writeMatrix("out.data", m);
            return 0;
        }"""
        with pytest.raises(RuntimeTrap, match="genarray"):
            xc.run(src, {}, [])

    def test_expression_position(self, xc):
        # a with-loop as a subexpression (hoisted into the statement)
        src = """int main() {
            Matrix float <1> a = (with ([0] <= [i] < [4]) genarray([4], 2.0)) + 1.0;
            writeMatrix("out.data", a);
            return 0;
        }"""
        out = run_out(xc, src)
        assert np.allclose(out, [3, 3, 3, 3])

    def test_with_loop_in_if_condition(self, xc):
        """Hoisted before the if (evaluated once)."""
        src = """int main() {
            Matrix float <1> out = init(Matrix float <1>, 1);
            if ((with ([0] <= [i] < [4]) fold(+, 0.0, 1.0)) > 3.5)
                out[0] = 1.0;
            writeMatrix("out.data", out);
            return 0;
        }"""
        out = run_out(xc, src)
        assert out[0] == 1.0

    def test_with_loop_in_while_condition_rejected(self, xc):
        from repro.cminus.lower import LoweringError

        src = """int main() {
            int n = 0;
            while ((with ([0] <= [i] < [4]) fold(+, 0.0, 1.0)) > (float) n)
                n = n + 1;
            return n;
        }"""
        with pytest.raises(LoweringError, match="loop condition"):
            xc.run(src, {}, [])

    def test_nested_genarray_fold(self, xc):
        """The Fig 1 pattern: fold inside genarray."""
        a = np.random.default_rng(0).normal(0, 1, (4, 5, 6)).astype(np.float32)
        src = """int main() {
            Matrix float <3> mat = readMatrix("in.data");
            int m = dimSize(mat, 0);
            int n = dimSize(mat, 1);
            int p = dimSize(mat, 2);
            Matrix float <2> means = init(Matrix float <2>, m, n);
            means = with ([0,0] <= [i,j] < [m,n])
                genarray([m,n], (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,k])) / p);
            writeMatrix("out.data", means);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a})
        assert np.allclose(out, a.mean(axis=2), atol=1e-5)

    def test_int_genarray(self, xc):
        src = """int main() {
            Matrix int <1> m = init(Matrix int <1>, 5);
            m = with ([0] <= [i] < [5]) genarray([5], (int)(i * i));
            writeMatrix("out.data", m);
            return 0;
        }"""
        out = run_out(xc, src)
        assert (out == np.arange(5) ** 2).all()


class TestFold:
    def test_sum(self, xc):
        a = np.arange(10, dtype=np.float32)
        src = """int main() {
            Matrix float <1> v = readMatrix("in.data");
            Matrix float <1> out = init(Matrix float <1>, 1);
            out[0] = with ([0] <= [k] < [dimSize(v, 0)]) fold(+, 0.0, v[k]);
            writeMatrix("out.data", out);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a})
        assert out[0] == pytest.approx(45.0)

    def test_product(self, xc):
        src = """int main() {
            Matrix float <1> out = init(Matrix float <1>, 1);
            out[0] = with ([1] <= [k] <= [5]) fold(*, 1.0, (float) k);
            writeMatrix("out.data", out);
            return 0;
        }"""
        out = run_out(xc, src)
        assert out[0] == pytest.approx(120.0)

    def test_max_min(self, xc):
        a = np.array([3, -7, 12, 5, -2], dtype=np.float32)
        src = """int main() {
            Matrix float <1> v = readMatrix("in.data");
            Matrix float <1> out = init(Matrix float <1>, 2);
            out[0] = with ([0] <= [k] < [5]) fold(max, -1000.0, v[k]);
            out[1] = with ([0] <= [k] < [5]) fold(min, 1000.0, v[k]);
            writeMatrix("out.data", out);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a})
        assert out[0] == pytest.approx(12.0)
        assert out[1] == pytest.approx(-7.0)

    def test_multidim_fold(self, xc):
        a = np.random.default_rng(1).normal(0, 1, (3, 4)).astype(np.float32)
        src = """int main() {
            Matrix float <2> m = readMatrix("in.data");
            Matrix float <1> out = init(Matrix float <1>, 1);
            out[0] = with ([0,0] <= [i,j] < [3,4]) fold(+, 0.0, m[i,j]);
            writeMatrix("out.data", out);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a})
        assert out[0] == pytest.approx(float(a.sum()), abs=1e-4)

    def test_empty_fold_returns_neutral(self, xc):
        src = """int main() {
            Matrix float <1> out = init(Matrix float <1>, 1);
            out[0] = with ([5] <= [k] < [5]) fold(+, 7.5, 1.0);
            writeMatrix("out.data", out);
            return 0;
        }"""
        out = run_out(xc, src)
        assert out[0] == pytest.approx(7.5)

    def test_fold_over_slice_body(self, xc):
        """The Fig 1 body shape: fold over mat[i,j,:][k] (slice-of-slice)."""
        a = np.random.default_rng(3).normal(0, 1, (2, 3, 8)).astype(np.float32)
        src = """int main() {
            Matrix float <3> mat = readMatrix("in.data");
            Matrix float <2> s = init(Matrix float <2>, 2, 3);
            s = with ([0,0] <= [i,j] < [2,3])
                genarray([2,3], with ([0] <= [k] < [8]) fold(+, 0.0, mat[i,j,:][k]));
            writeMatrix("out.data", s);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a})
        assert np.allclose(out, a.sum(axis=2), atol=1e-4)


class TestSliceEliminationEquivalence:
    """E-OPT correctness half: the optimization must not change results."""

    SRC = """int main() {
        Matrix float <3> mat = readMatrix("in.data");
        Matrix float <2> s = init(Matrix float <2>, 4, 5);
        s = with ([0,0] <= [i,j] < [4,5])
            genarray([4,5], with ([0] <= [k] < [6]) fold(+, 0.0, mat[i,j,:][k]));
        writeMatrix("out.data", s);
        return 0;
    }"""

    def test_same_result_with_and_without(self, tmp_path):
        from tests.conftest import XCRunner

        a = np.random.default_rng(5).normal(0, 1, (4, 5, 6)).astype(np.float32)
        d1 = tmp_path / "on"
        d2 = tmp_path / "off"
        d1.mkdir()
        d2.mkdir()
        on = XCRunner(d1, ("matrix",), eliminate_slices=True)
        off = XCRunner(d2, ("matrix",), eliminate_slices=False)
        _, o1, i1 = on.run(self.SRC, {"in.data": a}, ["out.data"])
        _, o2, i2 = off.run(self.SRC, {"in.data": a}, ["out.data"])
        assert np.allclose(o1["out.data"], o2["out.data"], atol=1e-5)
        # the optimization's observable effect: fewer allocations
        assert i1.stats.allocs < i2.stats.allocs
        # and both balance their refcounts
        assert i1.stats.leaked == 0 and i2.stats.leaked == 0

    def test_fusion_equivalence(self, tmp_path):
        from tests.conftest import XCRunner

        a = np.random.default_rng(6).normal(0, 1, (6, 7, 4)).astype(np.float32)
        src = """int main() {
            Matrix float <3> mat = readMatrix("in.data");
            Matrix float <2> m = init(Matrix float <2>, 6, 7);
            m = with ([0,0] <= [i,j] < [6,7])
                genarray([6,7], mat[i,j,0] + mat[i,j,1]);
            writeMatrix("out.data", m);
            return 0;
        }"""
        d1 = tmp_path / "on"
        d2 = tmp_path / "off"
        d1.mkdir()
        d2.mkdir()
        fused = XCRunner(d1, ("matrix",), fuse_assignment=True)
        library = XCRunner(d2, ("matrix",), fuse_assignment=False)
        _, o1, i1 = fused.run(src, {"in.data": a}, ["out.data"])
        _, o2, i2 = library.run(src, {"in.data": a}, ["out.data"])
        assert np.allclose(o1["out.data"], o2["out.data"])
        # fused: writes in place, no temp, no copy
        assert i1.stats.copies == 0
        # library baseline: a temp matrix plus an elementwise copy
        assert i2.stats.copies == 1
        assert i2.stats.allocs > i1.stats.allocs


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(1, 6), n=st.integers(1, 6),
    lo0=st.integers(0, 2), lo1=st.integers(0, 2),
    seed=st.integers(0, 1000),
)
def test_genarray_subset_matches_numpy(m, n, lo0, lo1, seed):
    """Property: genarray over a sub-generator equals a numpy construction."""
    import tempfile
    from pathlib import Path

    from tests.conftest import XCRunner

    lo0, lo1 = min(lo0, m), min(lo1, n)
    src = f"""int main() {{
        Matrix float <2> g = init(Matrix float <2>, {m}, {n});
        g = with ([{lo0},{lo1}] <= [i,j] < [{m},{n}])
            genarray([{m},{n}], (float)(i * 100 + j + {seed}));
        writeMatrix("out.data", g);
        return 0;
    }}"""
    with tempfile.TemporaryDirectory() as td:
        xc = XCRunner(Path(td), ("matrix",))
        _, outs, interp = xc.run(src, {}, ["out.data"])
    got = outs["out.data"]
    want = np.zeros((m, n), dtype=np.float32)
    for i in range(lo0, m):
        for j in range(lo1, n):
            want[i, j] = i * 100 + j + seed
    assert np.allclose(got, want)
    assert interp.stats.leaked == 0
