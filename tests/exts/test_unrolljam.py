"""§V's extensibility claim: a transformation spec added by an
independent module, composing with host+matrix+transform."""

import re

import numpy as np
import pytest

from repro.api import Optimizations, compile_source, module_registry
from repro.mda import is_composable

SRC = """int main() {{
    Matrix float <3> mat = readMatrix("in.data");
    Matrix float <2> means = init(Matrix float <2>, 8, 8);
    means = with ([0,0] <= [i,j] < [8,8])
        genarray([8,8], (with ([0] <= [k] < [4]) fold(+, 0.0, mat[i,j,k])) / 4)
        transform {clause};
    writeMatrix("out.data", means);
    return 0;
}}"""

EXTS = ("matrix", "transform", "unrolljam")


@pytest.fixture()
def xcu(tmp_path):
    from tests.conftest import XCRunner

    return XCRunner(tmp_path, EXTS, parallelize=False)


def test_passes_mda_layered():
    reg = module_registry()
    report = is_composable(
        reg["cminus"].grammar, reg["unrolljam"].grammar,
        base=(reg["matrix"].grammar, reg["transform"].grammar),
        prefer_shift=reg["cminus"].prefer_shift,
    )
    assert report.passed, str(report)


def test_dependency_resolution_pulls_transform():
    result = compile_source(SRC.format(clause="unrolljam i j by 4"),
                            ["unrolljam"],
                            options=Optimizations(parallelize=False))
    assert result.ok, result.errors


def test_generated_loop_order():
    """unroll-and-jam: i split by 4, copies jammed inside j."""
    result = compile_source(SRC.format(clause="unrolljam i j by 4"),
                            list(EXTS),
                            options=Optimizations(parallelize=False))
    body = result.c_source[result.c_source.index("int __user_main"):]
    order = re.findall(r"for \(long (\w+)", body)
    assert order == ["i_jout", "j", "i_jin", "k"]


def test_result_unchanged(xcu):
    cube = np.random.default_rng(1).normal(0, 1, (8, 8, 4)).astype(np.float32)
    rc, outs, _ = xcu.run(SRC.format(clause="unrolljam i j by 4"),
                          {"in.data": cube}, ["out.data"])
    assert rc == 0
    assert np.allclose(outs["out.data"], cube.mean(axis=2), atol=1e-4)


def test_composes_with_builtin_clauses(xcu):
    cube = np.random.default_rng(2).normal(0, 1, (8, 8, 4)).astype(np.float32)
    rc, outs, _ = xcu.run(
        SRC.format(clause="unrolljam i j by 4. unroll i_jin by 2"),
        {"in.data": cube}, ["out.data"],
    )
    assert rc == 0
    assert np.allclose(outs["out.data"], cube.mean(axis=2), atol=1e-4)


def test_static_index_check(xcu):
    errs = xcu.check(SRC.format(clause="unrolljam z j by 4"))
    assert any("unrolljam of unknown loop index 'z'" in e for e in errs)


def test_keyword_still_an_identifier_elsewhere(xcu):
    assert xcu.check(
        "int main() { int unrolljam = 3; return unrolljam; }"
    ) == []


def test_duplicate_clause_registration_rejected():
    from repro.exts.transform import TransformError, register_clause
    from repro.exts.unrolljam import UnrollJam, _register

    _register()  # idempotent
    with pytest.raises(TransformError, match="already registered"):
        register_clause(UnrollJam, lambda nest, c, ctx: nest)
