"""Matrix execution semantics against the numpy oracle.

Indexing (all five §III-A.3 variants), overloaded arithmetic, matrix
multiplication, range expressions and slice writes — each checked by
running a translated program on the interpreter and comparing with the
equivalent numpy computation, plus hypothesis property tests over random
shapes and slices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st


def run_out(xc, src, inputs, out="out.data"):
    rc, outs, _ = xc.run(src, inputs, [out])
    assert rc == 0
    return outs[out]


IO3 = 'Matrix float <3> d = readMatrix("in.data");'
IO2 = 'Matrix float <2> d = readMatrix("in.data");'
IO1 = 'Matrix float <1> d = readMatrix("in.data");'


def cube(shape, seed=0):
    return np.random.default_rng(seed).normal(0, 1, shape).astype(np.float32)


class TestScalarIndexing:
    def test_single_element(self, xc):
        a = cube((5, 6, 7))
        src = f"""int main() {{
            {IO3}
            Matrix float <1> out = init(Matrix float <1>, 1);
            out[0] = d[3, 4, 1];
            writeMatrix("out.data", out);
            return 0;
        }}"""
        out = run_out(xc, src, {"in.data": a})
        assert out[0] == pytest.approx(a[3, 4, 1])

    def test_end_is_last_element(self, xc):
        a = cube((4, 9))
        src = f"""int main() {{
            {IO2}
            Matrix float <1> out = init(Matrix float <1>, 2);
            out[0] = d[end, end];
            out[1] = d[end - 2, 0];
            writeMatrix("out.data", out);
            return 0;
        }}"""
        out = run_out(xc, src, {"in.data": a})
        assert out[0] == pytest.approx(a[-1, -1])
        assert out[1] == pytest.approx(a[-3, 0])

    def test_element_write(self, xc):
        a = cube((3, 3))
        src = f"""int main() {{
            {IO2}
            d[1, 2] = 42.0;
            writeMatrix("out.data", d);
            return 0;
        }}"""
        out = run_out(xc, src, {"in.data": a})
        want = a.copy()
        want[1, 2] = 42.0
        assert np.allclose(out, want)


class TestRangeIndexing:
    def test_paper_example_shape(self, xc):
        """§III-A.3(b): data[0:4, end-4:end, 0:4] is 5x5x5 (inclusive)."""
        a = cube((8, 9, 10))
        src = f"""int main() {{
            {IO3}
            Matrix float <3> s = d[0:4, end-4:end, 0:4];
            writeMatrix("out.data", s);
            return 0;
        }}"""
        out = run_out(xc, src, {"in.data": a})
        assert out.shape == (5, 5, 5)
        assert np.allclose(out, a[0:5, -5:, 0:5])

    def test_whole_dimension(self, xc):
        """§III-A.3(c): data[0, end, :] is a vector of dimSize(data,2)."""
        a = cube((4, 5, 6))
        src = f"""int main() {{
            {IO3}
            Matrix float <1> v = d[0, end, :];
            writeMatrix("out.data", v);
            return 0;
        }}"""
        out = run_out(xc, src, {"in.data": a})
        assert out.shape == (6,)
        assert np.allclose(out, a[0, -1, :])

    def test_out_of_bounds_range_traps(self, xc):
        from repro.cexec import RuntimeTrap

        a = cube((4, 4))
        src = f"""int main() {{
            {IO2}
            Matrix float <2> s = d[0:9, :];
            writeMatrix("out.data", s);
            return 0;
        }}"""
        with pytest.raises(RuntimeTrap, match="range"):
            xc.run(src, {"in.data": a}, ["out.data"])


class TestLogicalIndexing:
    def test_paper_example(self, xc):
        """§III-A.3(d): data[v % 2 == 1, :] selects odd-v rows."""
        a = cube((6, 5))
        v = np.array([3, 4, 7, 10, 13, 2], dtype=np.int32)
        src = """int main() {
            Matrix float <2> d = readMatrix("in.data");
            Matrix int <1> v = readMatrix("v.data");
            Matrix float <2> s = d[v % 2 == 1, :];
            writeMatrix("out.data", s);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a, "v.data": v})
        assert np.allclose(out, a[v % 2 == 1, :])

    def test_logical_on_last_dim(self, xc):
        """Fig 4's date filter: ssh[:, :, dates >= cutoff]."""
        a = cube((3, 4, 6))
        dates = np.array([5, 10, 15, 20, 25, 30], dtype=np.int32)
        src = """int main() {
            Matrix float <3> d = readMatrix("in.data");
            Matrix int <1> t = readMatrix("t.data");
            Matrix float <3> s = d[:, :, t >= 15];
            writeMatrix("out.data", s);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a, "t.data": dates})
        assert np.allclose(out, a[:, :, dates >= 15])

    def test_paper_shape_claim(self, xc):
        """§III-A.3(d): data[v%2==1, :, 0] is n x dimSize(data,1)."""
        a = cube((5, 7, 3))
        v = np.array([1, 2, 3, 4, 5], dtype=np.int32)
        src = """int main() {
            Matrix float <3> d = readMatrix("in.data");
            Matrix int <1> v = readMatrix("v.data");
            Matrix float <2> s = d[v % 2 == 1, :, 0];
            writeMatrix("out.data", s);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a, "v.data": v})
        n_true = int((v % 2 == 1).sum())
        assert out.shape == (n_true, 7)
        assert np.allclose(out, a[v % 2 == 1, :, 0])

    def test_empty_selection(self, xc):
        a = cube((3, 4))
        v = np.zeros(3, dtype=np.int32)
        src = """int main() {
            Matrix float <2> d = readMatrix("in.data");
            Matrix int <1> v = readMatrix("v.data");
            Matrix float <2> s = d[v == 1, :];
            writeMatrix("out.data", s);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a, "v.data": v})
        assert out.shape == (0, 4)


class TestGatherIndexing:
    def test_int_vector_selector(self, xc):
        a = cube((6, 3))
        idx = np.array([4, 0, 4, 2], dtype=np.int32)
        src = """int main() {
            Matrix float <2> d = readMatrix("in.data");
            Matrix int <1> ix = readMatrix("ix.data");
            Matrix float <2> s = d[ix, :];
            writeMatrix("out.data", s);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a, "ix.data": idx})
        assert np.allclose(out, a[idx, :])

    def test_range_expression_as_index(self, xc):
        """Fig 8 line 12: ts[beginning::i] — `::` range inside an index."""
        a = cube((10,))
        src = f"""int main() {{
            {IO1}
            Matrix float <1> s = d[2 :: 6];
            writeMatrix("out.data", s);
            return 0;
        }}"""
        out = run_out(xc, src, {"in.data": a})
        assert np.allclose(out, a[2:7])  # inclusive


class TestArithmetic:
    def test_elementwise_ops(self, xc):
        a, b = cube((4, 5), 1), cube((4, 5), 2)
        src = """int main() {
            Matrix float <2> a = readMatrix("a.data");
            Matrix float <2> b = readMatrix("b.data");
            Matrix float <2> c = (a + b) .* (a - b) / (b + 10.0);
            writeMatrix("out.data", c);
            return 0;
        }"""
        out = run_out(xc, src, {"a.data": a, "b.data": b})
        assert np.allclose(out, (a + b) * (a - b) / (b + 10.0), atol=1e-4)

    def test_scalar_broadcast_both_sides(self, xc):
        a = cube((3, 4))
        src = """int main() {
            Matrix float <2> a = readMatrix("a.data");
            Matrix float <2> c = 2.0 * a + 1.0;
            writeMatrix("out.data", c);
            return 0;
        }"""
        out = run_out(xc, src, {"a.data": a})
        assert np.allclose(out, 2 * a + 1, atol=1e-5)

    def test_matrix_multiplication(self, xc):
        a = cube((3, 4), 1)
        b = cube((4, 5), 2)
        src = """int main() {
            Matrix float <2> a = readMatrix("a.data");
            Matrix float <2> b = readMatrix("b.data");
            Matrix float <2> c = a * b;
            writeMatrix("out.data", c);
            return 0;
        }"""
        out = run_out(xc, src, {"a.data": a, "b.data": b})
        assert np.allclose(out, a @ b, atol=1e-3)

    def test_matmul_dimension_trap(self, xc):
        from repro.cexec import RuntimeTrap

        a, b = cube((3, 4)), cube((3, 4))
        src = """int main() {
            Matrix float <2> a = readMatrix("a.data");
            Matrix float <2> b = readMatrix("b.data");
            Matrix float <2> c = a * b;
            writeMatrix("out.data", c);
            return 0;
        }"""
        with pytest.raises(RuntimeTrap, match="multiply"):
            xc.run(src, {"a.data": a, "b.data": b}, ["out.data"])

    def test_shape_mismatch_trap(self, xc):
        from repro.cexec import RuntimeTrap

        src = """int main() {
            Matrix float <2> a = init(Matrix float <2>, 2, 3);
            Matrix float <2> b = init(Matrix float <2>, 3, 2);
            Matrix float <2> c = a + b;
            writeMatrix("out.data", c);
            return 0;
        }"""
        with pytest.raises(RuntimeTrap, match="elementwise"):
            xc.run(src, {}, [])

    def test_unary_negate(self, xc):
        a = cube((4,))
        src = f"""int main() {{
            {IO1}
            Matrix float <1> c = -d;
            writeMatrix("out.data", c);
            return 0;
        }}"""
        out = run_out(xc, src, {"in.data": a})
        assert np.allclose(out, -a)

    def test_int_matrix_mod(self, xc):
        v = np.array([1, 2, 3, 4, 5], dtype=np.int32)
        src = """int main() {
            Matrix int <1> v = readMatrix("v.data");
            Matrix int <1> r = v % 2;
            writeMatrix("out.data", r);
            return 0;
        }"""
        out = run_out(xc, src, {"v.data": v})
        assert (out == v % 2).all()


class TestRangeExpression:
    def test_fig8_line(self, xc):
        """Fig 8 line 27: Line = (x1::x2) * m + b."""
        src = """int main() {
            Matrix float <1> line = (0 :: 9) * 0.5 + 1.0;
            writeMatrix("out.data", line);
            return 0;
        }"""
        out = run_out(xc, src, {})
        assert np.allclose(out, np.arange(10) * 0.5 + 1.0)


class TestSliceWrites:
    def test_range_write(self, xc):
        a = cube((10,))
        b = cube((4,), 5)
        src = """int main() {
            Matrix float <1> d = readMatrix("in.data");
            Matrix float <1> s = readMatrix("s.data");
            d[3 : 6] = s;
            writeMatrix("out.data", d);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a, "s.data": b})
        want = a.copy()
        want[3:7] = b
        assert np.allclose(out, want)

    def test_scalar_broadcast_write(self, xc):
        a = cube((4, 6))
        src = f"""int main() {{
            {IO2}
            d[1, :] = 0.0;
            writeMatrix("out.data", d);
            return 0;
        }}"""
        out = run_out(xc, src, {"in.data": a})
        want = a.copy()
        want[1, :] = 0
        assert np.allclose(out, want)

    def test_logical_write(self, xc):
        a = cube((5,))
        mask_v = np.array([1, 0, 1, 0, 1], dtype=np.int32)
        src = """int main() {
            Matrix float <1> d = readMatrix("in.data");
            Matrix int <1> m = readMatrix("m.data");
            d[m == 1] = -1.0;
            writeMatrix("out.data", d);
            return 0;
        }"""
        out = run_out(xc, src, {"in.data": a, "m.data": mask_v})
        want = a.copy()
        want[mask_v == 1] = -1.0
        assert np.allclose(out, want)

    def test_slice_write_shape_trap(self, xc):
        from repro.cexec import RuntimeTrap

        src = """int main() {
            Matrix float <1> d = init(Matrix float <1>, 10);
            Matrix float <1> s = init(Matrix float <1>, 3);
            d[0 : 4] = s;
            writeMatrix("out.data", d);
            return 0;
        }"""
        with pytest.raises(RuntimeTrap, match="dimension"):
            xc.run(src, {}, [])


class TestAllocationTraps:
    def test_negative_dimension_interp(self, xc):
        from repro.cexec import RuntimeTrap

        src = """int main() {
            int n = 0 - 4;
            Matrix float <1> v = init(Matrix float <1>, n);
            return 0;
        }"""
        with pytest.raises(RuntimeTrap, match="negative dimension"):
            xc.run(src, {}, [])

    def test_negative_dimension_native(self, xc):
        from repro.cexec import compile_and_run, gcc_available

        if not gcc_available():
            pytest.skip("gcc not available")
        src = """int main() {
            int n = 0 - 4;
            Matrix float <1> v = init(Matrix float <1>, n);
            return 0;
        }"""
        run = compile_and_run(src, ["matrix"], check=False)
        assert run.returncode == 2
        assert "negative dimension" in run.stderr


class TestReadMatrixChecks:
    def test_rank_mismatch_trap(self, xc):
        from repro.cexec import RuntimeTrap

        a = cube((3, 3))
        src = """int main() {
            Matrix float <3> d = readMatrix("in.data");
            return 0;
        }"""
        with pytest.raises(RuntimeTrap, match="rank"):
            xc.run(src, {"in.data": a}, [])

    def test_elem_kind_mismatch_trap(self, xc):
        from repro.cexec import RuntimeTrap

        a = np.arange(6, dtype=np.int32).reshape(2, 3)
        src = """int main() {
            Matrix float <2> d = readMatrix("in.data");
            return 0;
        }"""
        with pytest.raises(RuntimeTrap, match="rank"):
            xc.run(src, {"in.data": a}, [])


# --- property tests ----------------------------------------------------------

@st.composite
def slice_specs(draw):
    """A random 2-D matrix plus a random index pair (scalar/range/all)."""
    m = draw(st.integers(2, 7))
    n = draw(st.integers(2, 7))

    def one_index(size):
        kind = draw(st.sampled_from(["scalar", "range", "all", "end_scalar"]))
        if kind == "scalar":
            k = draw(st.integers(0, size - 1))
            return str(k), k
        if kind == "end_scalar":
            back = draw(st.integers(0, size - 1))
            return (f"end - {back}", size - 1 - back)
        if kind == "range":
            a = draw(st.integers(0, size - 1))
            b = draw(st.integers(a, size - 1))
            return f"{a} : {b}", slice(a, b + 1)
        return ":", slice(None)

    s0, p0 = one_index(m)
    s1, p1 = one_index(n)
    return m, n, f"{s0}, {s1}", (p0, p1)


@settings(max_examples=25, deadline=None)
@given(slice_specs(), st.integers(0, 10_000))
def test_indexing_matches_numpy(spec, seed):
    from tests.conftest import XCRunner
    import tempfile
    from pathlib import Path

    m, n, index_src, np_index = spec
    a = np.random.default_rng(seed).normal(0, 1, (m, n)).astype(np.float32)
    want = a[np_index]
    scalar = not isinstance(want, np.ndarray) or want.ndim == 0
    rank = 0 if scalar else want.ndim

    with tempfile.TemporaryDirectory() as td:
        xc = XCRunner(Path(td), ("matrix",))
        if scalar:
            src = f"""int main() {{
                Matrix float <2> d = readMatrix("in.data");
                Matrix float <1> out = init(Matrix float <1>, 1);
                out[0] = d[{index_src}];
                writeMatrix("out.data", out);
                return 0;
            }}"""
        else:
            src = f"""int main() {{
                Matrix float <2> d = readMatrix("in.data");
                Matrix float <{rank}> s = d[{index_src}];
                writeMatrix("out.data", s);
                return 0;
            }}"""
        out = run_out(xc, src, {"in.data": a})
    if scalar:
        assert out[0] == pytest.approx(float(want))
    else:
        assert out.shape == want.shape
        assert np.allclose(out, want)
