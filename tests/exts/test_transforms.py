"""Transform extension (§V): clause semantics, generated shapes, errors."""

import numpy as np
import pytest

from repro.api import Optimizations, compile_source

BASE = """int main() {{
    Matrix float <3> mat = readMatrix("in.data");
    int m = dimSize(mat, 0);
    int n = dimSize(mat, 1);
    int p = dimSize(mat, 2);
    Matrix float <2> means = init(Matrix float <2>, m, n);
    means = with ([0,0] <= [i,j] < [m,n])
        genarray([m,n],
            (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,:][k])) / p){clause};
    writeMatrix("out.data", means);
    return 0;
}}"""

CUBE = np.random.default_rng(0).normal(0, 1, (8, 8, 8)).astype(np.float32)
WANT = CUBE.mean(axis=2)


def run_clause(xct, clause, cube=CUBE):
    src = BASE.format(clause=clause)
    rc, outs, interp = xct.run(src, {"in.data": cube}, ["out.data"])
    assert rc == 0
    return outs["out.data"], interp


def c_of(clause, cube_unused=None, **opt):
    src = BASE.format(clause=clause)
    opts = Optimizations(parallelize=False, **opt)
    result = compile_source(src, ["matrix", "transform"], options=opts)
    assert result.ok, result.errors
    return result.c_source


class TestClauseCorrectness:
    CLAUSES = {
        "none": "",
        "split": "\n transform split j by 4, jin, jout",
        "split_vectorize": "\n transform split j by 4, jin, jout. vectorize jin",
        "fig9": "\n transform split j by 4, jin, jout. vectorize jin. parallelize i",
        "interchange": "\n transform interchange i j",
        "reorder": "\n transform reorder (j, i)",
        "tile": "\n transform tile i j by 4 4",
        "unroll": "\n transform split j by 4, jin, jout. unroll jin by 2",
        "parallelize": "\n transform parallelize i",
    }

    @pytest.mark.parametrize("name", list(CLAUSES))
    def test_result_unchanged(self, xct, name):
        out, _ = run_clause(xct, self.CLAUSES[name])
        assert np.allclose(out, WANT, atol=1e-4), name

    def test_split_nondivisible_traps(self, xct):
        from repro.cexec import RuntimeTrap

        cube = np.random.default_rng(1).normal(0, 1, (6, 7, 4)).astype(np.float32)
        with pytest.raises(RuntimeTrap, match="divisible"):
            run_clause(xct, "\n transform split j by 4, jin, jout", cube)


class TestGeneratedShapes:
    """E-F10 / E-F11: the generated code has the paper's structure."""

    def test_fig10_split_shape(self):
        c = c_of("\n transform split j by 4, jin, jout")
        body = c[c.index("int __user_main"):]
        # two nested loops replacing j, reconstruction jout*4 + jin
        assert "for (long jout = 0" in body
        assert "for (long jin = 0; jin < 4" in body
        assert "(jout * 4) + jin" in body
        assert "rt_require_divisible" in body

    def test_fig11_vector_shape(self):
        c = c_of("\n transform split j by 4, jin, jout. vectorize jin. parallelize i")
        body = c[c.index("int __user_main"):]
        # OpenMP pragma on the i loop (Fig 11)
        assert "#pragma omp parallel for" in body
        # hoisted splats "floated above the outermost for loop"
        pragma_at = body.index("#pragma")
        assert "rt_vsplatf" in body[:pragma_at]
        # vector accumulator updated inside the k loop; vector store
        assert "rt_vaddf" in body
        assert "rt_vstoref" in body or "rt_vscatterf" in body
        # division by p became a vector op
        assert "rt_vdivf" in body

    def test_vectorize_unit_stride_uses_vload(self):
        src = """int main() {
            Matrix float <1> a = readMatrix("in.data");
            int n = dimSize(a, 0);
            Matrix float <1> b = init(Matrix float <1>, n);
            b = with ([0] <= [i] < [n]) genarray([n], a[i] * 2.0)
                transform vectorize i;
            writeMatrix("out.data", b);
            return 0;
        }"""
        result = compile_source(src, ["matrix", "transform"],
                                options=Optimizations(parallelize=False))
        assert result.ok, result.errors
        body = result.c_source[result.c_source.index("int __user_main"):]
        assert "rt_vloadf" in body  # contiguous -> plain load
        assert "rt_vgatherf" not in body

    def test_tile_produces_four_loops(self):
        c = c_of("\n transform tile i j by 4 4")
        body = c[c.index("int __user_main"):]
        for name in ("i_out", "j_out", "i_in", "j_in"):
            assert f"for (long {name}" in body
        # tile order: i_out outermost, then j_out, i_in, j_in
        assert body.index("for (long i_out") < body.index("for (long j_out") \
            < body.index("for (long i_in") < body.index("for (long j_in")

    def test_unroll_replicates_body(self):
        c = c_of("\n transform unroll i by 2")
        body = c[c.index("int __user_main"):]
        assert "i = i + 2" in body


class TestStaticChecks:
    """§V: "detect ... that the loop indices in the transformations
    correspond to loops in the code being transformed"."""

    def bad(self, clause, fragment):
        src = BASE.format(clause=clause)
        result = compile_source(src, ["matrix", "transform"])
        assert not result.ok
        assert any(fragment in e for e in result.errors), result.errors

    def test_split_unknown_index(self):
        self.bad("\n transform split z by 4, zin, zout",
                 "split of unknown loop index 'z'")

    def test_vectorize_unknown_index(self):
        self.bad("\n transform vectorize q", "vectorize of unknown loop index 'q'")

    def test_parallelize_unknown_index(self):
        self.bad("\n transform parallelize q", "parallelize of unknown loop index")

    def test_vectorize_of_consumed_split_target(self):
        # after split, `j` no longer names a loop
        self.bad("\n transform split j by 4, jin, jout. vectorize j",
                 "vectorize of unknown loop index 'j'")

    def test_split_result_names_usable(self):
        src = BASE.format(
            clause="\n transform split j by 4, jin, jout. unroll jout by 2"
        )
        result = compile_source(src, ["matrix", "transform"])
        assert result.ok, result.errors

    def test_reorder_unknown_index(self):
        self.bad("\n transform reorder (i, q)", "reorder of unknown loop index 'q'")


class TestVectorizeLimits:
    def test_cannot_vectorize_non_affine(self):
        from repro.exts.transform.loopxf import TransformError

        src = """int main() {
            Matrix float <1> a = readMatrix("in.data");
            int n = dimSize(a, 0);
            Matrix float <1> b = init(Matrix float <1>, n);
            b = with ([0] <= [i] < [n]) genarray([n], a[(i * i) % n])
                transform vectorize i;
            writeMatrix("out.data", b);
            return 0;
        }"""
        # static checks pass; the lowering (inside compile) raises
        with pytest.raises(TransformError, match="not affine"):
            compile_source(src, ["matrix", "transform"],
                           options=Optimizations(parallelize=False))

    def test_fold_max_cannot_vectorize(self):
        from repro.exts.transform.loopxf import TransformError

        src = """int main() {
            Matrix float <1> a = readMatrix("in.data");
            Matrix float <1> b = init(Matrix float <1>, 8);
            b = with ([0] <= [i] < [8])
                genarray([8], with ([0] <= [k] < [4]) fold(max, 0.0, a[i * 4 + k]))
                transform vectorize i;
            writeMatrix("out.data", b);
            return 0;
        }"""
        with pytest.raises(TransformError):
            compile_source(src, ["matrix", "transform"],
                           options=Optimizations(parallelize=False))
