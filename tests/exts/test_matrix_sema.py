"""Matrix extension semantic analysis: the domain-specific error checks
the paper highlights (§III-A: bound/id/shape counts, element types, rank
compatibility, matrixMap signatures)."""


def assert_error(xc, src, fragment):
    errs = xc.check(src)
    assert any(fragment in e for e in errs), f"expected {fragment!r} in {errs}"


def assert_clean(xc, src):
    errs = xc.check(src)
    assert errs == [], errs


M22 = 'Matrix float <2> m = init(Matrix float <2>, 4, 4);'


class TestMatrixTypes:
    def test_invalid_element_type(self, xc):
        assert_error(xc, "int main() { Matrix void <2> m = readMatrix(\"d\"); return 0; }",
                     "matrix elements must be int, bool or float")

    def test_rank_out_of_range(self, xc):
        assert_error(xc, "int main() { Matrix float <9> m = readMatrix(\"d\"); return 0; }",
                     "matrix rank must be between 1 and 8")

    def test_rank_mismatch_assignment(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            Matrix float <3> c = init(Matrix float <3>, 2, 2, 2);
            m = c;
            return 0;
        }}""", "cannot assign")

    def test_elem_mismatch_assignment(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            Matrix int <2> c = init(Matrix int <2>, 4, 4);
            m = c;
            return 0;
        }}""", "cannot assign")

    def test_matrix_param_and_return(self, xc):
        assert_clean(xc, """
        Matrix float <1> double_it(Matrix float <1> v) { return v + v; }
        int main() {
            Matrix float <1> v = init(Matrix float <1>, 8);
            Matrix float <1> w = double_it(v);
            return 0;
        }
        """)


class TestWithLoopChecks:
    """Paper: "Our extended semantic analysis checks that these criteria
    are met and can produce error messages if necessary."""

    def test_bound_count_mismatch(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            m = with ([0] <= [i,j] < [4,4]) genarray([4,4], 1.0);
            return 0;
        }}""", "bounds of length 1 and 2")

    def test_upper_bound_count_mismatch(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            m = with ([0,0] <= [i,j] < [4]) genarray([4,4], 1.0);
            return 0;
        }}""", "bounds of length 2 and 1")

    def test_shape_count_mismatch(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            m = with ([0,0] <= [i,j] < [4,4]) genarray([4], 1.0);
            return 0;
        }}""", "genarray shape has 1 dimension(s) but the generator binds 2")

    def test_duplicate_index_variable(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            m = with ([0,0] <= [i,i] < [4,4]) genarray([4,4], 1.0);
            return 0;
        }}""", "duplicate index variable")

    def test_bound_must_be_int(self, xc):
        assert_error(xc, """int main() {
            float s = with ([0.5] <= [k] < [5]) fold(+, 0.0, 1.0);
            return 0;
        }""", "with-loop bound has type float")

    def test_genarray_body_must_be_scalar(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            Matrix float <2> r = with ([0,0] <= [i,j] < [4,4]) genarray([4,4], m);
            return 0;
        }}""", "genarray element expression has type Matrix float <2>")

    def test_index_vars_bound_in_body(self, xc):
        assert_clean(xc, f"""int main() {{
            {M22}
            m = with ([0,0] <= [i,j] < [4,4]) genarray([4,4], (float)(i + j));
            return 0;
        }}""")

    def test_index_vars_not_visible_outside(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            m = with ([0,0] <= [i,j] < [4,4]) genarray([4,4], 1.0);
            return i;
        }}""", "undeclared identifier 'i'")

    def test_fold_body_must_be_scalar(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            float s = with ([0] <= [k] < [4]) fold(+, 0.0, m);
            return 0;
        }}""", "fold body has type")


class TestIndexingChecks:
    def test_wrong_index_count(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            float x = m[1];
            return 0;
        }}""", "is not indexable")

    def test_float_index_rejected(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            float x = m[1.5, 0];
            return 0;
        }}""", "is not indexable")

    def test_range_bounds_must_be_int(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            Matrix float <2> s = m[0.5:2.5, :];
            return 0;
        }}""", "range bound has type float")

    def test_logical_index_needs_rank1_bool(self, xc):
        assert_error(xc, f"""int main() {{
            {M22}
            Matrix bool <2> mask = m > 0.0;
            Matrix float <2> s = m[mask, :];
            return 0;
        }}""", "is not indexable")

    def test_valid_logical_index(self, xc):
        assert_clean(xc, """int main() {
            Matrix float <2> m = init(Matrix float <2>, 4, 6);
            Matrix float <1> v = init(Matrix float <1>, 4);
            Matrix bool <1> mask = v > 0.0;
            Matrix float <2> s = m[mask, :];
            return 0;
        }""")

    def test_end_arithmetic_in_index(self, xc):
        assert_clean(xc, f"""int main() {{
            {M22}
            float x = m[end - 1, end / 2];
            return 0;
        }}""")


class TestOperatorChecks:
    def test_rank_mismatch_elementwise(self, xc):
        assert_error(xc, """int main() {
            Matrix float <2> a = init(Matrix float <2>, 2, 2);
            Matrix float <1> b = init(Matrix float <1>, 2);
            Matrix float <2> c = a + b;
            return 0;
        }""", "invalid operands to '+'")

    def test_matmul_requires_rank2(self, xc):
        assert_error(xc, """int main() {
            Matrix float <3> a = init(Matrix float <3>, 2, 2, 2);
            Matrix float <3> b = init(Matrix float <3>, 2, 2, 2);
            Matrix float <3> c = a * b;
            return 0;
        }""", "invalid operands to '*'")

    def test_elementwise_mult_any_rank(self, xc):
        assert_clean(xc, """int main() {
            Matrix float <3> a = init(Matrix float <3>, 2, 2, 2);
            Matrix float <3> b = init(Matrix float <3>, 2, 2, 2);
            Matrix float <3> c = a .* b;
            return 0;
        }""")

    def test_comparison_produces_bool_matrix(self, xc):
        # the paper's logical-indexing example: v % 2 == 1
        assert_clean(xc, """int main() {
            Matrix int <1> v = init(Matrix int <1>, 4);
            Matrix bool <1> b = v % 2 == 1;
            return 0;
        }""")

    def test_scalar_matrix_arith(self, xc):
        assert_clean(xc, """int main() {
            Matrix int <1> v = init(Matrix int <1>, 4);
            Matrix float <1> w = v * 2.5 + 1.0;
            return 0;
        }""")

    def test_float_matrix_modulo_rejected(self, xc):
        # C has no float %, so elementwise % is integer-only
        assert_error(xc, """int main() {
            Matrix float <1> v = init(Matrix float <1>, 4);
            Matrix float <1> r = v % 2;
            return 0;
        }""", "invalid operands to '%'")

    def test_int_matrix_modulo_ok(self, xc):
        assert_clean(xc, """int main() {
            Matrix int <1> v = init(Matrix int <1>, 4);
            Matrix int <1> r = v % 3;
            return 0;
        }""")

    def test_unary_minus_on_bool_matrix_rejected(self, xc):
        assert_error(xc, """int main() {
            Matrix bool <1> b = init(Matrix bool <1>, 4) > 0;
            Matrix bool <1> c = -b;
            return 0;
        }""", "invalid operand to unary '-'")


class TestMatrixMapChecks:
    def test_dims_must_be_literals(self, xc):
        assert_error(xc, """
        Matrix float <1> f(Matrix float <1> v) { return v; }
        int main() {
            Matrix float <2> m = init(Matrix float <2>, 2, 2);
            int d = 1;
            Matrix float <2> r = matrixMap(f, m, [d]);
            return 0;
        }""", "must be integer literals")

    def test_dims_must_increase(self, xc):
        assert_error(xc, """
        Matrix float <2> f(Matrix float <2> v) { return v; }
        int main() {
            Matrix float <3> m = init(Matrix float <3>, 2, 2, 2);
            Matrix float <3> r = matrixMap(f, m, [1, 0]);
            return 0;
        }""", "strictly increasing")

    def test_dims_in_range(self, xc):
        assert_error(xc, """
        Matrix float <1> f(Matrix float <1> v) { return v; }
        int main() {
            Matrix float <2> m = init(Matrix float <2>, 2, 2);
            Matrix float <2> r = matrixMap(f, m, [5]);
            return 0;
        }""", "out of range")

    def test_function_signature_checked(self, xc):
        assert_error(xc, """
        Matrix float <2> f(Matrix float <2> v) { return v; }
        int main() {
            Matrix float <3> m = init(Matrix float <3>, 2, 2, 2);
            Matrix float <3> r = matrixMap(f, m, [1]);
            return 0;
        }""", "matrixMap function 'f' has type")

    def test_unknown_function(self, xc):
        assert_error(xc, """int main() {
            Matrix float <2> m = init(Matrix float <2>, 2, 2);
            Matrix float <2> r = matrixMap(g, m, [0]);
            return 0;
        }""", "matrixMap of undeclared function 'g'")

    def test_elem_changing_function_ok(self, xc):
        assert_clean(xc, """
        Matrix int <1> f(Matrix float <1> v) { return init(Matrix int <1>, dimSize(v, 0)); }
        int main() {
            Matrix float <2> m = init(Matrix float <2>, 2, 2);
            Matrix int <2> r = matrixMap(f, m, [1]);
            return 0;
        }""")


class TestInitChecks:
    def test_init_dim_count(self, xc):
        assert_error(xc, "int main() { Matrix float <2> m = init(Matrix float <2>, 4); return 0; }",
                     "init of rank-2 matrix with 1 dimension(s)")

    def test_init_non_matrix(self, xc):
        assert_error(xc, "int main() { int x = init(int, 4); return 0; }",
                     "init of non-matrix type")

    def test_init_float_dim(self, xc):
        assert_error(xc, "int main() { Matrix float <1> m = init(Matrix float <1>, 2.5); return 0; }",
                     "init dimension has type float")
