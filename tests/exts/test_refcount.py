"""E-RC: reference-counting memory management (§III-B).

Every program path — assignments, reassignments, tuples, early returns,
breaks, slice temporaries, nested with-loops — must end with every
allocation freed exactly once (interpreter stats: allocs == frees), and
freed storage must never be touched again (the interpreter poisons it).
"""

import numpy as np
import pytest


def leak_of(xc, src, inputs=None, nthreads=1):
    rc, _outs, interp = xc.run(src, inputs or {}, [], nthreads=nthreads)
    assert rc == 0
    return interp.stats.leaked, interp.stats


V = 'Matrix float <1> v = init(Matrix float <1>, 8);'


class TestBasicOwnership:
    def test_init_then_scope_exit(self, xc):
        leaked, stats = leak_of(xc, f"int main() {{ {V} return 0; }}")
        assert leaked == 0 and stats.allocs == 1

    def test_alias_assignment_shares(self, xc):
        leaked, stats = leak_of(xc, f"""int main() {{
            {V}
            Matrix float <1> w = v;
            return 0;
        }}""")
        assert leaked == 0 and stats.allocs == 1

    def test_reassignment_frees_old(self, xc):
        leaked, stats = leak_of(xc, f"""int main() {{
            {V}
            v = init(Matrix float <1>, 4);
            v = init(Matrix float <1>, 2);
            return 0;
        }}""")
        assert leaked == 0 and stats.allocs == 3

    def test_self_assignment(self, xc):
        leaked, _ = leak_of(xc, f"""int main() {{
            {V}
            v = v;
            return 0;
        }}""")
        assert leaked == 0

    def test_expression_temp_freed(self, xc):
        leaked, stats = leak_of(xc, f"""int main() {{
            {V}
            float x = (v + v)[0];
            return 0;
        }}""")
        assert leaked == 0

    def test_chained_temps_freed(self, xc):
        leaked, stats = leak_of(xc, f"""int main() {{
            {V}
            Matrix float <1> w = (v + 1.0) .* (v - 1.0) + (v / 2.0);
            return 0;
        }}""")
        assert leaked == 0

    def test_unused_call_result_freed(self, xc):
        leaked, _ = leak_of(xc, """
        Matrix float <1> make() { return init(Matrix float <1>, 4); }
        int main() { make(); return 0; }
        """)
        assert leaked == 0


class TestFunctionBoundaries:
    def test_returned_local_survives(self, xc):
        leaked, _ = leak_of(xc, """
        Matrix float <1> make() {
            Matrix float <1> local = init(Matrix float <1>, 4);
            local[0] = 42.0;
            return local;
        }
        int main() {
            Matrix float <1> got = make();
            float check = got[0];
            return 0;
        }
        """)
        assert leaked == 0

    def test_param_borrowing(self, xc):
        leaked, _ = leak_of(xc, """
        float head(Matrix float <1> v) { return v[0]; }
        int main() {
            Matrix float <1> v = init(Matrix float <1>, 4);
            float a = head(v);
            float b = head(v);
            return 0;
        }
        """)
        assert leaked == 0

    def test_temp_passed_as_argument(self, xc):
        leaked, _ = leak_of(xc, """
        float head(Matrix float <1> v) { return v[0]; }
        int main() {
            Matrix float <1> v = init(Matrix float <1>, 4);
            float a = head(v + 1.0);
            return 0;
        }
        """)
        assert leaked == 0

    def test_early_return_frees_locals(self, xc):
        leaked, _ = leak_of(xc, """
        int f(int flag) {
            Matrix float <1> big = init(Matrix float <1>, 100);
            if (flag > 0) return 1;
            return 0;
        }
        int main() { f(1); f(0); return 0; }
        """)
        assert leaked == 0

    def test_return_param_incs(self, xc):
        leaked, _ = leak_of(xc, """
        Matrix float <1> ident(Matrix float <1> v) { return v; }
        int main() {
            Matrix float <1> v = init(Matrix float <1>, 4);
            Matrix float <1> w = ident(v);
            return 0;
        }
        """)
        assert leaked == 0

    def test_matrix_through_multiple_calls(self, xc):
        leaked, _ = leak_of(xc, """
        Matrix float <1> bump(Matrix float <1> v) { return v + 1.0; }
        int main() {
            Matrix float <1> v = init(Matrix float <1>, 4);
            Matrix float <1> w = bump(bump(bump(v)));
            return 0;
        }
        """)
        assert leaked == 0


class TestControlFlowPaths:
    def test_break_frees_loop_locals(self, xc):
        leaked, _ = leak_of(xc, """
        int main() {
            for (int i = 0; i < 5; i = i + 1) {
                Matrix float <1> tmp = init(Matrix float <1>, 8);
                if (i == 2) break;
            }
            return 0;
        }
        """)
        assert leaked == 0

    def test_loop_body_locals_freed_each_iteration(self, xc):
        leaked, stats = leak_of(xc, """
        int main() {
            for (int i = 0; i < 5; i = i + 1) {
                Matrix float <1> tmp = init(Matrix float <1>, 8);
                tmp[0] = (float) i;
            }
            return 0;
        }
        """)
        assert leaked == 0 and stats.allocs == 5

    def test_declared_null_then_conditionally_assigned(self, xc):
        leaked, _ = leak_of(xc, """
        int main() {
            Matrix float <1> maybe;
            if (1 < 2) maybe = init(Matrix float <1>, 3);
            return 0;
        }
        """)
        assert leaked == 0

    def test_never_assigned_is_fine(self, xc):
        leaked, _ = leak_of(xc, """
        int main() {
            Matrix float <1> never;
            return 0;
        }
        """)
        assert leaked == 0


class TestTuplesAndSlices:
    def test_tuple_with_matrix_component(self, xc):
        leaked, _ = leak_of(xc, """
        (Matrix float <1>, int) pair() {
            return (init(Matrix float <1>, 4), 7);
        }
        int main() {
            Matrix float <1> m;
            int k = 0;
            (m, k) = pair();
            return 0;
        }
        """)
        assert leaked == 0

    def test_tuple_reassignment_in_loop(self, xc):
        """The Fig 8 pattern: (trough, beginning, i) = getTrough(...) in a
        loop — the previous trough must be freed each time."""
        leaked, stats = leak_of(xc, """
        (Matrix float <1>, int) pair(int n) {
            return (init(Matrix float <1>, n), n);
        }
        int main() {
            Matrix float <1> m;
            int k = 0;
            for (int i = 1; i < 5; i = i + 1) {
                (m, k) = pair(i);
            }
            return 0;
        }
        """)
        assert leaked == 0 and stats.allocs == 4

    def test_tuple_of_borrowed_var(self, xc):
        leaked, _ = leak_of(xc, """
        int main() {
            Matrix float <1> v = init(Matrix float <1>, 4);
            (Matrix float <1>, int) t = (v, 1);
            Matrix float <1> w;
            int k = 0;
            (w, k) = t;
            return 0;
        }
        """)
        assert leaked == 0

    def test_slice_read_temp_freed(self, xc):
        leaked, _ = leak_of(xc, """
        int main() {
            Matrix float <2> m = init(Matrix float <2>, 4, 6);
            Matrix float <1> row = m[1, :];
            float x = m[2, 0:3][1];
            return 0;
        }
        """)
        assert leaked == 0

    def test_slice_write_rhs_temp_freed(self, xc):
        leaked, _ = leak_of(xc, """
        int main() {
            Matrix float <1> d = init(Matrix float <1>, 10);
            d[2 : 5] = (0 :: 3) * 1.0;
            return 0;
        }
        """)
        assert leaked == 0

    def test_logical_index_temps_freed(self, xc):
        leaked, _ = leak_of(xc, """
        int main() {
            Matrix float <2> m = init(Matrix float <2>, 4, 6);
            Matrix int <1> v = init(Matrix int <1>, 4);
            Matrix float <2> s = m[v % 2 == 1, :];
            return 0;
        }
        """)
        assert leaked == 0


class TestWithLoopsAndMaps:
    def test_with_loop_temp_in_expression(self, xc):
        leaked, _ = leak_of(xc, """
        int main() {
            float x = (with ([0] <= [i] < [4]) genarray([4], 1.0))[2];
            return 0;
        }
        """)
        assert leaked == 0

    def test_fused_assignment_no_leak(self, xc):
        leaked, _ = leak_of(xc, """
        int main() {
            Matrix float <2> m = init(Matrix float <2>, 3, 3);
            m = with ([0,0] <= [i,j] < [3,3]) genarray([3,3], 1.0);
            m = with ([0,0] <= [i,j] < [3,3]) genarray([3,3], 2.0);
            return 0;
        }
        """)
        assert leaked == 0

    def test_matrixmap_slices_freed(self, xc):
        leaked, stats = leak_of(xc, """
        Matrix float <1> f(Matrix float <1> v) { return v + 1.0; }
        int main() {
            Matrix float <2> m = init(Matrix float <2>, 4, 5);
            Matrix float <2> r = matrixMap(f, m, [1]);
            return 0;
        }
        """)
        assert leaked == 0

    def test_fig8_whole_program_balance(self, xc):
        from repro.programs import load

        t = np.linspace(0, 2 * np.pi, 16, dtype=np.float32)
        data = np.tile(np.cos(t), (2, 2, 1)).astype(np.float32)
        rc, _outs, interp = xc.run(load("fig8"), {"ssh.data": data},
                                   ["temporalScores.data"])
        assert rc == 0
        assert interp.stats.leaked == 0

    def test_fig4_whole_program_balance(self, xc):
        from repro.programs import load

        rng = np.random.default_rng(2)
        ssh = rng.normal(0.1, 0.4, (6, 7, 4)).astype(np.float32)
        dates = np.array([1011999, 1012000, 1012001, 1012002], dtype=np.int32)
        rc, _outs, interp = xc.run(load("fig4"),
                                   {"ssh.data": ssh, "dates.data": dates},
                                   ["eddyLabels.data"])
        assert rc == 0
        assert interp.stats.leaked == 0


class TestUseAfterFreeDetection:
    def test_freed_storage_poisoned(self, xc):
        """The interpreter empties freed buffers, so a lowering bug that
        reads freed memory raises instead of silently succeeding."""
        # A correct program never triggers this; verify the mechanism via
        # the interpreter API directly.
        from repro.cexec.interp import Interpreter, RTMat
        import numpy as np

        m = RTMat("f", (4,), np.zeros(4, dtype=np.float32))
        interp = Interpreter.__new__(Interpreter)
        from repro.cexec.interp import InterpStats
        interp.stats = InterpStats()
        interp._rc_dec(m)
        with pytest.raises(IndexError):
            m.data[2]

    def test_double_free_detected(self, xc):
        from repro.cexec.interp import Interpreter, InterpStats, RTMat, RuntimeTrap
        import numpy as np

        m = RTMat("f", (4,), np.zeros(4, dtype=np.float32))
        interp = Interpreter.__new__(Interpreter)
        interp.stats = InterpStats()
        interp._rc_dec(m)
        with pytest.raises(RuntimeTrap, match="underflow"):
            interp._rc_dec(m)
