"""matrixMap semantics (§III-A.5) including the Fig 5 equivalence."""

import numpy as np
import pytest


def run_out(xc, src, inputs=None, out="out.data", nthreads=1):
    rc, outs, interp = xc.run(src, inputs or {}, [out], nthreads=nthreads)
    assert rc == 0
    return outs[out], interp


NEGATE = """
Matrix float <2> neg(Matrix float <2> s) {
    int m = dimSize(s, 0);
    int n = dimSize(s, 1);
    Matrix float <2> r = init(Matrix float <2>, m, n);
    r = with ([0,0] <= [i,j] < [m,n]) genarray([m,n], -s[i,j]);
    return r;
}
"""


class TestMatrixMap:
    def test_map_over_last_dim(self, xc):
        """Map a 1-D function over dim 2 (the Fig 8 pattern)."""
        a = np.random.default_rng(0).normal(0, 1, (3, 4, 6)).astype(np.float32)
        src = """
        Matrix float <1> cumsumish(Matrix float <1> v) {
            int n = dimSize(v, 0);
            Matrix float <1> r = init(Matrix float <1>, n);
            float acc = 0.0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + v[i];
                r[i] = acc;
            }
            return r;
        }
        int main() {
            Matrix float <3> d = readMatrix("in.data");
            Matrix float <3> out = matrixMap(cumsumish, d, [2]);
            writeMatrix("out.data", out);
            return 0;
        }
        """
        out, interp = run_out(xc, src, {"in.data": a})
        assert np.allclose(out, np.cumsum(a, axis=2), atol=1e-4)
        assert interp.stats.leaked == 0

    def test_fig5_equivalence(self, xc):
        """Fig 4's matrixMap over [0,1] equals Fig 5's explicit loop:
        for t: result[:, :, t] = f(ssh[:, :, t])."""
        a = np.random.default_rng(1).normal(0, 1, (4, 5, 3)).astype(np.float32)
        map_src = NEGATE + """
        int main() {
            Matrix float <3> ssh = readMatrix("in.data");
            Matrix float <3> result = matrixMap(neg, ssh, [0, 1]);
            writeMatrix("out.data", result);
            return 0;
        }
        """
        loop_src = NEGATE + """
        int main() {
            Matrix float <3> ssh = readMatrix("in.data");
            Matrix float <3> result = init(Matrix float <3>,
                dimSize(ssh, 0), dimSize(ssh, 1), dimSize(ssh, 2));
            for (int t = 0; t < dimSize(ssh, 2); t = t + 1) {
                result[:, :, t] = neg(ssh[:, :, t]);
            }
            writeMatrix("out.data", result);
            return 0;
        }
        """
        got_map, _ = run_out(xc, map_src, {"in.data": a})
        got_loop, _ = run_out(xc, loop_src, {"in.data": a})
        assert np.allclose(got_map, got_loop)
        assert np.allclose(got_map, -a)

    def test_map_over_first_dim(self, xc):
        a = np.random.default_rng(2).normal(0, 1, (5, 3, 4)).astype(np.float32)
        src = """
        Matrix float <1> reverse(Matrix float <1> v) {
            int n = dimSize(v, 0);
            Matrix float <1> r = init(Matrix float <1>, n);
            r = with ([0] <= [i] < [n]) genarray([n], v[n - 1 - i]);
            return r;
        }
        int main() {
            Matrix float <3> d = readMatrix("in.data");
            Matrix float <3> out = matrixMap(reverse, d, [0]);
            writeMatrix("out.data", out);
            return 0;
        }
        """
        out, _ = run_out(xc, src, {"in.data": a})
        assert np.allclose(out, a[::-1, :, :])

    def test_map_preserves_shape(self, xc):
        """§III-A.5: "the result is always the same size and rank"."""
        a = np.random.default_rng(3).normal(0, 1, (2, 6)).astype(np.float32)
        src = """
        Matrix float <1> ident(Matrix float <1> v) { return v + 0.0; }
        int main() {
            Matrix float <2> d = readMatrix("in.data");
            Matrix float <2> out = matrixMap(ident, d, [1]);
            writeMatrix("out.data", out);
            return 0;
        }
        """
        out, _ = run_out(xc, src, {"in.data": a})
        assert out.shape == a.shape
        assert np.allclose(out, a)

    def test_elem_changing_map(self, xc):
        """Fig 4: connComp maps float SSH to int labels."""
        a = np.random.default_rng(4).normal(0, 1, (3, 4)).astype(np.float32)
        src = """
        Matrix int <1> signs(Matrix float <1> v) {
            int n = dimSize(v, 0);
            Matrix int <1> r = init(Matrix int <1>, n);
            for (int i = 0; i < n; i = i + 1) {
                if (v[i] > 0.0) r[i] = 1;
                else r[i] = 0;
            }
            return r;
        }
        int main() {
            Matrix float <2> d = readMatrix("in.data");
            Matrix int <2> out = matrixMap(signs, d, [1]);
            writeMatrix("out.data", out);
            return 0;
        }
        """
        out, _ = run_out(xc, src, {"in.data": a})
        assert (out == (a > 0).astype(int)).all()

    def test_result_shape_mismatch_traps(self, xc):
        from repro.cexec import RuntimeTrap

        a = np.random.default_rng(5).normal(0, 1, (2, 4)).astype(np.float32)
        src = """
        Matrix float <1> shrink(Matrix float <1> v) {
            return init(Matrix float <1>, 2);
        }
        int main() {
            Matrix float <2> d = readMatrix("in.data");
            Matrix float <2> out = matrixMap(shrink, d, [1]);
            writeMatrix("out.data", out);
            return 0;
        }
        """
        with pytest.raises(RuntimeTrap, match="matrixMap"):
            xc.run(src, {"in.data": a}, [])

    def test_parallel_chunks_cover_everything(self, xc):
        """The lifted worker must be chunk-correct for any thread count."""
        a = np.arange(60, dtype=np.float32).reshape(3, 4, 5)
        src = NEGATE.replace("<2>", "<1>").replace(
            "int n = dimSize(s, 1);\n", ""
        )  # not used; build a simpler 1-D function inline below
        src = """
        Matrix float <1> twice(Matrix float <1> v) { return v + v; }
        int main() {
            Matrix float <3> d = readMatrix("in.data");
            Matrix float <3> out = matrixMap(twice, d, [2]);
            writeMatrix("out.data", out);
            return 0;
        }
        """
        for nt in (1, 2, 3, 7):
            out, interp = run_out(xc, src, {"in.data": a}, nthreads=nt)
            assert np.allclose(out, 2 * a), f"nthreads={nt}"
            assert interp.stats.parallel_regions == 1
