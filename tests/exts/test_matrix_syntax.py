"""E-F2: with-loop and matrix concrete syntax — accept/reject suite."""

import pytest

from repro.lexing import ScanError
from repro.parsing import ParseError

GOOD = [
    # Matrix types (Fig 1 line 2)
    "int main() { Matrix float <3> m = readMatrix(\"x.data\"); return 0; }",
    "int main() { Matrix int <1> v = init(Matrix int <1>, 4); return 0; }",
    "int main() { Matrix bool <2> b = init(Matrix bool <2>, 2, 2); return 0; }",
    # with-loops (Fig 2 syntax)
    """int main() {
        Matrix float <2> m = init(Matrix float <2>, 4, 4);
        m = with ([0,0] <= [i,j] < [4,4]) genarray([4,4], 1.0);
        return 0;
    }""",
    """int main() {
        float s = with ([0] <= [k] < [10]) fold(+, 0.0, 1.0);
        return 0;
    }""",
    "int main() { float s = with ([1] < [k] <= [9]) fold(*, 1.0, 2.0); return 0; }",
    "int main() { float s = with ([0] <= [k] < [5]) fold(max, 0.0, 1.0); return 0; }",
    "int main() { float s = with ([0] <= [k] < [5]) fold(min, 9.0, 1.0); return 0; }",
    # matrixMap (Fig 4)
    """Matrix float <1> f(Matrix float <1> v) { return v; }
    int main() {
        Matrix float <2> m = init(Matrix float <2>, 3, 4);
        Matrix float <2> r = matrixMap(f, m, [1]);
        return 0;
    }""",
    # indexing variants (§III-A.3)
    "int main() { Matrix float <3> d = readMatrix(\"d\"); float x = d[6, 4, 1]; return 0; }",
    "int main() { Matrix float <3> d = readMatrix(\"d\"); Matrix float <3> s = d[0:4, end-4:end, 0:4]; return 0; }",
    "int main() { Matrix float <3> d = readMatrix(\"d\"); Matrix float <1> v = d[0, end, :]; return 0; }",
    # `with` as identifier is impossible (keyword), but prefixes are fine:
    "int main() { int withx = 1; int ends = 2; return withx + ends; }",
]

BAD = [
    # bad rank literal
    "int main() { Matrix float <x> m = readMatrix(\"d\"); return 0; }",
    # missing operation
    "int main() { float s = with ([0] <= [k] < [5]); return 0; }",
    # missing generator brackets
    "int main() { float s = with (0 <= k < 5) fold(+, 0.0, 1.0); return 0; }",
    # fold with missing neutral
    "int main() { float s = with ([0] <= [k] < [5]) fold(+, 1.0); return 0; }",
    # genarray without shape
    "int main() { float s = with ([0] <= [k] < [5]) genarray(1.0); return 0; }",
    # bad fold operator
    "int main() { float s = with ([0] <= [k] < [5]) fold(-, 0.0, 1.0); return 0; }",
    # matrixMap with non-literal dim list syntax
    "int main() { Matrix float <2> m = init(Matrix float <2>, 2, 2); Matrix float <2> r = matrixMap(f, m, 1); return 0; }",
    # init without type
    "int main() { Matrix int <1> v = init(4); return 0; }",
]


@pytest.mark.parametrize("src", GOOD, ids=[f"good{i}" for i in range(len(GOOD))])
def test_accepts(matrix_translator, src):
    matrix_translator.parse(src)


@pytest.mark.parametrize("src", BAD, ids=[f"bad{i}" for i in range(len(BAD))])
def test_rejects(matrix_translator, src):
    with pytest.raises((ParseError, ScanError)):
        matrix_translator.parse(src)


class TestContextAwareKeywords:
    """§VI-A: extension keywords stay usable as host identifiers where the
    extension construct cannot appear."""

    def test_max_min_as_variables(self, matrix_translator):
        matrix_translator.parse(
            "int main() { int max = 1; int min = 2; return max + min; }"
        )

    def test_fold_genarray_as_variables(self, matrix_translator):
        matrix_translator.parse(
            "int main() { int fold = 1; int genarray = 2; return fold + genarray; }"
        )

    def test_max_in_fold_context_is_keyword(self, matrix_translator):
        matrix_translator.parse(
            "int main() { int max = 3; float s = with ([0] <= [k] < [5]) "
            "fold(max, 0.0, 1.0); return max; }"
        )

    def test_transform_keywords_free_without_extension(self, matrix_translator):
        # `transform`, `split`, ... are not declared by the matrix-only
        # translator, so they are plain identifiers.
        matrix_translator.parse(
            "int main() { int transform = 1; int split = 2; return transform + split; }"
        )

    def test_transform_keywords_as_identifiers_with_extension(self, full_translator):
        # even with the transform extension composed, context-aware
        # scanning keeps them usable as identifiers
        full_translator.parse(
            "int main() { int split = 2; int vectorize = 3; return split * vectorize; }"
        )


class TestTransformSyntax:
    """E-F9: the Fig 9 clause list parses (transform extension composed)."""

    def test_fig9_clauses(self, full_translator):
        full_translator.parse("""
        int main() {
            Matrix float <2> means = init(Matrix float <2>, 4, 4);
            means = with ([0,0] <= [i,j] < [4,4])
                genarray([4,4], 1.0)
                transform split j by 4, jin, jout.
                          vectorize jin.
                          parallelize i;
            return 0;
        }
        """)

    def test_all_clause_kinds(self, full_translator):
        full_translator.parse("""
        int main() {
            Matrix float <2> m = init(Matrix float <2>, 8, 8);
            m = with ([0,0] <= [i,j] < [8,8]) genarray([8,8], 1.0)
                transform tile i j by 4 4.
                          reorder (i_out, j_out, i_in, j_in).
                          unroll j_in by 2;
            return 0;
        }
        """)

    def test_interchange(self, full_translator):
        full_translator.parse("""
        int main() {
            Matrix float <2> m = init(Matrix float <2>, 4, 4);
            m = with ([0,0] <= [i,j] < [4,4]) genarray([4,4], 1.0)
                transform interchange i j;
            return 0;
        }
        """)

    def test_transform_without_extension_rejected(self, matrix_translator):
        with pytest.raises((ParseError, ScanError)):
            matrix_translator.parse("""
            int main() {
                Matrix float <2> m = init(Matrix float <2>, 4, 4);
                m = with ([0,0] <= [i,j] < [4,4]) genarray([4,4], 1.0)
                    transform parallelize i;
                return 0;
            }
            """)
