"""The Cilk-style extension (the paper's §VIII future work)."""

import numpy as np
import pytest

from repro.cexec import gcc_available
from repro.lexing import ScanError
from repro.parsing import ParseError


@pytest.fixture()
def xck(tmp_path):
    from tests.conftest import XCRunner

    return XCRunner(tmp_path, ("cilk",))


FIB = """
int fib(int n) {
    if (n < 2) return n;
    int a = 0;
    int b = 0;
    spawn a = fib(n - 1);
    spawn b = fib(n - 2);
    sync;
    return a + b;
}
int main() {
    int r = 0;
    spawn r = fib(12);
    sync;
    return r;
}
"""


class TestSyntax:
    def test_spawn_statement(self, xck):
        assert xck.check("""
            void work(int x) { printInt(x); }
            int main() { spawn work(3); sync; return 0; }
        """) == []

    def test_spawn_assign(self, xck):
        assert xck.check(FIB) == []

    def test_spawn_as_identifier_elsewhere(self, xck):
        # context-aware scanning: `spawn`/`sync` are usable variable names
        assert xck.check(
            "int main() { int spawn = 1; int sync = 2; return spawn + sync; }"
        ) == []

    def test_spawn_requires_extension(self, xc):
        with pytest.raises((ParseError, ScanError)):
            xc.translator.parse("int main() { spawn f(); sync; return 0; }")


class TestSema:
    def err(self, xck, src, fragment):
        errs = xck.check(src)
        assert any(fragment in e for e in errs), errs

    def test_unknown_callee(self, xck):
        self.err(xck, "int main() { spawn nope(1); sync; return 0; }",
                 "spawn of undeclared function 'nope'")

    def test_arity_checked(self, xck):
        self.err(xck, """
            int f(int a) { return a; }
            int main() { spawn f(1, 2); sync; return 0; }
        """, "expects 1 arguments, got 2")

    def test_arg_type_checked(self, xck):
        self.err(xck, """
            int f(int a) { return a; }
            (int, int) p() { return (1, 2); }
            int main() { (int, int) t = p(); spawn f(t); sync; return 0; }
        """, "argument 1 of spawned 'f'")

    def test_void_result_rejected_in_assign_form(self, xck):
        self.err(xck, """
            void f() { }
            int main() { int r = 0; spawn r = f(); sync; return r; }
        """, "returns void")

    def test_result_type_checked(self, xck):
        self.err(xck, """
            float f() { return 1.5; }
            int main() { bool r = false; spawn r = f(); sync; return 0; }
        """, "cannot receive spawned")

    def test_matrix_temp_argument_rejected(self, tmp_path):
        """A matrix-valued temporary spawned as an argument would be freed
        by the refcount drain while the task reads it (found by ASan on
        the native backend) — so it is a compile-time error."""
        from tests.conftest import XCRunner

        xc = XCRunner(tmp_path, ("matrix", "cilk"))
        errs = xc.check("""
            float head(Matrix float <1> v) { return v[0]; }
            int main() {
                Matrix float <1> a = init(Matrix float <1>, 4);
                float r = 0.0;
                spawn r = head(a + 1.0);
                sync;
                return 0;
            }
        """)
        assert any("bind it to a variable" in e for e in errs), errs
        # the variable form is fine
        assert xc.check("""
            float head(Matrix float <1> v) { return v[0]; }
            int main() {
                Matrix float <1> a = init(Matrix float <1>, 4);
                float r = 0.0;
                spawn r = head(a);
                sync;
                return 0;
            }
        """) == []

    def test_spawn_target_must_be_var(self, xck):
        self.err(xck, """
            int f() { return 1; }
            int main() {
                Matrix int <1> v = init(Matrix int <1>, 4);
                spawn v[0] = f();
                sync;
                return 0;
            }
        """, "must be a variable") if False else None
        # matrix ext not composed here; use a simpler non-var target
        self.err(xck, """
            int f() { return 1; }
            int main() { (int, int) t = (1, 2); spawn t = f(); sync; return 0; }
        """, "")


class TestExecution:
    def test_fib_interpreted(self, xck):
        rc, _outs, interp = xck.run(FIB)
        assert rc == 144
        assert interp.stats.tasks_spawned > 100

    def test_spawn_side_effect(self, xck):
        rc, _outs, interp = xck.run("""
            void report(int x) { printInt(x * 2); }
            int main() { spawn report(21); sync; return 0; }
        """)
        assert rc == 0 and interp.stdout == ["42"]

    @pytest.mark.skipif(not gcc_available(), reason="gcc not available")
    def test_fib_native(self):
        from repro.cexec import compile_and_run

        native = compile_and_run(FIB, ["cilk"], check=False)
        assert native.returncode == 144

    @pytest.mark.skipif(not gcc_available(), reason="gcc not available")
    def test_native_parallel_sum(self):
        """Many independent spawns writing distinct slots, then sync."""
        from repro.cexec import compile_and_run

        src = """
        int square(int x) { return x * x; }
        int main() {
            int a = 0; int b = 0; int c = 0; int d = 0;
            spawn a = square(1);
            spawn b = square(2);
            spawn c = square(3);
            spawn d = square(4);
            sync;
            return a + b + c + d;
        }
        """
        native = compile_and_run(src, ["cilk"], check=False)
        assert native.returncode == 30

    @pytest.mark.skipif(not gcc_available(), reason="gcc not available")
    def test_deep_recursion_no_deadlock(self):
        """Nested spawn/sync beyond the live-task cap must complete
        (saturated spawns run inline; frame-local sync cannot deadlock)."""
        from repro.cexec import compile_and_run

        src = FIB.replace("fib(12)", "fib(17)").replace(
            "return r;", "printInt(r); return 0;"
        )
        native = compile_and_run(src, ["cilk"], check=False)
        assert native.returncode == 0
        assert native.stdout.splitlines()[0] == "1597"


class TestComposability:
    def test_cilk_passes_mda(self):
        from repro.api import module_registry
        from repro.mda import is_composable

        reg = module_registry()
        report = is_composable(reg["cminus"].grammar, reg["cilk"].grammar,
                               prefer_shift=reg["cminus"].prefer_shift)
        assert report.passed, str(report)

    def test_cilk_composes_with_matrix_and_transform(self):
        from repro.api import module_registry
        from repro.mda import verify_composition_theorem

        reg = module_registry()
        assert verify_composition_theorem(
            reg["cminus"].grammar,
            [reg["matrix"].grammar, reg["transform"].grammar,
             reg["cilk"].grammar],
            prefer_shift=reg["cminus"].prefer_shift,
        )

    def test_cilk_with_matrix_program(self, tmp_path):
        """All three extension families in one program."""
        from tests.conftest import XCRunner

        xc = XCRunner(tmp_path, ("matrix", "cilk"))
        src = """
        float total(Matrix float <1> v) {
            return with ([0] <= [i] < [dimSize(v, 0)]) fold(+, 0.0, v[i]);
        }
        int main() {
            Matrix float <1> a = (0 :: 9) * 1.0;
            Matrix float <1> b = (10 :: 19) * 1.0;
            float sa = 0.0;
            float sb = 0.0;
            spawn sa = total(a);
            spawn sb = total(b);
            sync;
            printFloat(sa + sb);
            return 0;
        }
        """
        rc, _outs, interp = xc.run(src)
        assert rc == 0
        assert interp.stdout == ["190"]
        assert interp.stats.leaked == 0

    def test_cilk_mwda(self):
        from repro.ag import check_well_definedness
        from repro.api import module_registry

        reg = module_registry()
        composed = reg["cminus"].ag.compose(reg["cilk"].ag)
        report = check_well_definedness(composed, module="cilk")
        assert report.passed, str(report)
