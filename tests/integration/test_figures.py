"""Integration: every paper figure's program runs end-to-end and agrees
with its oracle (see DESIGN.md's experiment index; the generated-code
*shape* assertions additionally live in benchmarks/)."""

import numpy as np
import pytest

from repro.eddy import conn_comp, synthetic_ssh, temporal_mean, temporal_scores
from repro.programs import load


@pytest.fixture(scope="module")
def cube():
    return np.random.default_rng(42).normal(0, 0.5, (6, 8, 12)).astype(np.float32)


class TestFig1:
    def test_temporal_mean(self, xc, cube):
        rc, outs, interp = xc.run(load("fig1"), {"ssh.data": cube}, ["means.data"])
        assert rc == 0
        assert np.allclose(outs["means.data"], temporal_mean(cube), atol=1e-5)
        assert interp.stats.leaked == 0


class TestFig3Shape:
    """The Fig 1 -> Fig 3 translation: fused loops, no temp, no slice."""

    def test_no_copy_no_temp_no_slice(self, xc, cube):
        rc, _outs, interp = xc.run(load("fig1"), {"ssh.data": cube}, [])
        assert rc == 0
        # exactly two allocations: readMatrix + init; the with-loop writes
        # into `means` directly, and the fold iterates mat without a slice
        assert interp.stats.allocs == 2
        assert interp.stats.copies == 0

    def test_library_baseline_copies(self, tmp_path, cube):
        from tests.conftest import XCRunner

        xc_off = XCRunner(tmp_path, ("matrix",),
                          fuse_assignment=False, eliminate_slices=False)
        rc, outs, interp = xc_off.run(load("fig1"), {"ssh.data": cube},
                                      ["means.data"])
        assert rc == 0
        # library emulation: a with-loop temp is materialized and copied,
        # and each (i,j) materializes a p-slice
        assert interp.stats.copies == 1
        assert interp.stats.allocs > 2 + cube.shape[0] * cube.shape[1]
        assert np.allclose(outs["means.data"], temporal_mean(cube), atol=1e-5)
        assert interp.stats.leaked == 0


class TestFig4:
    def test_conncomp_pipeline(self, xc):
        rng = np.random.default_rng(9)
        ssh = rng.normal(0.2, 0.5, (8, 9, 5)).astype(np.float32)
        dates = np.array([1011990, 1012000, 1012010, 1012020, 1012030],
                         dtype=np.int32)
        rc, outs, interp = xc.run(load("fig4"),
                                  {"ssh.data": ssh, "dates.data": dates},
                                  ["eddyLabels.data"])
        assert rc == 0
        labels = outs["eddyLabels.data"]
        assert labels.shape == (8, 9, 4)  # one frame filtered out
        for out_t, src_t in enumerate(range(1, 5)):
            assert (labels[:, :, out_t] == conn_comp(ssh[:, :, src_t])).all()
        assert interp.stats.leaked == 0


class TestFig8:
    def test_eddy_scoring_matches_reference(self, xc):
        data = synthetic_ssh((5, 6, 32), n_eddies=2, seed=21)
        rc, outs, interp = xc.run(load("fig8"), {"ssh.data": data.cube},
                                  ["temporalScores.data"])
        assert rc == 0
        got = outs["temporalScores.data"]
        assert np.allclose(got, temporal_scores(data.cube), atol=1e-3)
        assert interp.stats.leaked == 0

    def test_scores_rank_eddies_over_noise(self, xc):
        data = synthetic_ssh((10, 12, 48), n_eddies=2, seed=33)
        rc, outs, _ = xc.run(load("fig8"), {"ssh.data": data.cube},
                             ["temporalScores.data"])
        scores = outs["temporalScores.data"].max(axis=2)
        mask = data.eddy_mask()
        if mask.any() and (~mask).any():
            assert scores[mask].mean() > 3 * scores[~mask].mean()


class TestFig9:
    def test_transformed_program_same_answer(self, xct, cube):
        # 8 columns: divisible by the split factor 4
        c = np.random.default_rng(3).normal(0, 1, (6, 8, 10)).astype(np.float32)
        rc, outs, _ = xct.run(load("fig9"), {"ssh.data": c}, ["means.data"])
        assert rc == 0
        assert np.allclose(outs["means.data"], temporal_mean(c), atol=1e-4)


class TestBackendsAgree:
    """Interpreter and gcc produce identical outputs for the programs."""

    @pytest.mark.parametrize("fig,exts,inputs,outname", [
        ("fig1", ("matrix",), None, "means.data"),
        ("fig8", ("matrix",), None, "temporalScores.data"),
        ("fig9", ("matrix", "transform"), None, "means.data"),
    ])
    def test_native_equals_interpreted(self, tmp_path, fig, exts, inputs, outname):
        from repro.cexec import compile_and_run, gcc_available
        from tests.conftest import XCRunner

        if not gcc_available():
            pytest.skip("gcc not available")
        cube = np.random.default_rng(7).normal(0, 0.4, (4, 8, 16)).astype(np.float32)
        src = load(fig)
        xc = XCRunner(tmp_path, exts)
        _rc, outs, _ = xc.run(src, {"ssh.data": cube}, [outname])
        native = compile_and_run(src, list(exts), {"ssh.data": cube},
                                 output_names=[outname], nthreads=2)
        a, b = outs[outname], native.outputs[outname]
        assert a.shape == b.shape
        assert np.allclose(a, b, atol=1e-4)

    def test_fig4_native_equals_interpreted(self, tmp_path):
        from repro.cexec import compile_and_run, gcc_available
        from tests.conftest import XCRunner

        if not gcc_available():
            pytest.skip("gcc not available")
        rng = np.random.default_rng(4)
        ssh = rng.normal(0.1, 0.5, (6, 7, 4)).astype(np.float32)
        dates = np.array([1012000, 1012001, 1011000, 1012002], dtype=np.int32)
        src = load("fig4")
        xc = XCRunner(tmp_path, ("matrix",))
        _rc, outs, _ = xc.run(src, {"ssh.data": ssh, "dates.data": dates},
                              ["eddyLabels.data"])
        native = compile_and_run(src, ["matrix"],
                                 {"ssh.data": ssh, "dates.data": dates},
                                 output_names=["eddyLabels.data"])
        assert (outs["eddyLabels.data"] == native.outputs["eddyLabels.data"]).all()


class TestThreadCountInvariance:
    """Results must not depend on the worker count (determinism of the
    enhanced fork-join parallelization, §III-C)."""

    def test_fig1_native_threads(self):
        from repro.cexec import compile_and_run, gcc_available

        if not gcc_available():
            pytest.skip("gcc not available")
        cube = np.random.default_rng(2).normal(0, 1, (12, 10, 8)).astype(np.float32)
        outs = []
        for nt in (1, 2, 5):
            run = compile_and_run(load("fig1"), ["matrix"], {"ssh.data": cube},
                                  output_names=["means.data"], nthreads=nt)
            outs.append(run.outputs["means.data"])
            assert run.stats.leaked == 0
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])
