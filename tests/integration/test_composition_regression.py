"""Regression gate for the matrix+transform+cilk composition (PR 5 note).

PR 5 recorded a report that this extension combination broke the S24
compiled scanner on ``Matrix float <3>``.  An exhaustive reproduction
hunt (every extension order, fresh vs. cached translators, cold vs.
warm artifact restores, many hash seeds, differential scans over the
corpus) found compiled and interpreted front ends byte-identical
throughout — but a defect reported once deserves a permanent gate, not
a shrug.  This suite pins the behavior at every layer the report
implicated: token streams, parse trees, full compiles, and artifact
round-trips, always comparing the compiled engines against the
interpreted reference.
"""

from __future__ import annotations

import itertools

import pytest

from repro.api import make_translator
from repro.lexing import EOF, ContextAwareScanner
from repro.parsing import Parser
from repro.service.artifacts import ArtifactStore
from repro.service.cache import TranslatorCache

COMBO = ("matrix", "transform", "cilk")

#: ``Matrix float <3>`` in every syntactic position the grammar allows:
#: parameter, local, return type, init() argument, matrixMap target,
#: spawn-call argument — plus a transform clause so all three
#: extensions' terminals are live in one token stream.
PROGRAM = """
float total(Matrix float <3> cube) {
    int a = dimSize(cube, 0);
    int b = dimSize(cube, 1);
    int c = dimSize(cube, 2);
    return with ([0,0,0] <= [i,j,k] < [a,b,c]) fold(+, 0.0, cube[i,j,k]);
}

Matrix float <3> build(int n) {
    Matrix float <3> cube = init(Matrix float <3>, n, n, n);
    cube = with ([0,0,0] <= [i,j,k] < [n,n,n])
        genarray([n,n,n], 1.0 * (i + j + k))
        transform split k by 4, kin, kout.
                  vectorize kin;
    return cube;
}

int main() {
    Matrix float <3> cube = build(8);
    float s1 = 0.0;
    float s2 = 0.0;
    spawn s1 = total(cube);
    spawn s2 = total(cube);
    sync;
    printFloat(s1 + s2);
    return 0;
}
"""

ORDERS = list(itertools.permutations(COMBO))


@pytest.fixture(scope="module")
def translator():
    return make_translator(list(COMBO), fresh=True)


class TestScannerDifferential:
    """The layer the report named: the compiled scanner on this combo."""

    def test_matrix_float_3_tokenizes_identically(self, translator):
        ts = translator.grammar.terminal_set
        comp = ContextAwareScanner(ts, backend="compiled")
        interp = ContextAwareScanner(ts, backend="interpreted")
        toks_c = comp.tokenize_all(PROGRAM, filename="<combo>")
        toks_i = interp.tokenize_all(PROGRAM, filename="<combo>")
        assert toks_c == toks_i
        assert toks_c[-1].terminal == EOF

    def test_matrix_type_fragments(self, translator):
        ts = translator.grammar.terminal_set
        comp = ContextAwareScanner(ts, backend="compiled")
        interp = ContextAwareScanner(ts, backend="interpreted")
        for frag in (
            "Matrix float <3> m;",
            "Matrix int <1> v = init(Matrix int <1>, 4);",
            "Matrix float <2> f(Matrix float <3> cube) { }",
            "spawn x = f(init(Matrix float <3>, 2, 2, 2));",
            "transform split k by 4, kin, kout. vectorize kin;",
        ):
            assert (comp.tokenize_all(frag) == interp.tokenize_all(frag)), frag


class TestParserDifferential:
    def test_identical_trees(self, translator):
        pc = translator.parser
        g = pc.grammar
        pi = Parser(
            g,
            tables=pc.tables,
            scanner=ContextAwareScanner(g.terminal_set,
                                        backend="interpreted"),
            backend="interpreted",
        )
        assert (pc.parse(PROGRAM, filename="<combo>")
                == pi.parse(PROGRAM, filename="<combo>"))


class TestEveryExtensionOrder:
    """Fresh translator per order: composition must be order-insensitive."""

    @pytest.mark.parametrize("order", ORDERS,
                             ids=["+".join(o) for o in ORDERS])
    def test_compiles_clean(self, order):
        t = make_translator(list(order), fresh=True)
        result = t.compile(PROGRAM)
        assert result.ok, (order, result.errors)
        assert "rt_spawn" in result.c_source      # cilk lowered
        assert "rt_vloadf" in result.c_source     # vectorize lowered


class TestArtifactRoundTrip:
    """Cold build -> persist -> warm restore must not perturb the combo."""

    def test_cold_and_warm_identical(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        cold_cache = TranslatorCache(artifacts=ArtifactStore(store_dir))
        t_cold = cold_cache.get(list(COMBO))
        r_cold = t_cold.compile(PROGRAM)
        assert r_cold.ok, r_cold.errors

        # A new cache over the same store restores tables from disk.
        warm_cache = TranslatorCache(artifacts=ArtifactStore(store_dir))
        t_warm = warm_cache.get(list(COMBO))
        r_warm = t_warm.compile(PROGRAM)
        assert r_warm.ok, r_warm.errors
        assert warm_cache.counters.snapshot().artifact_hits > 0
        assert r_cold.c_source == r_warm.c_source


class TestExecution:
    """Beyond parsing: the combo program must run and agree with numpy."""

    def test_interpreted_result(self, translator, tmp_path):
        import numpy as np

        from repro.cexec.interp import Interpreter

        result = translator.compile(PROGRAM)
        assert result.ok, result.errors
        interp = Interpreter(result.lowered, result.ctx, workdir=tmp_path)
        assert interp.run_main() == 0

        i, j, k = np.meshgrid(*[np.arange(8)] * 3, indexing="ij")
        expect = 2 * float((i + j + k).astype(np.float32).sum())
        got = float(interp.stdout[-1])
        assert got == pytest.approx(expect, rel=1e-5)
