"""The paper's thesis, end-to-end: one translator generated from FIVE
independently developed extension modules, running one program that uses
every feature family at once — matrices, with-loops, matrixMap, tuples,
explicit transformations, a third-party transformation spec, and
Cilk-style tasks — all checked, lowered to parallel C, and executed."""

import numpy as np
import pytest

from repro.api import Optimizations, make_translator, module_registry
from repro.cexec import gcc_available
from repro.mda import verify_composition_theorem

ALL_EXTS = ("matrix", "transform", "unrolljam", "cilk")

PROGRAM = """
// statistics of one time series: (mean, max-index) via tuples
(float, int) stats(Matrix float <1> v) {
    int n = dimSize(v, 0);
    float mean = (with ([0] <= [i] < [n]) fold(+, 0.0, v[i])) / n;
    int best = 0;
    for (int i = 1; i < n; i = i + 1) {
        if (v[i] > v[best]) best = i;
    }
    return (mean, best);
}

Matrix float <1> normalize(Matrix float <1> v) {
    float mean = 0.0;
    int best = 0;
    (mean, best) = stats(v);
    return v - mean;
}

float checksum(Matrix float <2> m) {
    int a = dimSize(m, 0);
    int b = dimSize(m, 1);
    return with ([0,0] <= [i,j] < [a,b]) fold(+, 0.0, m[i,j]);
}

int main() {
    Matrix float <3> cube = readMatrix("cube.data");
    int m = dimSize(cube, 0);
    int n = dimSize(cube, 1);
    int p = dimSize(cube, 2);

    // explicit transformations on the temporal mean (Fig 9 + unrolljam)
    Matrix float <2> means = init(Matrix float <2>, m, n);
    means = with ([0,0] <= [i,j] < [m,n])
        genarray([m,n],
            (with ([0] <= [k] < [p]) fold(+, 0.0, cube[i,j,:][k])) / p)
        transform split j by 4, jin, jout.
                  vectorize jin.
                  unrolljam i jout by 2;

    // normalize every time series (matrixMap + tuples inside)
    Matrix float <3> normed = matrixMap(normalize, cube, [2]);

    // two independent reductions as Cilk tasks (spawn arguments must be
    // variables the spawner keeps alive until the sync)
    Matrix float <2> frame0 = normed[:, :, 0];
    float s1 = 0.0;
    float s2 = 0.0;
    spawn s1 = checksum(means);
    spawn s2 = checksum(frame0);
    sync;

    Matrix float <1> out = init(Matrix float <1>, 2);
    out[0] = s1;
    out[1] = s2;
    writeMatrix("out.data", out);
    writeMatrix("means.data", means);
    writeMatrix("normed.data", normed);
    return 0;
}
"""


@pytest.fixture(scope="module")
def cube():
    # n divisible by 4 (split), m divisible by 2 (unrolljam)
    return np.random.default_rng(5).normal(0, 1, (6, 8, 10)).astype(np.float32)


@pytest.fixture(scope="module")
def translator():
    return make_translator(list(ALL_EXTS),
                           options=Optimizations(parallelize=False))


def reference(cube):
    means = cube.mean(axis=2)
    normed = cube - cube.mean(axis=2, keepdims=True)
    return means, normed, float(means.sum()), float(normed[:, :, 0].sum())


def test_composition_theorem_all_five():
    reg = module_registry()
    assert verify_composition_theorem(
        reg["cminus"].grammar,
        [reg["matrix"].grammar, reg["transform"].grammar,
         reg["unrolljam"].grammar, reg["cilk"].grammar],
        prefer_shift=reg["cminus"].prefer_shift,
    )


def test_checks_clean(translator):
    result = translator.compile(PROGRAM, check_only=True)
    assert result.errors == []


def test_interpreted(translator, cube, tmp_path):
    from repro.cexec.interp import Interpreter
    from repro.cexec.rmat import read_rmat, write_rmat

    result = translator.compile(PROGRAM)
    assert result.ok, result.errors
    write_rmat(tmp_path / "cube.data", cube)
    interp = Interpreter(result.lowered, result.ctx, workdir=tmp_path)
    assert interp.run_main() == 0
    assert interp.stats.leaked == 0

    means, normed, s1, s2 = reference(cube)
    assert np.allclose(read_rmat(tmp_path / "means.data"), means, atol=1e-4)
    assert np.allclose(read_rmat(tmp_path / "normed.data"), normed, atol=1e-4)
    out = read_rmat(tmp_path / "out.data")
    assert out[0] == pytest.approx(s1, abs=1e-2)
    assert out[1] == pytest.approx(s2, abs=1e-2)


@pytest.mark.skipif(not gcc_available(), reason="gcc not available")
def test_native(translator, cube):
    from repro.cexec import CompiledProgram

    result = translator.compile(PROGRAM)
    assert result.ok, result.errors
    prog = CompiledProgram(result.c_source)
    try:
        run = prog.run({"cube.data": cube},
                       output_names=["out.data", "means.data", "normed.data"],
                       nthreads=2)
        assert run.returncode == 0, run.stderr
        assert run.stats.leaked == 0
        means, normed, s1, s2 = reference(cube)
        assert np.allclose(run.outputs["means.data"], means, atol=1e-4)
        assert np.allclose(run.outputs["normed.data"], normed, atol=1e-4)
        assert run.outputs["out.data"][0] == pytest.approx(s1, abs=1e-2)
        assert run.outputs["out.data"][1] == pytest.approx(s2, abs=1e-2)
    finally:
        prog.cleanup()


def test_generated_c_shows_every_feature(translator):
    result = translator.compile(PROGRAM)
    body = result.c_source
    for marker in ("rt_vloadf", "rt_vgatherf",     # vectorize
                   "i_jout",                        # unrolljam
                   "rt_spawn", "rt_sync",           # cilk
                   "tup_f_i",                       # tuples struct
                   "rt_assign_copy" if False else "rc_dec",  # refcount
                   "rt_alloc"):                     # matrices
        assert marker in body, marker
