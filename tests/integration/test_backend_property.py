"""Differential property test: for randomly generated matrix programs,
the interpreter backend and the gcc backend must produce identical
outputs (and the refcount balance must hold on every generated program).

Programs are assembled from a pool of type-correct statement templates
over a fixed set of matrix variables, so every generated program is
valid by construction; the *translator* (both lowering paths and the two
runtimes) is the system under test.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cexec import CompiledProgram, gcc_available
from repro.cexec.rmat import read_rmat, write_rmat

pytestmark = pytest.mark.skipif(not gcc_available(), reason="gcc not available")

# Statement templates over: a, b (rank-1 float, length N), m (rank-2 float
# N x N), k (int scalar).  Each keeps all invariants (shapes fixed).
STMTS = [
    "a = a + b;",
    "a = b .* a - 1.5;",
    "a = a / 2.0 + b * 0.25;",
    "b = -a;",
    "a = with ([0] <= [i] < [{N}]) genarray([{N}], a[i] + b[{N} - 1 - i]);",
    "k = k + (int) (with ([0] <= [i] < [{N}]) fold(+, 0.0, a[i]));",
    "a[0 : 3] = b[4 : 7];",  # both ranges inclusive: 4 elements each (N=8)
    # % truncates toward zero, and k can go negative via the fold
    # template above — re-bias so the index is always in [0, N).
    "a[(k % {N} + {N}) % {N}] = 3.25;",
    "b = m[(k % {N} + {N}) % {N}, :];",
    "m[:, (k % {N} + {N}) % {N}] = a;",
    "a = m[(k % {N} + {N}) % {N}, 0 : end];",
    "m = m + 0.5;",
    "b = with ([0] <= [i] < [{N}]) genarray([{N}], m[i, i]);",
    "a = (0 :: {N} - 1) * 0.5 + a;",
    "if (a[0] > 0.0) { b = b + 1.0; } else { b = b - 1.0; }",
    "for (int q = 0; q < 3; q = q + 1) { a[q] = a[q] * 2.0; }",
    "k = k * 3 % 17 + 1;",
]

N = 8
H = N // 2 - 1


def build_program(indices: list[int]) -> str:
    # plain replace: templates contain literal C braces
    body = "\n    ".join(STMTS[i].replace("{N}", str(N)).replace("{H}", str(H))
                         for i in indices)
    return f"""int main() {{
    Matrix float <1> a = readMatrix("a.data");
    Matrix float <1> b = readMatrix("b.data");
    Matrix float <2> m = readMatrix("m.data");
    int k = 1;
    {body}
    writeMatrix("a.out", a);
    writeMatrix("b.out", b);
    writeMatrix("m.out", m);
    return k;
}}"""


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    indices=st.lists(st.integers(0, len(STMTS) - 1), min_size=1, max_size=6),
    seed=st.integers(0, 10_000),
)
def test_backends_agree_on_random_programs(indices, seed):
    from tests.conftest import XCRunner

    src = build_program(indices)
    rng = np.random.default_rng(seed)
    inputs = {
        "a.data": rng.normal(0, 1, N).astype(np.float32),
        "b.data": rng.normal(0, 1, N).astype(np.float32),
        "m.data": rng.normal(0, 1, (N, N)).astype(np.float32),
    }

    with tempfile.TemporaryDirectory() as td:
        xc = XCRunner(Path(td), ("matrix",))
        rc_i, outs_i, interp = xc.run(src, inputs,
                                      ["a.out", "b.out", "m.out"])
        assert interp.stats.leaked == 0, src

        result = xc.translator.compile(src)
        assert result.ok, result.errors
        prog = CompiledProgram(result.c_source)
        try:
            native = prog.run(inputs, output_names=["a.out", "b.out", "m.out"])
        finally:
            prog.cleanup()

    assert native.returncode == rc_i % 256, src
    assert native.stats.leaked == 0, src
    for name in ("a.out", "b.out", "m.out"):
        gi, gn = outs_i[name], native.outputs[name]
        assert gi.shape == gn.shape, (name, src)
        assert np.allclose(gi, gn, atol=1e-4, rtol=1e-4), (name, src)
