"""AddressSanitizer/LeakSanitizer sweep of the generated C.

Independent validation of the reference-counting discipline (§III-B) and
the parallel runtime: every paper program plus the all-extensions
program must run clean — no leaks, no use-after-free, no heap overflow —
under ASan with two worker threads.  (This harness caught a real race:
a matrix temp passed to `spawn` being freed before the task read it, now
a compile-time error.)
"""

import os
import subprocess

import numpy as np
import pytest

from repro.api import Optimizations, make_translator
from repro.cexec import gcc_available
from repro.cexec.rmat import write_rmat
from repro.eddy import synthetic_ssh
from repro.programs import load

pytestmark = pytest.mark.skipif(not gcc_available(), reason="gcc not available")


def asan_supported(tmp_path) -> bool:
    probe = tmp_path / "probe.c"
    probe.write_text("int main(void){return 0;}")
    r = subprocess.run(
        ["gcc", "-fsanitize=address", "-o", str(tmp_path / "probe"), str(probe)],
        capture_output=True,
    )
    return r.returncode == 0


CASES = {
    "fig1": (lambda: load("fig1"), ("matrix",), True),
    "fig8": (lambda: load("fig8"), ("matrix",), True),
    "fig9": (lambda: load("fig9"), ("matrix", "transform"), False),
}


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("asan-data")
    cube = synthetic_ssh((6, 8, 24), n_eddies=2, seed=3).cube
    write_rmat(d / "ssh.data", cube)
    return d


@pytest.mark.parametrize("name", list(CASES))
def test_asan_clean(name, data_dir, tmp_path):
    if not asan_supported(tmp_path):
        pytest.skip("ASan not available in this gcc")
    source_fn, exts, par = CASES[name]
    t = make_translator(list(exts), options=Optimizations(parallelize=par))
    result = t.compile(source_fn())
    assert result.ok, result.errors

    c = tmp_path / f"{name}.c"
    exe = tmp_path / name
    c.write_text(result.c_source)
    build = subprocess.run(
        ["gcc", "-O1", "-g", "-fsanitize=address", "-fopenmp",
         "-o", str(exe), str(c), "-lpthread", "-lm"],
        capture_output=True, text=True,
    )
    assert build.returncode == 0, build.stderr

    env = dict(os.environ, RT_THREADS="2", ASAN_OPTIONS="detect_leaks=1")
    run = subprocess.run([str(exe)], cwd=data_dir, env=env,
                         capture_output=True, text=True, timeout=300)
    assert run.returncode == 0, run.stderr[:2000]
    assert "ERROR" not in run.stderr, run.stderr[:2000]
    assert "LeakSanitizer" not in run.stderr, run.stderr[:2000]
