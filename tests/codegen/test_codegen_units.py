"""Unit tests for the codegen substrate: runtime feature selection,
C type mapping, lifted-function rendering, and the scaling model."""

import pytest

from repro.cminus.env import CompileContext
from repro.cminus.types import (
    BOOL, FLOAT, INT, STRING, TPointer, TTuple, VOID,
)
from repro.codegen.ctypemap import CTypeError, ctype_of, tuple_struct
from repro.codegen.emit import LiftedFunc
from repro.codegen.runtime_c import FEATURES, IMPLIES, runtime_source
from repro.codegen.scaling import (
    ForkJoinCosts,
    crossover_work,
    predicted_time_us,
    scaling_curve,
)


class TestRuntimeSelection:
    def test_empty_feature_set_is_minimal(self):
        src = runtime_source(set())
        assert "rt_mat" not in src and "rt_pool" not in src

    def test_implications_close_transitively(self):
        src = runtime_source({"io"})
        # io -> matrix + refcount -> counters
        assert "readMatrix" in src
        assert "rt_alloc(" in src
        assert "rc_dec" in src
        assert "rt_alloc_count" in src

    def test_every_feature_set_compiles(self, tmp_path):
        from repro.cexec import gcc_available

        if not gcc_available():
            pytest.skip("gcc not available")
        import subprocess

        src = runtime_source(set(FEATURES)) + "\nint main(void){return 0;}\n"
        c = tmp_path / "all.c"
        c.write_text(src)
        r = subprocess.run(
            ["gcc", "-O2", "-Wall", "-o", str(tmp_path / "all"), str(c),
             "-lpthread", "-lm"],
            capture_output=True, text=True,
        )
        assert r.returncode == 0, r.stderr

    def test_implies_keys_are_known_features(self):
        for feature, deps in IMPLIES.items():
            assert feature in FEATURES
            for d in deps:
                assert d in FEATURES


class TestCTypeMap:
    def setup_method(self):
        self.ctx = CompileContext()

    @pytest.mark.parametrize("t,want", [
        (INT, "int"), (BOOL, "int"), (FLOAT, "float"), (VOID, "void"),
        (STRING, "const char *"), (TPointer(INT), "int *"),
    ])
    def test_scalars(self, t, want):
        assert ctype_of(t, self.ctx) == want

    def test_tuple_registers_struct(self):
        t = TTuple((INT, FLOAT))
        name = ctype_of(t, self.ctx)
        assert name.startswith("tup_")
        assert self.ctx.tuple_structs[name] == ["int", "float"]

    def test_same_tuple_same_struct(self):
        t = TTuple((INT, FLOAT))
        assert tuple_struct(t, self.ctx) == tuple_struct(t, self.ctx)
        assert len(self.ctx.tuple_structs) == 1

    def test_distinct_tuples_distinct_structs(self):
        tuple_struct(TTuple((INT, FLOAT)), self.ctx)
        tuple_struct(TTuple((FLOAT, INT)), self.ctx)
        assert len(self.ctx.tuple_structs) == 2

    def test_matrix_needs_hook(self):
        from repro.exts.matrix.types import TMatrix

        with pytest.raises(CTypeError):
            ctype_of(TMatrix(FLOAT, 2), self.ctx)
        from repro.exts.matrix import _matrix_ctype_hook

        self.ctx.ctype_hooks = [_matrix_ctype_hook]
        assert ctype_of(TMatrix(FLOAT, 2), self.ctx) == "rt_mat *"


class TestLiftedFunc:
    def test_rendering(self):
        from repro.cminus.grammar import mk

        body = mk.block(mk.stmt_list([mk.exprStmt(
            mk.call("printInt", mk.expr_list([mk.var("x")])))]))
        lf = LiftedFunc("worker", body, [("int", "x"), ("rt_mat *", "m")])
        struct = lf.c_env_struct()
        assert "int x;" in struct and "rt_mat * m;" in struct
        defn = lf.c_definition()
        assert "static void worker(long __lo, long __hi, int x, rt_mat * m)" in defn
        wrap = lf.c_wrapper()
        assert "worker(__lo, __hi, __e->x, __e->m);" in wrap


class TestScalingModel:
    COSTS = ForkJoinCosts(t_create_us=25.0, t_release_us=2.0, t_chunk_us=0.5)

    def test_single_thread_no_overhead(self):
        t = predicted_time_us(1000, 1.0, 1, self.COSTS)
        assert t == pytest.approx(1000.0)

    def test_speedup_bounded_by_threads(self):
        for pts in scaling_curve(10_000, 1.0, self.COSTS):
            assert pts.speedup <= pts.threads + 1e-9

    def test_large_work_near_linear(self):
        curve = scaling_curve(1_000_000, 1.0, self.COSTS, max_threads=12)
        assert curve[-1].efficiency > 0.99

    def test_tiny_work_does_not_scale(self):
        curve = scaling_curve(10, 1.0, self.COSTS, max_threads=12)
        assert curve[-1].speedup < 2.0

    def test_naive_worse_than_enhanced(self):
        for p in (2, 4, 8, 12):
            te = predicted_time_us(1000, 1.0, p, self.COSTS, model="enhanced")
            tn = predicted_time_us(1000, 1.0, p, self.COSTS, model="naive")
            assert te < tn

    def test_crossover_monotone_in_overhead(self):
        cheap = ForkJoinCosts(t_create_us=5.0)
        dear = ForkJoinCosts(t_create_us=50.0)
        assert crossover_work(1.0, cheap, 4, model="naive") < \
            crossover_work(1.0, dear, 4, model="naive")

    def test_crossover_definition(self):
        p = 4
        w = crossover_work(1.0, self.COSTS, p)
        t1 = predicted_time_us(w, 1.0, 1, self.COSTS)
        tp = predicted_time_us(w, 1.0, p, self.COSTS)
        assert tp <= t1 + 1e-9
