"""Shared helpers for the S28 mid-level IR tests."""

from __future__ import annotations

import pytest

from repro.api import compile_source
from repro.cexec.bytecode import BytecodeProgram, compile_function


def fn_code(src: str, name: str, exts=("matrix",)):
    """Compile ``src`` and return the un-optimized :class:`Code` of one
    function (user-defined or lifted region body)."""
    cr = compile_source(src, list(exts))
    assert cr.ok, cr.diagnostics
    prog = BytecodeProgram(cr.lowered, cr.ctx)
    table = prog.functions if name in prog.functions else prog.lifted_trees
    params, body = table[name]
    return compile_function(name, params, body)


@pytest.fixture(autouse=True)
def strict_ir(monkeypatch):
    """Internal pipeline bugs must surface as failures here, never as a
    silent bail-out to the unoptimized code."""
    monkeypatch.setenv("REPRO_IR_STRICT", "1")
