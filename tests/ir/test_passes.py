"""Per-pass behavior of the S28 optimizer, pinned through ``dump_stages``.

Each test compiles a tiny function whose optimized dump must show (or
must not show) one specific rewrite.  The dumps use deterministic
``p0../v0../B0..`` renumbering, so substring assertions are stable.
"""

from __future__ import annotations

import pytest

from repro.ir import dump_stages

from tests.ir.conftest import fn_code

MAIN = "int main() { return 0; }\n"


def opt_of(src: str, name: str = "f", level: int = 2) -> dict[str, str]:
    return dump_stages(fn_code(src + MAIN, name), level)


class TestFolding:
    def test_constant_multiply_folds(self):
        stages = opt_of("int f() { int a = 6; int b = 7; return a * b; }")
        assert "const 42" in stages["opt"]
        assert " * " not in stages["opt"]
        assert "fold=" in stages["counts"]

    def test_division_by_zero_never_folds(self):
        """Folding runs the exact runtime semantics; a trapping divide
        must stay in the instruction stream so -O2 still traps."""
        stages = opt_of("int f() { int z = 0; return 7 / z; }")
        assert " / " in stages["opt"]

    def test_int_times_one_is_identity(self):
        stages = opt_of("int f(int x) { return x * 1; }")
        assert " * " not in stages["opt"]

    def test_float_times_one_is_kept(self):
        """x*1.0 is not an identity under float32 rounding of x."""
        stages = opt_of("float f(float x) { return x * 1.0; }")
        assert " * " in stages["opt"]


class TestCopyPropagation:
    def test_chained_copies_collapse_to_param(self):
        stages = opt_of(
            "int f(int x) { int y = x; int z = y; return z + z; }")
        assert "+ p0, p0" in stages["opt"]
        assert "move" not in stages["opt"]


class TestCSE:
    def test_repeated_expression_computed_once(self):
        stages = opt_of("int f(int a, int b) { return a * b + a * b; }")
        assert stages["opt"].count(" * ") == 1
        assert "cse=" in stages["counts"]

    def test_loads_not_merged_across_store(self):
        """m[0,0] reloads after the store: memory CSE respects epochs."""
        src = """
int f() {
    Matrix int <2> m = init(Matrix int <2>, 2, 2);
    m[0, 0] = 3;
    int a = m[0, 0];
    m[0, 0] = 4;
    int b = m[0, 0];
    return a + b;
}
"""
        stages = opt_of(src)
        assert stages["opt"].count("rt_geti") == 2


class TestJumpThreading:
    def test_shortcircuit_diamond_enables_cross_block_cse(self):
        """`cond && e` lowers to a diamond whose false arm feeds const 0
        into the merge phi.  Threading that arm straight to the exit
        makes the true arm dominate the loop body, so x*x computed by
        the condition is CSE-reused by the body instead of recomputed."""
        src = """
float f(float x, int n) {
    float s = 0.0;
    int i = 0;
    while (i < n && x * x > s) {
        s = s + x * x;
        i = i + 1;
    }
    return s;
}
"""
        stages = opt_of(src)
        assert "thread=" in stages["counts"]
        # x*x appears once in the whole optimized function (the
        # condition's), not a second time in the body
        assert stages["opt"].count("* p0, p0") == 1

    def test_constant_branch_folds_to_jump(self):
        stages = opt_of("int f(int x) { if (2 < 1) { return x; } "
                        "return x + 1; }")
        assert "thread=" in stages["counts"]
        assert "jz" not in stages["opt"]

    def test_threading_keeps_loop_exit_value(self):
        """The counter phi is live past the threaded exit edge: its
        block must not be bypassed, only the decided branch arm."""
        src = """
int f(int n, int m) {
    int i = 0;
    while (i < n && i < m) { i = i + 1; }
    return i;
}
"""
        stages = opt_of(src)
        assert "thread=" in stages["counts"]
        assert "ret" in stages["opt"]


class TestBoolIdentity:
    def test_bool_of_comparison_erased(self):
        """Comparisons already produce exact ints 0/1 in the VM, so the
        && lowering's normalizing `bool` is a no-op the folder drops."""
        src = """
int f(int a, int b, int c) {
    if (a < b && b < c) { return 1; }
    return 0;
}
"""
        stages = opt_of(src)
        assert "bool" not in stages["opt"]

    def test_bool_of_arbitrary_int_kept(self):
        stages = opt_of("int f(int a, int b) { if (a && b) { return 1; } "
                        "return 0; }")
        assert "bool" in stages["opt"]


class TestLICM:
    def test_invariant_multiply_hoisted(self):
        src = """
int f(int a, int b, int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a * b;
    }
    return s;
}
"""
        stages = opt_of(src)
        assert "licm=" in stages["counts"]
        # the multiply lands in the preheader: exactly once, before the
        # first phi-bearing (header) block
        opt = stages["opt"]
        assert opt.count("* p0, p1") == 1
        assert opt.index("* p0, p1") < opt.index("phi")

    def test_trapping_divide_not_hoisted(self):
        """n==0 runs the loop zero times; hoisting a/b would introduce a
        divide-by-zero trap that -O0 does not have."""
        src = """
int f(int a, int b, int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a / b;
    }
    return s;
}
"""
        stages = opt_of(src)
        opt = stages["opt"]
        assert opt.index("phi") < opt.index("/ p0, p1")


class TestStrengthReduction:
    def test_iv_times_invariant_becomes_additive(self):
        src = """
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + i * n;
    }
    return s;
}
"""
        stages = opt_of(src)
        assert "strength=" in stages["counts"]
        # the loop body carries the derived IV as an add, not a multiply
        opt = stages["opt"]
        body = opt[opt.index("phi"):]
        assert " * " not in body


class TestDCE:
    def test_dead_multiply_removed(self):
        stages = opt_of(
            "int f(int a, int b) { int dead = a * b; return a + b; }")
        assert " * " not in stages["opt"]
        assert "dce=" in stages["counts"]

    def test_effectful_dead_value_kept(self):
        """A call whose result is unused still runs (it may print)."""
        src = """
int noisy() { printInt(1); return 2; }
int f() { int unused = noisy(); return 0; }
"""
        stages = opt_of(src)
        assert "call noisy" in stages["opt"]


class TestLevels:
    SRC = """
int f(int a, int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a * a + i * n;
    }
    return s;
}
"""

    def test_level0_is_identity(self):
        stages = opt_of(self.SRC, level=0)
        assert stages["counts"] == ""
        assert stages["bytecode"] == stages["bytecode-in"]

    def test_level2_strictly_extends_level1(self):
        l1 = opt_of(self.SRC, level=1)["counts"]
        l2 = opt_of(self.SRC, level=2)["counts"]
        assert "licm=" not in l1 and "strength=" not in l1
        assert "licm=" in l2 and "strength=" in l2


class TestSpawnPoisoning:
    def test_spawn_result_never_optimized(self):
        """The value written by spawn materializes at sync; folding or
        CSE over it would read the pre-sync garbage."""
        src = """
int g(int x) { return x + 1; }
int f() {
    int a = 0;
    spawn a = g(1);
    sync;
    return a + a;
}
"""
        stages = dump_stages(fn_code(src + MAIN, "f", exts=("matrix", "cilk")),
                             2)
        opt = stages["opt"]
        assert "spawn" in opt and "sync" in opt
        # the post-sync read of `a` still happens: no const substitution
        assert "+ " in opt
