"""Differential testing: -O2 optimizer vs. -O0 on the bytecode VM.

Mirror of ``tests/cexec/test_vm_differential.py`` one layer down: the
unoptimized VM is the reference, the S28 pass pipeline is the unit under
test.  For the whole example corpus and for programs aimed at the
optimizer's sharp edges (traps, spawn results, fastloop bail paths,
phi cycles), both opt levels must agree on return codes, stdout, RMAT
outputs (bit-for-bit), runtime traps, and InterpStats counters.

``REPRO_IR_STRICT`` is forced on (see conftest): an internal optimizer
crash fails the test instead of silently falling back to -O0 code,
which would make every comparison here vacuously true.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cminus.env import Optimizations
from repro.eddy import synthetic_ssh
from repro.programs import load

from tests.cexec.test_vm_differential import (CILK_FIB, assert_identical,
                                              run_one)


def run_levels(src, exts, inputs=None, outputs=None, nthreads=2):
    return (run_one("vm", src, exts, inputs, outputs, nthreads,
                    Optimizations(opt_level=0)),
            run_one("vm", src, exts, inputs, outputs, nthreads,
                    Optimizations(opt_level=2)))


class TestExampleCorpus:
    def test_fig1_temporal_mean(self):
        cube = np.random.default_rng(0).normal(
            0, 0.5, (6, 8, 12)).astype(np.float32)
        o0, o2 = run_levels(load("fig1"), ("matrix",), {"ssh.data": cube},
                            ["means.data"], nthreads=3)
        assert_identical(o0, o2, "fig1")

    def test_fig4_conncomp(self):
        rng = np.random.default_rng(9)
        ssh = rng.normal(0.2, 0.5, (8, 9, 5)).astype(np.float32)
        dates = np.array([1011990, 1012000, 1012010, 1012020, 1012030],
                         dtype=np.int32)
        o0, o2 = run_levels(load("fig4"), ("matrix",),
                            {"ssh.data": ssh, "dates.data": dates},
                            ["eddyLabels.data"])
        assert_identical(o0, o2, "fig4")

    def test_fig8_eddy_pipeline(self):
        data = synthetic_ssh((5, 6, 32), n_eddies=2, seed=21)
        o0, o2 = run_levels(load("fig8"), ("matrix",),
                            {"ssh.data": data.cube}, ["temporalScores.data"])
        assert_identical(o0, o2, "fig8")

    def test_fig9_transform_annotated(self):
        c = np.random.default_rng(3).normal(0, 1, (6, 8, 10)).astype(np.float32)
        o0, o2 = run_levels(load("fig9"), ("matrix", "transform"),
                            {"ssh.data": c}, ["means.data"])
        assert_identical(o0, o2, "fig9")

    def test_mandelbrot(self):
        o0, o2 = run_levels(load("mandelbrot"), ("matrix",), {},
                            ["mandel.data"])
        assert_identical(o0, o2, "mandelbrot")
        assert o0[3] == ["51626"]  # escape-count checksum, pinned

    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_all_levels_agree(self, level):
        """-O1 sits between the differential endpoints; it must match
        -O0 too, not just the default."""
        cube = np.random.default_rng(7).normal(
            0, 0.5, (4, 5, 6)).astype(np.float32)
        base = run_one("vm", load("fig1"), ("matrix",), {"ssh.data": cube},
                       ["means.data"], 2, Optimizations(opt_level=0))
        lvl = run_one("vm", load("fig1"), ("matrix",), {"ssh.data": cube},
                      ["means.data"], 2, Optimizations(opt_level=level))
        assert_identical(base, lvl, f"fig1 -O{level}")


class TestSharpEdges:
    def test_divide_by_zero_traps_identically(self):
        src = """
int main() {
    int n = 0;
    printInt(7 / n);
    return 0;
}
"""
        o0, o2 = run_levels(src, ("matrix",))
        assert_identical(o0, o2, "div0")
        assert o0[1] is not None  # both trapped

    def test_loop_guarded_trap_not_speculated(self):
        """The divide only runs when the loop runs; LICM hoisting it
        past the n==0 guard would trap at -O2 where -O0 returns."""
        src = """
int main() {
    int z = 0;
    int s = 0;
    for (int i = 0; i < 0; i = i + 1) {
        s = s + 1 / z;
    }
    printInt(s);
    return 0;
}
"""
        o0, o2 = run_levels(src, ("matrix",))
        assert_identical(o0, o2, "guarded-trap")
        assert o0[1] is None and o0[3] == ["0"]

    def test_negative_alloc_traps_identically(self):
        """The dimension is a folded constant expression at -O2, but the
        trapping init intrinsic is an effect and must still run."""
        src = """
int main() {
    int n = 0 - 2;
    Matrix int <1> m = init(Matrix int <1>, n);
    return 0;
}
"""
        o0, o2 = run_levels(src, ("matrix",))
        assert_identical(o0, o2, "neg-alloc-trap")
        assert o0[1] is not None

    def test_spawn_sync_fib(self):
        o0, o2 = run_levels(CILK_FIB, ("matrix", "cilk"))
        assert_identical(o0, o2, "cilk-fib")
        assert o0[3] == ["55"]

    def test_fastloop_bail_path(self):
        """float-typed loop bound bails the fastloop at runtime; the
        scalar fallback path must also be optimizer-safe."""
        src = """
int main() {
    Matrix float <1> m = init(Matrix float <1>, 8);
    float lim = 8.0;
    for (int i = 0; (float) i < lim; i = i + 1) {
        m[i] = (float) (i * 3);
    }
    float s = 0.0;
    for (int i = 0; i < 8; i = i + 1) {
        s = s + m[i];
    }
    printFloat(s);
    return 0;
}
"""
        o0, o2 = run_levels(src, ("matrix",))
        assert_identical(o0, o2, "fastloop-bail")

    def test_integer_overflow_wraps_identically(self):
        """Folding must use the VM's exact wrapping semantics."""
        src = """
int main() {
    int big = 2147483647;
    printInt(big + 1);
    return 0;
}
"""
        o0, o2 = run_levels(src, ("matrix",))
        assert_identical(o0, o2, "overflow")

    def test_float32_arith_not_reassociated(self):
        src = """
int main() {
    float a = 0.1;
    float b = 0.2;
    float c = 0.3;
    printFloat((a + b) + c);
    printFloat(a + (b + c));
    return 0;
}
"""
        o0, o2 = run_levels(src, ("matrix",))
        assert_identical(o0, o2, "float-assoc")
