"""The S30 SSA verifier: clean pipelines verify at every stage, and
each invariant it claims to pin — single def, def-dominates-use, phi
arity/preds, terminator shape — actually trips on a deliberately
broken function."""

from __future__ import annotations

import pytest

from repro.ir.pipeline import PASS_COUNTERS, _run_passes
from repro.ir.ssa import build_ssa
from repro.ir.tac import Instr, Value, decode
from repro.ir.verify import VerifyError, verify_fn

from tests.ir.conftest import fn_code

LOOPY = """
int f(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        if (s > 100) { s = s - i; } else { s = s + i; }
        i = i + 1;
    }
    return s;
}
int main() { printInt(f(20)); return 0; }
"""

MATS = """
int f(int n) {
    Matrix float <1> m = init(Matrix float <1>, 16);
    for (int i = 0; i < n; i = i + 1) {
        m[i] = 1.0 * i;
    }
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        if (m[i] > 3.0) { s = s + 1; }
    }
    return s;
}
int main() { printInt(f(10)); return 0; }
"""


def ssa_of(src: str, name: str = "f"):
    fn = decode(fn_code(src, name))
    build_ssa(fn)
    return fn


class TestCleanPrograms:
    @pytest.mark.parametrize("src", [LOOPY, MATS], ids=["loopy", "mats"])
    def test_clean_at_every_stage(self, src):
        fn = ssa_of(src)
        verify_fn(fn, where="build_ssa")
        counts = {k: 0 for k in PASS_COUNTERS}
        # the check callback runs the verifier after every pass
        _run_passes(fn, 2, counts,
                    check=lambda where: verify_fn(fn, where=where))

    def test_pre_ssa_gets_cfg_checks_only(self):
        fn = decode(fn_code(LOOPY, "f"))
        verify_fn(fn)  # int operands: CFG shape still checked


def find_def(fn, op=None):
    """(block, index, instr) of the first real definition."""
    for bid in fn.rpo():
        for i, ins in enumerate(fn.blocks[bid].instrs):
            if ins.dest is not None and ins.op not in ("phi", "nop") \
                    and (op is None or ins.op == op):
                return fn.blocks[bid], i, ins
    raise AssertionError("no definition found")


class TestViolations:
    def test_double_definition(self):
        fn = ssa_of(LOOPY)
        b, i, ins = find_def(fn)
        b.instrs.insert(i + 1, Instr("const", ins.dest, (), 7))
        with pytest.raises(VerifyError, match="defined twice"):
            verify_fn(fn)

    def test_use_before_def_in_block(self):
        fn = ssa_of(LOOPY)
        b, i, ins = find_def(fn, "const")
        b.instrs.insert(i, Instr("move", fn.new_value(), (ins.dest,)))
        with pytest.raises(VerifyError, match="before its definition"):
            verify_fn(fn)

    def test_use_without_dominating_def(self):
        fn = ssa_of(LOOPY)
        # define a fresh value in a non-entry block, use it at entry
        target = next(bid for bid in fn.rpo() if bid != fn.entry)
        v = fn.new_value()
        fn.blocks[target].instrs.append(Instr("const", v, (), 1))
        fn.blocks[fn.entry].instrs.append(
            Instr("move", fn.new_value(), (v,)))
        with pytest.raises(VerifyError, match="does not dominate"):
            verify_fn(fn)

    def test_use_of_undefined_value(self):
        fn = ssa_of(LOOPY)
        ghost = fn.new_value()
        fn.blocks[fn.entry].instrs.append(
            Instr("move", fn.new_value(), (ghost,)))
        with pytest.raises(VerifyError, match="no definition"):
            verify_fn(fn)

    def test_phi_arity_mismatch(self):
        fn = ssa_of(LOOPY)
        phi = next(i for bid in fn.rpo()
                   for i in fn.blocks[bid].instrs if i.op == "phi")
        phi.args.append(fn.undef)
        with pytest.raises(VerifyError, match="phi has"):
            verify_fn(fn)

    def test_phi_preds_stale_after_edge_edit(self):
        fn = ssa_of(LOOPY)
        phi_block = next(fn.blocks[bid] for bid in fn.rpo()
                         if any(i.op == "phi" for i in fn.blocks[bid].instrs))
        phi = next(i for i in phi_block.instrs if i.op == "phi")
        k = len(phi.extra["preds"]) - 1
        phi.extra["preds"] = list(phi.extra["preds"])
        phi.extra["preds"][k] = 10_000  # an edge that no longer exists
        with pytest.raises(VerifyError, match="block preds"):
            verify_fn(fn)

    def test_missing_terminator(self):
        fn = ssa_of(LOOPY)
        fn.blocks[fn.entry].term = None
        with pytest.raises(VerifyError, match="no terminator"):
            verify_fn(fn)

    def test_wrong_successor_count(self):
        fn = ssa_of(LOOPY)
        b = next(fn.blocks[bid] for bid in fn.rpo()
                 if fn.blocks[bid].term.op == "jmp")
        b.succs = []
        with pytest.raises(VerifyError, match="expects 1 successor"):
            verify_fn(fn)

    def test_asymmetric_edge(self):
        fn = ssa_of(LOOPY)
        b = next(fn.blocks[bid] for bid in fn.rpo()
                 if fn.blocks[bid].term.op == "jmp")
        fn.blocks[b.succs[0]].preds.remove(b.bid)
        with pytest.raises(VerifyError, match="missing from its preds"):
            verify_fn(fn)
