"""Golden-dump drift gate for ``reproc disasm --ir``.

The committed ``golden_disasm.txt`` pins the whole pipeline end to end:
TAC decode shape, SSA numbering, which rewrites each pass performs on
the fixed input, the per-pass counts line, and the final register
bytecode.  Any behavioral change to the optimizer shows up as a diff
here and must be re-blessed deliberately:

    PYTHONPATH=src python -m repro.cli disasm tests/ir/golden_input.xc \\
        --ir -O2 > tests/ir/golden_disasm.txt
"""

from __future__ import annotations

import difflib
from pathlib import Path

from repro.cli import main

HERE = Path(__file__).parent


class TestGoldenDump:
    def test_disasm_ir_matches_golden(self, capsys):
        rc = main(["disasm", str(HERE / "golden_input.xc"), "--ir", "-O2"])
        assert rc == 0
        got = capsys.readouterr().out
        want = (HERE / "golden_disasm.txt").read_text()
        if got != want:
            diff = "\n".join(difflib.unified_diff(
                want.splitlines(), got.splitlines(),
                "golden_disasm.txt", "reproc disasm", lineterm=""))
            raise AssertionError(
                "disasm output drifted from the golden dump; if the "
                "change is intentional, regenerate it (see module "
                f"docstring).\n{diff}")

    def test_golden_counts_every_pass(self):
        """The golden input must keep exercising all seven counters."""
        counts = [ln for ln in (HERE / "golden_disasm.txt").read_text()
                  .splitlines() if ln.startswith("-- counts:")][0]
        for key in ("fold=", "copyprop=", "cse=", "thread=", "licm=",
                    "strength=", "dce="):
            assert key in counts, f"golden input no longer triggers {key}"

    def test_disasm_spec_matches_golden(self, capsys):
        """Same drift gate for the S29 dispatch-specialized stream:
        which groups fuse (and which intermediate writes they elide)
        is pinned by the shipped superinstruction table.  Regenerate:

            PYTHONPATH=src python -m repro.cli disasm \\
                tests/ir/golden_input.xc --spec -O2 \\
                > tests/ir/golden_disasm_spec.txt
        """
        rc = main(["disasm", str(HERE / "golden_input.xc"),
                   "--spec", "-O2"])
        assert rc == 0
        got = capsys.readouterr().out
        want = (HERE / "golden_disasm_spec.txt").read_text()
        if got != want:
            diff = "\n".join(difflib.unified_diff(
                want.splitlines(), got.splitlines(),
                "golden_disasm_spec.txt", "reproc disasm --spec",
                lineterm=""))
            raise AssertionError(
                "specialized-stream disasm drifted from the golden "
                "dump; if intentional, regenerate it (see docstring)."
                f"\n{diff}")
        assert " si " in got.replace("  ", " "), \
            "golden input no longer fuses any superinstruction"
        assert "~q" in got, \
            "golden input no longer has a quickening candidate"

    def test_disasm_O0_shows_raw_bytecode(self, capsys):
        rc = main(["disasm", str(HERE / "golden_input.xc"), "-O0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== kernel -O0 ==" in out
        assert "nregs=" in out
        assert "-- tac --" not in out  # stages only with --ir
