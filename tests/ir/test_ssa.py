"""SSA construction and destruction round-trips (S28).

These pin the structural contract: ``build_ssa`` leaves every operand a
:class:`Value` with phis only at join points; ``destroy_ssa`` +
``linearize`` produce verifiable bytecode with no phi residue; and the
round-trip preserves behavior on a phi-cycle stress program.
"""

from __future__ import annotations

from repro.cexec.interp import run_program
from repro.cminus.env import Optimizations
from repro.ir.pipeline import _verify
from repro.ir.ssa import build_ssa, destroy_ssa
from repro.ir.tac import Value, decode, linearize

from tests.ir.conftest import fn_code

LOOPY = """
int f(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        if (s > 100) { s = s - i; } else { s = s + i; }
        i = i + 1;
    }
    return s;
}
int main() { printInt(f(20)); return 0; }
"""


def all_instrs(b):
    return b.instrs + ([b.term] if b.term is not None else [])


def ssa_of(src: str, name: str = "f"):
    fn = decode(fn_code(src, name))
    build_ssa(fn)
    return fn


class TestBuild:
    def test_all_operands_are_values(self):
        fn = ssa_of(LOOPY)
        for b in fn.blocks.values():
            for ins in all_instrs(b):
                if ins.dest is not None:
                    assert isinstance(ins.dest, Value), ins
                for a in ins.args:
                    assert isinstance(a, Value), ins

    def test_single_assignment(self):
        fn = ssa_of(LOOPY)
        defs = [ins.dest.vid for b in fn.blocks.values()
                for ins in all_instrs(b) if ins.dest is not None]
        assert len(defs) == len(set(defs)), "a Value defined twice"

    def test_phis_only_at_joins(self):
        fn = ssa_of(LOOPY)
        for b in fn.blocks.values():
            if b.phis():
                assert len(b.preds) >= 2, f"phi in block with preds {b.preds}"

    def test_loop_variables_get_header_phis(self):
        fn = ssa_of(LOOPY)
        loops = fn.natural_loops(fn.dominators())
        assert loops, "while loop not detected as a natural loop"
        header = fn.blocks[loops[-1][0]]
        # both `s` and `i` are loop-carried
        assert len(header.phis()) >= 2


class TestRoundTrip:
    def roundtrip(self, src: str, name: str = "f"):
        code = fn_code(src, name)
        fn = decode(code)
        build_ssa(fn)
        reg, nregs = destroy_ssa(fn)
        out = linearize(fn, reg, nregs)
        _verify(out)
        return code, out

    def test_no_phi_residue(self):
        _, out = self.roundtrip(LOOPY)
        assert all(ins[0] != "phi" for ins in out.instrs)

    def test_ret_preserved(self):
        code, out = self.roundtrip(LOOPY)
        assert any(i[0] in ("ret", "ret_none") for i in out.instrs)

    def test_roundtrip_executes_identically(self):
        """Phi-cycle stress: the loop swaps two variables, so breaking
        the parallel copies needs the cycle tmp; a botched sequential
        order silently computes the wrong fibonacci-ish sequence."""
        src = """
int main() {
    int a = 1;
    int b = 2;
    for (int i = 0; i < 10; i = i + 1) {
        int t = a;
        a = b;
        b = t + a;
    }
    printInt(a);
    printInt(b);
    return 0;
}
"""
        outs = {}
        for level in (0, 2):
            rc, _o, _st, ex = run_program(
                src, ["matrix"], nthreads=1,
                options=Optimizations(opt_level=level))
            assert rc == 0
            outs[level] = list(ex.stdout)
        assert outs[0] == outs[2]
