// Golden input for the `reproc disasm --ir` drift gate.  Small on
// purpose, but it exercises every pass: a constant expression (fold),
// variable copies (copyprop), a repeated subexpression (CSE), a
// short-circuit loop condition (jump threading dissolving the &&
// diamond), a loop-invariant product (LICM), an induction-variable
// multiply (strength reduction), and a dead temporary (DCE).
int kernel(int a, int b, int n) {
    int scale = 3 * 4;
    int base = a;
    int dead = a * 99;
    int s = 0;
    int i = 0;
    while (i < n && s < 100000) {
        s = s + base * b + base * b;
        s = s + i * scale;
        i = i + 1;
    }
    return s;
}

int main() {
    printInt(kernel(2, 5, 10));
    return 0;
}
