"""The mandelbrot workload: `reproc check` clean + pinned-output golden.

Mandelbrot is the E-IR reference kernel (data-dependent while loop, no
vectorizable structure), so its behavior is pinned hard: the static
analyzer must pass it, and the escape counts must never move — the
checksum and payload digest below were blessed when the program was
added.  Integer escape counts are exact, so the digest is stable across
platforms as long as float32 single-rounding semantics hold.
"""

from __future__ import annotations

import hashlib

from repro.cexec.interp import run_program
from repro.cexec.rmat import read_rmat
from repro.cli import main
from repro.programs import load, path_of

TOTAL = "51626"
SHA256 = "7083a26219f8297a167571101ffef3130356f024fb293d713c3d0d5dd7ea07c7"


class TestCheck:
    def test_reproc_check_clean(self, capsys):
        rc = main(["check", str(path_of("mandelbrot")), "-x", "matrix"])
        assert rc == 0
        assert "no issues" in capsys.readouterr().out

    def test_reproc_check_werror_clean(self, capsys):
        """No warnings either: --werror must not flip the exit code."""
        rc = main(["check", str(path_of("mandelbrot")), "-x", "matrix",
                   "--werror", "--explain-parallel"])
        assert rc == 0


class TestGoldenOutput:
    def test_library_run_matches_golden(self):
        rc, outs, _st, ex = run_program(
            load("mandelbrot"), ["matrix"], output_names=["mandel.data"],
            nthreads=2)
        assert rc == 0
        assert list(ex.stdout) == [TOTAL]
        arr = outs["mandel.data"]
        assert arr.dtype.kind == "i" and arr.shape == (40, 60)
        assert hashlib.sha256(arr.tobytes()).hexdigest() == SHA256

    def test_cli_run_matches_golden(self, tmp_path, capsys):
        prog = tmp_path / "mandelbrot.xc"
        prog.write_text(load("mandelbrot"))
        rc = main([str(prog), "-x", "matrix", "--run", "--engine", "vm"])
        assert rc == 0
        assert TOTAL in capsys.readouterr().out
        arr = read_rmat(tmp_path / "mandel.data")
        assert hashlib.sha256(arr.tobytes()).hexdigest() == SHA256
