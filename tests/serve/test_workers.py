"""WorkerPool supervision: crash isolation, timeouts, recycling, caps."""

from __future__ import annotations

import time

import pytest

from repro.cexec.limited import (
    CappedStdout,
    OutputLimitExceeded,
    run_limited,
)
from repro.serve.workers import WorkerPool
from repro.service.stats import Counters

OK_PROG = """
int main() {
    Matrix float <1> v = init(Matrix float <1>, 4);
    v[0] = 1.0; v[1] = 2.0; v[2] = 3.0; v[3] = 4.0;
    float s = with ([0] <= [i] < [4]) fold(+, 0.0, v[i]);
    printFloat(s);
    return 0;
}
"""

LOOP_PROG = """
int main() {
    int i = 0;
    while (1 == 1) { i = i + 1; if (i > 1000000) i = 0; }
    return 0;
}
"""

TRAP_PROG = """
int main() {
    Matrix float <1> v = init(Matrix float <1>, 2);
    printFloat(v[5]);
    return 0;
}
"""

PRINT_BOMB = """
int main() {
    int i = 0;
    while (i < 100000) { printInt(i); i = i + 1; }
    return 0;
}
"""


def ok_job():
    return {"type": "run", "source": OK_PROG, "extensions": ["matrix"]}


@pytest.fixture(scope="module")
def pool():
    counters = Counters()
    p = WorkerPool(2, counters=counters, default_timeout_s=15.0,
                   output_cap=4096)
    yield p
    p.close()


class TestHappyPath:
    def test_runs_and_returns_stdout(self, pool):
        r = pool.submit_raw(ok_job())
        assert r["ok"] and r["kind"] == "ok"
        assert r["stdout"] == ["10"]
        assert r["returncode"] == 0

    def test_repeat_requests_reuse_workers(self, pool):
        pids = set()
        for _ in range(4):
            r = pool.submit_raw({"type": "_ping"})
            pids.add(r["pid"])
        assert len(pids) <= 2  # both jobs landed on the 2 live workers


class TestCrashIsolation:
    def test_crash_reported_and_pool_recovers(self, pool):
        before = pool.counters.snapshot().serve_worker_restarts
        r = pool.submit_raw({"type": "_crash"})
        assert not r["ok"] and r["kind"] == "worker_lost"
        r2 = pool.submit_raw(ok_job())
        assert r2["ok"], r2
        assert pool.alive_workers == 2
        assert pool.counters.snapshot().serve_worker_restarts == before + 1

    def test_trap_is_a_result_not_a_crash(self, pool):
        r = pool.submit_raw(
            {"type": "run", "source": TRAP_PROG, "extensions": ["matrix"]})
        assert not r["ok"] and r["kind"] == "trap"
        assert "out of bounds" in r["error"]
        assert r["returncode"] == 2
        assert pool.alive_workers == 2

    def test_compile_error_is_a_result(self, pool):
        r = pool.submit_raw(
            {"type": "run", "source": "int main() { return x; }",
             "extensions": ["matrix"]})
        assert not r["ok"] and r["kind"] == "compile_error"
        assert any("undeclared" in e for e in r["errors"])


class TestTimeouts:
    def test_infinite_loop_times_out(self, pool):
        before = pool.counters.snapshot().serve_timeouts
        t0 = time.monotonic()
        r = pool.submit_raw(
            {"type": "run", "source": LOOP_PROG, "extensions": ["matrix"]},
            timeout_s=1.0)
        elapsed = time.monotonic() - t0
        assert not r["ok"] and r["kind"] == "timeout"
        assert elapsed < 8.0  # in-process alarm or the 1.5x hard kill
        assert pool.counters.snapshot().serve_timeouts == before + 1

    def test_pool_serves_after_timeout(self, pool):
        r = pool.submit_raw(ok_job())
        assert r["ok"], r
        assert pool.alive_workers == 2


class TestOutputCap:
    def test_print_bomb_is_capped(self, pool):
        r = pool.submit_raw(
            {"type": "run", "source": PRINT_BOMB, "extensions": ["matrix"]},
            timeout_s=20.0)
        assert not r["ok"] and r["kind"] == "output_limit"
        assert r["truncated"]
        # The worker kept what was printed before the cap tripped.
        assert 0 < len(r["stdout"]) < 100000

    def test_capped_stdout_unit(self):
        sink = CappedStdout(10)
        sink.append("12345")
        with pytest.raises(OutputLimitExceeded):
            sink.append("123456")
        assert list(sink) == ["12345"]


class TestRecycling:
    def test_worker_retired_after_max_requests(self):
        counters = Counters()
        p = WorkerPool(1, counters=counters, max_requests_per_worker=3,
                       default_timeout_s=15.0)
        try:
            pids = []
            for _ in range(6):
                r = p.submit_raw({"type": "_ping"})
                pids.append(r["pid"])
            # 3 requests per interpreter, then a fresh one.
            assert len(set(pids)) >= 2
            assert pids[0] == pids[1] == pids[2]
            assert pids[3] == pids[4] == pids[5]
            assert pids[0] != pids[3]
            assert counters.snapshot().serve_worker_restarts >= 1
        finally:
            p.close()


class TestClose:
    def test_close_is_idempotent_and_kills_all(self):
        p = WorkerPool(2, default_timeout_s=15.0)
        assert p.alive_workers == 2
        p.close()
        p.close()
        assert p.alive_workers == 0
        r = p.submit_raw(ok_job())
        assert r["kind"] == "shutdown"


class TestRunLimitedInProcess:
    """The entry the workers call, exercised without a process hop."""

    def test_ok(self, tmp_path):
        r = run_limited(OK_PROG, ["matrix"], workdir=tmp_path)
        assert r["ok"] and r["stdout"] == ["10"]
        assert r["stats"]["allocs"] >= 1

    def test_outputs_roundtrip(self, tmp_path):
        prog = """
int main() {
    Matrix float <1> v = init(Matrix float <1>, 3);
    v = with ([0] <= [i] < [3]) genarray([3], 2.0 * i);
    writeMatrix("out.data", v);
    return 0;
}
"""
        r = run_limited(prog, ["matrix"], output_names=["out.data"],
                        workdir=tmp_path)
        assert r["ok"]
        assert r["outputs"]["out.data"] == [0.0, 2.0, 4.0]

    def test_inputs_materialized(self, tmp_path):
        prog = """
int main() {
    Matrix float <1> v = readMatrix("in.data");
    printFloat(with ([0] <= [i] < [3]) fold(+, 0.0, v[i]));
    return 0;
}
"""
        r = run_limited(prog, ["matrix"], inputs={"in.data": [1.0, 2.0, 3.0]},
                        workdir=tmp_path)
        assert r["ok"] and r["stdout"] == ["6"]

    def test_timeout_main_thread(self, tmp_path):
        t0 = time.monotonic()
        r = run_limited(LOOP_PROG, ["matrix"], timeout_s=0.5,
                        workdir=tmp_path)
        assert not r["ok"] and r["kind"] == "timeout"
        assert time.monotonic() - t0 < 5.0
