"""Daemon integration: concurrent clients, coalescing, isolation, drain.

Every test here runs a real :class:`ReproServer` bound to an ephemeral
TCP port (or an AF_UNIX socket) with real HTTP clients on threads — the
same path production traffic takes, minus the network.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import ReproServer, ServeClient, ServeConfig
from repro.service import CompileService
from repro.service.cache import TranslatorCache
from repro.service.artifacts import ArtifactStore

OK_PROG = """
int main() {
    Matrix float <1> v = init(Matrix float <1>, 4);
    v[0] = 1.0; v[1] = 2.0; v[2] = 3.0; v[3] = 4.0;
    float s = with ([0] <= [i] < [4]) fold(+, 0.0, v[i]);
    printFloat(s);
    return 0;
}
"""

LOOP_PROG = """
int main() {
    int i = 0;
    while (1 == 1) { i = i + 1; if (i > 1000000) i = 0; }
    return 0;
}
"""


def fresh_server(tmp_path, **over) -> ReproServer:
    """A daemon with an isolated cache (no cross-test counter bleed)."""
    cache = TranslatorCache(artifacts=ArtifactStore(tmp_path / "artifacts"))
    service = CompileService(cache)
    defaults = dict(port=0, pool_size=2, queue_depth=8,
                    default_timeout_s=20.0)
    defaults.update(over)
    return ReproServer(ServeConfig(**defaults), service=service)


@pytest.fixture()
def server(tmp_path):
    with fresh_server(tmp_path) as s:
        yield s


@pytest.fixture()
def client(server):
    c = ServeClient(port=server.port)
    assert c.wait_ready(15.0)
    return c


class TestBasics:
    def test_compile_run_check_stats(self, client):
        r = client.compile(OK_PROG)
        assert r["ok"] and "rt_alloc" in r["c_source"]
        r = client.run(OK_PROG)
        assert r["ok"] and r["stdout"] == ["10"]
        r = client.check(OK_PROG)
        assert r["ok"] and r["error_count"] == 0
        st = client.stats()
        assert st["ok"]
        assert st["stats"]["serve_compile"] == 1
        assert st["stats"]["serve_run"] == 1
        assert st["stats"]["serve_check"] == 1

    def test_compile_error_is_200_with_errors(self, client):
        r = client.compile("int main() { return x; }")
        assert r["_status"] == 200
        assert not r["ok"] and r["kind"] == "compile_error"
        assert any("undeclared" in e for e in r["errors"])

    def test_malformed_request_is_400(self, client):
        r = client.request("run", source="")
        assert r["_status"] == 400 and r["kind"] == "bad_request"

    def test_unknown_endpoint_is_404(self, client, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        conn.request("POST", "/frobnicate", body=b"{}")
        resp = conn.getresponse()
        assert resp.status == 404
        conn.close()

    def test_type_endpoint_mismatch_is_400(self, client, server):
        import http.client
        import json

        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        conn.request("POST", "/run",
                     body=json.dumps({"type": "compile",
                                      "source": OK_PROG}).encode())
        resp = conn.getresponse()
        assert resp.status == 400
        conn.close()


class TestConcurrentClients:
    N_CLIENTS = 10

    def test_identical_requests_coalesce(self, server, client):
        results = [None] * self.N_CLIENTS

        def go(i):
            c = ServeClient(port=server.port)
            results[i] = c.run(OK_PROG, nthreads=1)

        threads = [threading.Thread(target=go, args=(i,))
                   for i in range(self.N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(r["ok"] for r in results)
        # Deterministic output for every client, leader and follower alike.
        assert {tuple(r["stdout"]) for r in results} == {("10",)}
        coalesced = sum(1 for r in results if r["coalesced"])
        leaders = sum(1 for r in results if not r["coalesced"])
        assert coalesced + leaders == self.N_CLIENTS
        assert coalesced >= 1  # the herd shared work
        st = client.stats()["stats"]
        assert st["serve_coalesced"] == coalesced
        assert st["serve_run"] == self.N_CLIENTS

    def test_distinct_requests_do_not_coalesce(self, server):
        def go(i):
            c = ServeClient(port=server.port)
            prog = OK_PROG.replace("4.0;", f"4.0 + {i}.0;")
            return c.run(prog)

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(go, range(4)))
        assert all(r["ok"] for r in results)
        outs = [r["stdout"][0] for r in results]
        assert outs == ["10", "11", "12", "13"]
        assert not any(r["coalesced"] for r in results)

    def test_infinite_loop_does_not_starve_neighbors(self, server):
        """The acceptance bullet: a runaway program times out while a
        concurrent well-behaved request completes correctly."""
        outcomes = {}

        def bad():
            c = ServeClient(port=server.port)
            outcomes["bad"] = c.run(LOOP_PROG, timeout_s=1.5)

        def good():
            time.sleep(0.3)  # let the loop start first
            c = ServeClient(port=server.port)
            outcomes["good"] = c.run(OK_PROG)

        tb, tg = threading.Thread(target=bad), threading.Thread(target=good)
        tb.start(); tg.start()
        tb.join(timeout=30); tg.join(timeout=30)

        assert outcomes["good"]["ok"]
        assert outcomes["good"]["stdout"] == ["10"]
        assert outcomes["bad"]["kind"] == "timeout"
        # Daemon is still fully operational afterwards.
        c = ServeClient(port=server.port)
        assert c.run(OK_PROG)["ok"]

    def test_worker_crash_mid_load_recovers(self, server, client):
        # _crash is a pool-level test hook; reach it via the pool to
        # simulate a hard worker death under concurrent traffic.
        def crash():
            server.pool.submit_raw({"type": "_crash"})

        t = threading.Thread(target=crash)
        t.start()
        results = [client.run(OK_PROG) for _ in range(3)]
        t.join()
        assert all(r["ok"] for r in results)
        assert client.stats()["stats"]["serve_worker_restarts"] >= 1


class TestBackpressure:
    def test_queue_full_gets_429_busy(self, tmp_path):
        with fresh_server(tmp_path, queue_depth=1, pool_size=1) as server:
            client = ServeClient(port=server.port)
            assert client.wait_ready(15.0)
            client.run(OK_PROG)  # warm the worker's translator

            hold = threading.Event()
            slow_results = []

            def slow(i):
                c = ServeClient(port=server.port)
                hold.wait()
                # Distinct sources: no coalescing, each needs a slot.
                prog = LOOP_PROG.replace("i = 0;", f"i = {i};")
                slow_results.append(c.run(prog, timeout_s=3.0))

            threads = [threading.Thread(target=slow, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            hold.set()
            for t in threads:
                t.join(timeout=60)

            kinds = sorted(r["kind"] for r in slow_results)
            assert "busy" in kinds  # someone hit the depth-1 queue
            busy = [r for r in slow_results if r["kind"] == "busy"]
            assert all(r["_status"] == 429 for r in busy)
            st = client.stats()["stats"]
            assert st["serve_rejections"] == len(busy)


class TestGracefulShutdown:
    def test_shutdown_request_drains_and_stops(self, tmp_path):
        server = fresh_server(tmp_path).start()
        client = ServeClient(port=server.port)
        assert client.wait_ready(15.0)
        assert client.run(OK_PROG)["ok"]
        body = client.shutdown()
        assert body["kind"] == "shutting_down"
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and server.pool.alive_workers:
            time.sleep(0.05)
        assert server.pool.alive_workers == 0
        server.stop()  # idempotent

    def test_context_manager_stops_cleanly(self, tmp_path):
        with fresh_server(tmp_path) as server:
            c = ServeClient(port=server.port)
            assert c.wait_ready(15.0)
            assert c.run(OK_PROG)["ok"]
        assert server.pool.alive_workers == 0


class TestUnixSocket:
    def test_full_cycle_over_af_unix(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        with fresh_server(tmp_path, socket_path=path) as server:
            c = ServeClient(socket_path=path)
            assert c.wait_ready(15.0)
            r = c.run(OK_PROG)
            assert r["ok"] and r["stdout"] == ["10"]
            assert c.stats()["stats"]["serve_run"] == 1
        import os

        assert not os.path.exists(path)  # cleaned up on stop


class TestCancellation:
    def test_cancel_token_abandons_compile(self):
        from repro.service import (
            CANCELLED, CancelToken, CompileRequest, CompileService,
        )

        service = CompileService(TranslatorCache())
        token = CancelToken()
        token.cancel()
        resp = service.compile(
            CompileRequest(OK_PROG, cancel=token))
        assert not resp.ok and CANCELLED in resp.errors
        assert service.stats().serve_cancelled == 1

    def test_uncancelled_token_is_inert(self):
        from repro.service import CancelToken, CompileRequest, CompileService

        service = CompileService(TranslatorCache())
        resp = service.compile(
            CompileRequest(OK_PROG, cancel=CancelToken()))
        assert resp.ok
