"""Protocol units: validation, coalescing identity, encoding."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    ProtocolError,
    REQUEST_TYPES,
    ServeRequest,
    decode_body,
    encode_response,
)

SRC = "int main() { return 0; }"


class TestValidation:
    def test_minimal_request(self):
        r = ServeRequest.from_payload({"type": "compile", "source": SRC})
        assert r.type == "compile"
        assert r.extensions == ("matrix",)
        assert r.engine == "vm"
        assert r.nthreads == 1

    def test_all_types_accepted(self):
        for t in REQUEST_TYPES:
            payload = {"type": t}
            if t in ("compile", "check", "run"):
                payload["source"] = SRC
            assert ServeRequest.from_payload(payload).type == t

    @pytest.mark.parametrize("payload,fragment", [
        (["not", "a", "dict"], "JSON object"),
        ({"type": "frobnicate", "source": SRC}, "request type"),
        ({"type": "run"}, "non-empty 'source'"),
        ({"type": "run", "source": SRC, "bogus": 1}, "unknown request fields"),
        ({"type": "run", "source": 42}, "'source' must be a string"),
        ({"type": "run", "source": SRC, "extensions": [1]}, "'extensions'"),
        ({"type": "run", "source": SRC, "engine": "jit"}, "'engine'"),
        ({"type": "run", "source": SRC, "nthreads": 0}, "'nthreads'"),
        ({"type": "run", "source": SRC, "nthreads": 65}, "'nthreads'"),
        ({"type": "run", "source": SRC, "timeout_s": -1}, "'timeout_s'"),
        ({"type": "run", "source": SRC, "inputs": [1]}, "'inputs'"),
        ({"type": "run", "source": SRC, "output_names": "x"},
         "'output_names'"),
        ({"type": "run", "source": SRC, "options": {"mystery": True}},
         "unknown options"),
        ({"type": "run", "source": SRC, "options": {"parallelize": 1}},
         "booleans"),
        ({"type": "run", "source": SRC, "explain_parallel": "yes"},
         "'explain_parallel'"),
    ])
    def test_rejects_with_precise_message(self, payload, fragment):
        with pytest.raises(ProtocolError, match=".*"):
            try:
                ServeRequest.from_payload(payload)
            except ProtocolError as e:
                assert fragment in str(e)
                raise

    def test_source_size_cap(self):
        with pytest.raises(ProtocolError) as ei:
            ServeRequest.from_payload(
                {"type": "compile", "source": "x" * ((4 << 20) + 1)})
        assert "exceeds" in str(ei.value)

    def test_extensions_comma_string(self):
        r = ServeRequest.from_payload(
            {"type": "compile", "source": SRC,
             "extensions": "matrix,cilk"})
        assert r.extensions == ("matrix", "cilk")


class TestCoalesceKey:
    BASE = {"type": "run", "source": SRC, "extensions": ["matrix"]}

    def key(self, **over):
        return ServeRequest.from_payload({**self.BASE, **over}).coalesce_key()

    def test_identical_requests_share_a_key(self):
        assert self.key() == self.key()

    def test_timeout_does_not_split(self):
        assert self.key(timeout_s=1.0) == self.key(timeout_s=60.0)

    @pytest.mark.parametrize("field,value", [
        ("source", SRC + " "),
        ("extensions", ["matrix", "cilk"]),
        ("engine", "tree"),
        ("nthreads", 2),
        ("filename", "other.xc"),
        ("inputs", {"a.data": [1.0]}),
        ("output_names", ["out.data"]),
        ("options", {"parallelize": False}),
        ("explain_parallel", True),
    ])
    def test_each_semantic_field_splits(self, field, value):
        assert self.key() != self.key(**{field: value})

    def test_type_splits(self):
        assert (self.key() !=
                ServeRequest.from_payload(
                    {**self.BASE, "type": "compile"}).coalesce_key())


class TestEncoding:
    def test_roundtrip(self):
        body = {"ok": True, "kind": "ok", "stdout": ["1", "2"]}
        assert json.loads(encode_response(body).decode()) == body
        assert decode_body(encode_response(body)) == body

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_body(b"\xff\xfe not json")
