"""RMAT format: roundtrips (Python<->Python and Python<->C runtime)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.cexec.rmat import RMATError, read_rmat, write_rmat


class TestRoundtrip:
    def test_float_cube(self, tmp_path):
        a = np.random.default_rng(0).normal(0, 1, (3, 4, 5)).astype(np.float32)
        write_rmat(tmp_path / "x", a)
        assert np.array_equal(read_rmat(tmp_path / "x"), a)

    def test_int_vector(self, tmp_path):
        a = np.array([-5, 0, 7, 123456], dtype=np.int32)
        write_rmat(tmp_path / "x", a)
        got = read_rmat(tmp_path / "x")
        assert got.dtype.kind == "i" and np.array_equal(got, a)

    def test_bool_becomes_int(self, tmp_path):
        a = np.array([True, False, True])
        write_rmat(tmp_path / "x", a)
        got = read_rmat(tmp_path / "x")
        assert got.dtype.kind == "i" and np.array_equal(got, a.astype(np.int32))

    def test_float64_downcast(self, tmp_path):
        a = np.array([1.5, 2.5], dtype=np.float64)
        write_rmat(tmp_path / "x", a)
        assert read_rmat(tmp_path / "x").dtype == np.float32

    def test_noncontiguous_input(self, tmp_path):
        a = np.arange(24, dtype=np.float32).reshape(4, 6)[:, ::2]
        write_rmat(tmp_path / "x", a)
        assert np.array_equal(read_rmat(tmp_path / "x"), a)

    def test_rank0_roundtrip_float(self, tmp_path):
        a = np.float32(3.25)  # 0-d: a scalar matrix, one element
        write_rmat(tmp_path / "x", a)
        got = read_rmat(tmp_path / "x")
        assert got.shape == () and got == a

    def test_rank0_roundtrip_int(self, tmp_path):
        write_rmat(tmp_path / "x", np.int32(-7))
        got = read_rmat(tmp_path / "x")
        assert got.shape == () and got == -7

    def test_bad_magic(self, tmp_path):
        (tmp_path / "x").write_bytes(b"NOPE1234")
        with pytest.raises(RMATError, match="not an RMAT"):
            read_rmat(tmp_path / "x")

    def test_truncated_payload(self, tmp_path):
        a = np.zeros((4, 4), dtype=np.float32)
        write_rmat(tmp_path / "x", a)
        data = (tmp_path / "x").read_bytes()
        (tmp_path / "x").write_bytes(data[:-8])
        with pytest.raises(RMATError, match="payload"):
            read_rmat(tmp_path / "x")

    def test_unsupported_dtype(self, tmp_path):
        with pytest.raises(RMATError, match="unsupported"):
            write_rmat(tmp_path / "x", np.array(["a", "b"]))

    def test_truncated_header(self, tmp_path):
        (tmp_path / "x").write_bytes(b"RMAT\x01\x00")
        with pytest.raises(RMATError, match="truncated header"):
            read_rmat(tmp_path / "x")

    def test_truncated_dims(self, tmp_path):
        a = np.zeros((2, 3), dtype=np.float32)
        write_rmat(tmp_path / "x", a)
        data = (tmp_path / "x").read_bytes()
        (tmp_path / "x").write_bytes(data[:4 + 8 + 8 + 4])  # mid-dims cut
        with pytest.raises(RMATError, match="truncated dimension"):
            read_rmat(tmp_path / "x")

    def test_corrupt_payload_not_word_aligned(self, tmp_path):
        a = np.zeros(3, dtype=np.float32)
        write_rmat(tmp_path / "x", a)
        data = (tmp_path / "x").read_bytes()
        (tmp_path / "x").write_bytes(data[:-2])
        with pytest.raises(RMATError, match="corrupt payload"):
            read_rmat(tmp_path / "x")

    def test_negative_rank(self, tmp_path):
        import struct

        (tmp_path / "x").write_bytes(b"RMAT" + struct.pack("<ii", 1, -1))
        with pytest.raises(RMATError, match="negative rank"):
            read_rmat(tmp_path / "x")

    def test_bad_element_kind(self, tmp_path):
        import struct

        (tmp_path / "x").write_bytes(b"RMAT" + struct.pack("<ii", 9, 0))
        with pytest.raises(RMATError, match="bad element kind"):
            read_rmat(tmp_path / "x")


@settings(max_examples=50, deadline=None)
@given(arrays(np.float32,
              array_shapes(min_dims=1, max_dims=4, min_side=0, max_side=6),
              elements=st.floats(-1e6, 1e6, width=32)))
def test_roundtrip_property_float(tmp_path_factory, a):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as td:
        p = Path(td) / "x"
        write_rmat(p, a)
        got = read_rmat(p)
    assert got.shape == a.shape
    assert np.array_equal(got, a, equal_nan=True)


@settings(max_examples=30, deadline=None)
@given(arrays(np.int32,
              array_shapes(min_dims=1, max_dims=3, min_side=0, max_side=8),
              elements=st.integers(-2**31, 2**31 - 1)))
def test_roundtrip_property_int(a):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as td:
        p = Path(td) / "x"
        write_rmat(p, a)
        got = read_rmat(p)
    assert np.array_equal(got, a)


class TestCInterop:
    """The C runtime and the Python reader agree on the format."""

    def test_python_write_c_read_c_write_python_read(self, tmp_path):
        from repro.cexec import compile_and_run, gcc_available

        if not gcc_available():
            pytest.skip("gcc not available")
        a = np.random.default_rng(1).normal(0, 1, (5, 7)).astype(np.float32)
        src = """int main() {
            Matrix float <2> m = readMatrix("in.data");
            writeMatrix("out.data", m);
            return 0;
        }"""
        run = compile_and_run(src, ["matrix"], {"in.data": a},
                              output_names=["out.data"])
        assert np.array_equal(run.outputs["out.data"], a)

    def test_int_matrix_through_c(self, tmp_path):
        from repro.cexec import compile_and_run, gcc_available

        if not gcc_available():
            pytest.skip("gcc not available")
        a = np.arange(-6, 6, dtype=np.int32).reshape(3, 4)
        src = """int main() {
            Matrix int <2> m = readMatrix("in.data");
            writeMatrix("out.data", m + 1);
            return 0;
        }"""
        run = compile_and_run(src, ["matrix"], {"in.data": a},
                              output_names=["out.data"])
        assert np.array_equal(run.outputs["out.data"], a + 1)
