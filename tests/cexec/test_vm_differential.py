"""Differential testing: bytecode VM vs. tree-walking interpreter.

The VM is the default engine; the tree-walker is the reference.  For the
whole example corpus — and for targeted programs poking the trickier
VM/fast-path corners — both engines must produce identical return codes,
stdout, RMAT outputs (bit-for-bit), runtime traps, and InterpStats
counters (allocs/frees/copies/regions/region sizes/tasks).
"""

import numpy as np
import pytest

from repro.cexec.interp import InterpError, RuntimeTrap, run_program
from repro.eddy import synthetic_ssh
from repro.programs import load

CILK_FIB = """
int fib(int n) {
    if (n < 2) return n;
    int a = 0;
    int b = 0;
    spawn a = fib(n - 1);
    spawn b = fib(n - 2);
    sync;
    return a + b;
}
int main() {
    int r = 0;
    spawn r = fib(10);
    sync;
    printInt(r);
    return 0;
}
"""


def run_one(engine, src, exts, inputs=None, outputs=None, nthreads=None,
            options=None, fork_mode="enhanced"):
    """Run on one engine; returns (rc, trap, stats_tuple, stdout, outputs)."""
    trap = None
    rc, outs, st, ex = None, {}, None, None
    try:
        rc, outs, st, ex = run_program(
            src, list(exts), inputs, output_names=outputs,
            nthreads=nthreads, options=options, engine=engine,
            fork_mode=fork_mode)
    except RuntimeTrap as t:
        trap = str(t)
    stats = None
    if st is not None:
        stats = (st.allocs, st.frees, st.copies, st.parallel_regions,
                 st.tasks_spawned, tuple(st.region_sizes))
    return (rc, trap, stats, list(ex.stdout) if ex else None, outs)


def run_both(src, exts, inputs=None, outputs=None, nthreads=None,
             options=None):
    """Run on both engines; return (tree_result, vm_result) where each
    is (rc_or_trap, stats_tuple, stdout, outputs).

    ``nthreads=None`` defers to ``REPRO_THREADS`` (default 2 here), so CI
    can rerun this whole suite with a 4-worker VM pool engaged and assert
    that nothing observable moves."""
    from repro.cexec.parallel import resolve_nthreads

    nthreads = resolve_nthreads(nthreads, default=2)
    return (run_one("tree", src, exts, inputs, outputs, nthreads, options),
            run_one("vm", src, exts, inputs, outputs, nthreads, options))


def assert_identical(tree, vm, label=""):
    t_rc, t_trap, t_stats, t_out, t_files = tree
    v_rc, v_trap, v_stats, v_out, v_files = vm
    assert t_rc == v_rc, f"{label}: rc {t_rc} vs {v_rc}"
    assert t_trap == v_trap, f"{label}: trap {t_trap!r} vs {v_trap!r}"
    assert t_stats == v_stats, f"{label}: stats {t_stats} vs {v_stats}"
    assert t_out == v_out, f"{label}: stdout {t_out} vs {v_out}"
    assert set(t_files) == set(v_files), f"{label}: output files differ"
    for k in t_files:
        assert t_files[k].dtype == v_files[k].dtype, f"{label}: {k} dtype"
        assert np.array_equal(t_files[k], v_files[k], equal_nan=True), \
            f"{label}: {k} payload differs"


class TestExampleCorpus:
    def test_fig1_temporal_mean(self):
        cube = np.random.default_rng(0).normal(
            0, 0.5, (6, 8, 12)).astype(np.float32)
        t, v = run_both(load("fig1"), ("matrix",), {"ssh.data": cube},
                        ["means.data"], nthreads=3)
        assert_identical(t, v, "fig1")
        assert t[2][3] >= 1  # parallel regions exercised on both

    def test_fig4_conncomp(self):
        rng = np.random.default_rng(9)
        ssh = rng.normal(0.2, 0.5, (8, 9, 5)).astype(np.float32)
        dates = np.array([1011990, 1012000, 1012010, 1012020, 1012030],
                         dtype=np.int32)
        t, v = run_both(load("fig4"), ("matrix",),
                        {"ssh.data": ssh, "dates.data": dates},
                        ["eddyLabels.data"])
        assert_identical(t, v, "fig4")

    def test_fig8_eddy_pipeline(self):
        data = synthetic_ssh((5, 6, 32), n_eddies=2, seed=21)
        t, v = run_both(load("fig8"), ("matrix",), {"ssh.data": data.cube},
                        ["temporalScores.data"])
        assert_identical(t, v, "fig8")

    def test_fig9_transform_annotated(self):
        c = np.random.default_rng(3).normal(0, 1, (6, 8, 10)).astype(np.float32)
        t, v = run_both(load("fig9"), ("matrix", "transform"),
                        {"ssh.data": c}, ["means.data"])
        assert_identical(t, v, "fig9")

    def test_fig1_library_baseline_options(self):
        from repro.api import Optimizations

        cube = np.random.default_rng(5).normal(
            0, 1, (4, 5, 9)).astype(np.float32)
        opts = Optimizations(fuse_assignment=False, eliminate_slices=False)
        t, v = run_both(load("fig1"), ("matrix",), {"ssh.data": cube},
                        ["means.data"], options=opts)
        assert_identical(t, v, "fig1-baseline")
        assert t[2][2] == 1  # the materialized with-loop temp copy

    def test_cilk_fib(self):
        t, v = run_both(CILK_FIB, ("cilk",))
        assert_identical(t, v, "cilk-fib")
        assert t[3] == ["55"]
        assert t[2][4] > 100  # sequential elision still counts spawns

    def test_thread_count_invariance_on_vm(self):
        cube = np.random.default_rng(11).normal(
            0, 1, (5, 6, 20)).astype(np.float32)
        outs = []
        for n in (1, 2, 5):
            _rc, files, _st, _ex = run_program(
                load("fig1"), ["matrix"], {"ssh.data": cube},
                output_names=["means.data"], nthreads=n, engine="vm")
            outs.append(files["means.data"])
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])


PRINTING_MAP = """
Matrix float <1> tag(Matrix float <1> v) {
    printFloat(v[0]);
    return v * 2.0;
}
int main() {
    Matrix float <2> a = readMatrix("a.data");
    Matrix float <2> b = matrixMap(tag, a, [1]);
    writeMatrix("b.data", b);
    return 0;
}
"""

SHARD_TRAP = """
int main() {
    Matrix int <1> num = readMatrix("num.data");
    Matrix int <1> den = readMatrix("den.data");
    Matrix int <1> q = init(Matrix int <1>, 20);
    q = with ([0] <= [i] < [20]) genarray([20], num[i] / den[i]);
    writeMatrix("q.data", q);
    return 0;
}
"""


class TestParallelIdentity:
    """The acceptance bar for S23: a 4-worker VM run must be
    *observationally identical* to the sequential one — rc, traps,
    stdout order, bit-identical outputs, and the full merged stats tuple
    including region sizes and task counts."""

    def vm_pair(self, src, exts, inputs=None, outputs=None,
                fork_mode="enhanced"):
        seq = run_one("vm", src, exts, inputs, outputs, nthreads=1)
        par = run_one("vm", src, exts, inputs, outputs, nthreads=4,
                      fork_mode=fork_mode)
        return seq, par

    def test_fig1_identical_at_4_workers(self):
        cube = np.random.default_rng(7).normal(
            0, 0.5, (7, 5, 33)).astype(np.float32)
        seq, par = self.vm_pair(load("fig1"), ("matrix",),
                                {"ssh.data": cube}, ["means.data"])
        assert_identical(seq, par, "fig1-par")
        assert seq[2][3] >= 1  # a parallel region actually ran

    def test_fig8_identical_at_4_workers(self):
        data = synthetic_ssh((5, 6, 32), n_eddies=2, seed=3)
        seq, par = self.vm_pair(load("fig8"), ("matrix",),
                                {"ssh.data": data.cube},
                                ["temporalScores.data"])
        assert_identical(seq, par, "fig8-par")

    def test_fig4_matrixmap_identical_at_4_workers(self):
        # matrixMap bodies allocate slices and drive refcounts inside
        # the shards — alloc/free/copy counters must still merge exactly.
        rng = np.random.default_rng(13)
        ssh = rng.normal(0.1, 0.5, (7, 6, 5)).astype(np.float32)
        dates = np.array([1011990, 1012000, 1012010, 1012020, 1012030],
                         dtype=np.int32)
        seq, par = self.vm_pair(load("fig4"), ("matrix",),
                                {"ssh.data": ssh, "dates.data": dates},
                                ["eddyLabels.data"])
        assert_identical(seq, par, "fig4-par")

    def test_print_order_preserved_across_shards(self):
        # Worker shards buffer prints thread-locally; the left-to-right
        # merge must reproduce the sequential iteration order exactly.
        a = np.random.default_rng(23).normal(
            0, 2, (11, 3)).astype(np.float32)
        seq, par = self.vm_pair(PRINTING_MAP, ("matrix",),
                                {"a.data": a}, ["b.data"])
        assert_identical(seq, par, "print-order")
        assert len(seq[3]) == 11  # one line per mapped row, in row order

    @pytest.mark.parametrize("zero_at", [1, 13, 19])
    def test_first_trap_wins_matches_sequential(self, zero_at):
        # A zero divisor at iteration `zero_at` traps in exactly one
        # shard; the parallel run must re-raise the lowest-index trap
        # with the same partial stats the sequential run accumulated.
        num = np.arange(1, 21, dtype=np.int32)
        den = np.ones(20, dtype=np.int32)
        den[zero_at] = 0
        seq, par = self.vm_pair(SHARD_TRAP, ("matrix",),
                                {"num.data": num, "den.data": den},
                                ["q.data"])
        assert seq[1] is not None and "zero" in seq[1]
        assert_identical(seq, par, f"shard-trap@{zero_at}")

    def test_cilk_fib_identical_and_counter_parity(self):
        # Satellite: elided (n=1) and pooled (n=4) Cilk runs must report
        # the same tasks_spawned — spawns are counted at the spawn point,
        # not at execution.
        seq, par = self.vm_pair(CILK_FIB, ("cilk",))
        assert_identical(seq, par, "cilk-par")
        assert seq[2][4] == par[2][4] > 100

    def test_naive_fork_mode_identical(self):
        # The spawn-per-construct comparison model must also be exact —
        # it reuses the same shard jobs, only the dispatch differs.
        cube = np.random.default_rng(29).normal(
            0, 1, (6, 4, 17)).astype(np.float32)
        seq, par = self.vm_pair(load("fig1"), ("matrix",),
                                {"ssh.data": cube}, ["means.data"],
                                fork_mode="naive")
        assert_identical(seq, par, "fig1-naive")


class TestTrapsAndEdgeCases:
    def test_shape_mismatch_trap(self):
        src = """int main() {
            Matrix float <1> a = init(Matrix float <1>, 4);
            Matrix float <1> b = init(Matrix float <1>, 5);
            Matrix float <1> c = a + b;
            writeMatrix("c.data", c);
            return 0;
        }"""
        t, v = run_both(src, ("matrix",))
        assert_identical(t, v, "shape-trap")
        assert t[1] is not None and "shapes" in t[1]

    def test_integer_division_semantics(self):
        # c_div truncates toward zero; the numpy fast path must bail on
        # int/int division and let the scalar engines agree.
        src = """int main() {
            Matrix int <1> a = readMatrix("a.data");
            Matrix int <1> b = init(Matrix int <1>, 6);
            b = with ([0] <= [i] < [6]) genarray([6], a[i] / (0 - 2));
            writeMatrix("b.data", b);
            printInt((0 - 7) / 2);
            printInt(7 % (0 - 2));
            return 0;
        }"""
        a = np.array([-7, -6, -1, 0, 5, 7], dtype=np.int32)
        t, v = run_both(src, ("matrix",), {"a.data": a}, ["b.data"])
        assert_identical(t, v, "c-div")
        assert t[3] == ["-3", "1"]
        assert np.array_equal(t[4]["b.data"],
                              np.array([3, 3, 0, 0, -2, -3], dtype=np.int32))

    def test_division_by_zero_trap(self):
        src = """int main() {
            int z = 0;
            printInt(4 / z);
            return 0;
        }"""
        t, v = run_both(src, ())
        assert_identical(t, v, "div0")
        assert t[1] is not None

    def test_float_narrowing_identical(self):
        # float32 store rounding must match element-by-element
        src = """int main() {
            Matrix float <1> a = readMatrix("a.data");
            Matrix float <1> b = init(Matrix float <1>, 64);
            b = with ([0] <= [i] < [64]) genarray([64], a[i] * 1.0000001 + 0.3);
            writeMatrix("b.data", b);
            return 0;
        }"""
        a = (np.random.default_rng(2).normal(0, 100, 64)).astype(np.float32)
        t, v = run_both(src, ("matrix",), {"a.data": a}, ["b.data"])
        assert_identical(t, v, "f32-narrow")

    def test_fold_rounding_identical(self):
        # left-to-right float accumulation: cumsum path vs scalar fold
        src = """int main() {
            Matrix float <1> a = readMatrix("a.data");
            float s = with ([0] <= [i] < [1000]) fold(+, 0.0, a[i]);
            printFloat(s);
            return 0;
        }"""
        rng = np.random.default_rng(4)
        a = (rng.normal(0, 1, 1000)
             * 10.0 ** rng.integers(-6, 6, 1000)).astype(np.float32)
        t, v = run_both(src, ("matrix",), {"a.data": a})
        assert_identical(t, v, "fold-rounding")

    def test_rank_mismatch_trap(self):
        src = """int main() {
            Matrix float <2> a = readMatrix("a.data");
            writeMatrix("out.data", a);
            return 0;
        }"""
        a = np.zeros(5, dtype=np.float32)  # rank 1, declared rank 2
        t, v = run_both(src, ("matrix",), {"a.data": a}, ["out.data"])
        assert_identical(t, v, "rank-trap")
        assert t[1] is not None and "rank" in t[1]

    def test_host_only_program(self):
        src = """
        int add(int a, int b) { return a + b; }
        int main() {
            int i = 0;
            int acc = 0;
            while (i < 10) {
                if (i % 3 == 0) { i = i + 1; continue; }
                if (i > 7) break;
                acc = add(acc, i);
                i = i + 1;
            }
            printInt(acc);
            return acc;
        }"""
        t, v = run_both(src, ())
        assert_identical(t, v, "host-control-flow")

    def test_unknown_function_errors_identically(self):
        # Both engines fault lazily, at call time, with the same message
        src = "int main() { return 0; }"
        from repro.api import compile_source
        from repro.cexec.interp import make_engine

        cr = compile_source(src, [])
        for eng in ("tree", "vm"):
            ex = make_engine(cr.lowered, cr.ctx, engine=eng)
            assert ex.run_main() == 0
            with pytest.raises(InterpError, match="unknown function"):
                ex.call_function("nope", [])


class TestEngineSelection:
    def test_make_engine_rejects_unknown(self):
        from repro.api import compile_source
        from repro.cexec.interp import make_engine

        cr = compile_source("int main() { return 3; }", [])
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine(cr.lowered, cr.ctx, engine="jit")

    def test_run_source_api(self, tmp_path):
        from repro.api import run_source

        rc, _outs, stats, ex = run_source(
            "int main() { printInt(41 + 1); return 0; }", [],
            workdir=tmp_path)
        assert rc == 0 and ex.stdout == ["42"]

    def test_shared_bytecode_across_vms(self):
        from repro.api import compile_source
        from repro.cexec.vm import VM

        cr = compile_source("int main() { return 7; }", [])
        bc = cr.bytecode()
        assert cr.bytecode() is bc  # memoized
        assert VM(cr.lowered, cr.ctx, program=bc).run_main() == 7
        assert VM(cr.lowered, cr.ctx, program=bc).run_main() == 7
