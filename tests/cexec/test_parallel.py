"""Unit tests for the S23 fork-join runtime (`repro.cexec.parallel`)
and its VM integration: pool mechanics, eligibility analysis, stats
merging, and nthreads plumbing."""

import threading

import numpy as np
import pytest

from repro.api import compile_source
from repro.cexec.interp import InterpStats
from repro.cexec.parallel import (
    DEFAULT_TASK_CAP, NaiveForkJoin, WorkerPool, make_pool, resolve_nthreads)
from repro.cexec.rmat import read_rmat, write_rmat
from repro.cexec.vm import VM
from repro.programs import load


class TestResolveNthreads:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "8")
        assert resolve_nthreads(2) == 2

    def test_env_default(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        monkeypatch.setenv("REPRO_THREADS", "3")
        assert resolve_nthreads(None) == 3

    def test_env_clamped_to_cpu_count(self, monkeypatch):
        import repro.cexec.parallel as par

        monkeypatch.setattr("os.cpu_count", lambda: 2)
        monkeypatch.setattr(par, "_warned_thread_excess", False)
        monkeypatch.setenv("REPRO_THREADS", "16")
        with pytest.warns(RuntimeWarning, match="clamping to 2"):
            assert resolve_nthreads(None) == 2
        # warn-once: the second resolution clamps silently
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_nthreads(None) == 2

    def test_explicit_not_clamped(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        assert resolve_nthreads(16) == 16

    def test_fallback_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        assert resolve_nthreads(None) == 1
        assert resolve_nthreads(None, default=4) == 4

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "many")
        assert resolve_nthreads(None, default=2) == 2

    def test_clamped_to_one(self):
        assert resolve_nthreads(0) == 1
        assert resolve_nthreads(-3) == 1


class TestInterpStatsMerge:
    def test_counters_add_and_region_sizes_append(self):
        a = InterpStats(allocs=3, frees=1, copies=2, parallel_regions=1,
                        tasks_spawned=4, region_sizes=[6])
        b = InterpStats(allocs=1, frees=1, copies=0, parallel_regions=2,
                        tasks_spawned=1, region_sizes=[3, 9])
        out = a.merge(b)
        assert out is a
        assert (a.allocs, a.frees, a.copies) == (4, 2, 2)
        assert (a.parallel_regions, a.tasks_spawned) == (3, 5)
        assert a.region_sizes == [6, 3, 9]
        assert a.leaked == 2


class TestWorkerPool:
    def test_region_runs_every_shard_once(self):
        pool = WorkerPool(4)
        try:
            hits = [0] * 4
            for _round in range(5):  # pool is reused across regions
                pool.run_region(
                    [lambda i=i: hits.__setitem__(i, hits[i] + 1)
                     for i in range(4)])
            assert hits == [5, 5, 5, 5]
            assert pool.regions_dispatched == 5
        finally:
            pool.shutdown()

    def test_workers_are_persistent_and_offloaded(self):
        pool = WorkerPool(3)
        try:
            idents = [set(), set(), set()]
            for _round in range(4):
                pool.run_region(
                    [lambda i=i: idents[i].add(threading.get_ident())
                     for i in range(3)])
            # shard 0 always runs on the owner; each worker shard runs on
            # the same persistent non-owner thread every round.
            assert idents[0] == {threading.get_ident()}
            for worker_idents in idents[1:]:
                assert len(worker_idents) == 1
                assert worker_idents != idents[0]
        finally:
            pool.shutdown()

    def test_nested_region_refused(self):
        pool = WorkerPool(2)
        try:
            inner = []
            outer = pool.run_region(
                [lambda: inner.append(pool.run_region([lambda: None])),
                 lambda: None])
            assert outer is True
            assert inner == [False]  # nested dispatch falls back inline
        finally:
            pool.shutdown()

    def test_region_refused_off_owner_thread(self):
        pool = WorkerPool(2)
        try:
            got = []
            t = threading.Thread(
                target=lambda: got.append(pool.run_region([lambda: None] * 2)))
            t.start()
            t.join()
            assert got == [False]
        finally:
            pool.shutdown()

    def test_too_many_shards_rejected(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(ValueError, match="shards"):
                pool.run_region([lambda: None] * 3)
        finally:
            pool.shutdown()

    def test_tasks_run_and_saturation_elides(self):
        pool = WorkerPool(2, task_cap=2)
        try:
            started = threading.Event()
            release = threading.Event()
            blocker = pool.submit(lambda: (started.set(), release.wait(5)))
            assert blocker is not None
            assert started.wait(5)
            second = pool.submit(lambda: None)  # live=2 == cap after this
            third = pool.submit(lambda: None)
            assert third is None  # saturated: caller must elide
            release.set()
            pool.wait_task(blocker)
            if second is not None:
                pool.wait_task(second)
            assert blocker.done
        finally:
            pool.shutdown()

    def test_wait_task_helps_from_owner(self):
        # With a single worker busy, the owner draining its own wait must
        # execute queued tasks itself rather than deadlock.
        pool = WorkerPool(2)
        try:
            ran_on = []
            tasks = [pool.submit(lambda: ran_on.append(threading.get_ident()))
                     for _ in range(8)]
            for t in tasks:
                pool.wait_task(t)
            assert len(ran_on) == 8
        finally:
            pool.shutdown()

    def test_task_exception_captured_not_raised(self):
        pool = WorkerPool(2)
        try:
            def boom():
                raise ValueError("inside task")
            task = pool.submit(boom)
            pool.wait_task(task)
            assert isinstance(task.exc, ValueError)
        finally:
            pool.shutdown()

    def test_drain_waits_for_all_tasks(self):
        pool = WorkerPool(2)
        try:
            done = []
            for i in range(6):
                pool.submit(lambda i=i: done.append(i))
            pool.drain()
            assert sorted(done) == list(range(6))
        finally:
            pool.shutdown()

    def test_shutdown_then_submit_refused(self):
        pool = WorkerPool(2)
        pool.shutdown()
        assert not pool.alive
        assert pool.submit(lambda: None) is None
        assert pool.run_region([lambda: None] * 2) is False


class TestNaiveForkJoin:
    def test_region_runs_on_fresh_threads(self):
        pool = NaiveForkJoin(3)
        names = [set(), set()]
        for _round in range(3):
            pool.run_region(
                [lambda: None,
                 lambda: names[0].add(threading.current_thread().name),
                 lambda: names[1].add(threading.current_thread().name)])
        # spawn-per-construct: a brand-new Thread object every region
        # (OS idents can be recycled, Thread names are unique)
        assert len(names[0]) == 3 and len(names[1]) == 3
        assert pool.regions_dispatched == 3

    def test_tasks_always_elide(self):
        pool = NaiveForkJoin(4)
        assert pool.submit(lambda: None) is None

    def test_make_pool_modes(self):
        assert make_pool(1) is None
        pool = make_pool(2, "enhanced")
        assert isinstance(pool, WorkerPool)
        pool.shutdown()
        assert isinstance(make_pool(2, "naive"), NaiveForkJoin)
        with pytest.raises(ValueError, match="fork mode"):
            make_pool(2, "eager")


class TestEligibilityAnalysis:
    """The compile-time hazard scan that marks parallel-safe constructs."""

    def bc(self, src, exts=()):
        cr = compile_source(src, list(exts))
        assert cr.ok, cr.errors
        return cr.bytecode()

    def test_fib_is_task_safe(self):
        bc = self.bc("""
            int fib(int n) {
                if (n < 2) return n;
                int a = 0; int b = 0;
                spawn a = fib(n - 1);
                spawn b = fib(n - 2);
                sync;
                return a + b;
            }
            int main() { printInt(fib(5)); return 0; }
        """, ("cilk",))
        assert bc.task_parallel_safe("fib")
        assert not bc.task_parallel_safe("main")  # prints
        assert not bc.task_parallel_safe("nope")  # unknown function

    def test_printing_callee_not_task_safe(self):
        bc = self.bc("""
            int shout(int n) { printInt(n); return n; }
            int quiet(int n) { return shout(n); }
            int main() { return quiet(3); }
        """)
        # transitive: quiet prints through shout
        assert not bc.task_parallel_safe("shout")
        assert not bc.task_parallel_safe("quiet")

    def test_division_makes_task_unsafe_but_shard_safe(self):
        bc = self.bc("""
            int half(int n) { return n / 2; }
            int main() { return half(8); }
        """)
        assert not bc.task_parallel_safe("half")  # may trap off-thread
        assert "trap" in bc.hazards_for("half")

    def test_with_loop_worker_is_shard_safe(self):
        bc = self.bc(load("fig1"), ("matrix",))
        lifted = list(bc.lifted_trees)
        assert lifted, "fig1 should lower to at least one pool worker"
        assert all(bc.lifted_parallel_safe(name) for name in lifted)

    def test_io_in_region_blocks_sharding(self):
        bc = self.bc("""
            float peek(int i) {
                Matrix float <1> a = readMatrix("a.data");
                return a[i];
            }
            int main() {
                Matrix float <1> out = init(Matrix float <1>, 4);
                out = with ([0] <= [i] < [4]) genarray([4], peek(i));
                writeMatrix("out.data", out);
                return 0;
            }
        """, ("matrix",))
        assert bc.lifted_trees
        for name in bc.lifted_trees:
            assert not bc.lifted_parallel_safe(name)
            assert "io" in bc.hazards_for(name, lifted=True)


class TestVMPoolIntegration:
    @pytest.fixture(scope="class")
    def fig1(self, tmp_path_factory):
        wd = tmp_path_factory.mktemp("fig1par")
        cube = np.random.default_rng(0).normal(
            0, 0.4, (8, 5, 24)).astype(np.float32)
        write_rmat(wd / "ssh.data", cube)
        cr = compile_source(load("fig1"), ["matrix"])
        assert cr.ok
        return cr, wd

    def test_region_actually_dispatches_to_pool(self, fig1):
        cr, wd = fig1
        vm = VM(cr.lowered, cr.ctx, workdir=wd, nthreads=4,
                program=cr.bytecode())
        try:
            assert vm.run_main() == 0
            assert vm._pool is not None
            assert vm._pool.regions_dispatched >= 1
        finally:
            vm.close()

    def test_output_identical_to_sequential(self, fig1):
        cr, wd = fig1
        outs = {}
        for n in (1, 3, 4):
            vm = VM(cr.lowered, cr.ctx, workdir=wd, nthreads=n,
                    program=cr.bytecode())
            assert vm.run_main() == 0
            vm.close()
            outs[n] = read_rmat(wd / "means.data")
        assert np.array_equal(outs[1], outs[3])
        assert np.array_equal(outs[1], outs[4])

    def test_cilk_spawns_actually_pool(self):
        cr = compile_source("""
            int fib(int n) {
                if (n < 2) return n;
                int a = 0; int b = 0;
                spawn a = fib(n - 1);
                spawn b = fib(n - 2);
                sync;
                return a + b;
            }
            int main() { printInt(fib(12)); return 0; }
        """, ["cilk"])
        assert cr.ok
        vm = VM(cr.lowered, cr.ctx, nthreads=4, program=cr.bytecode())
        try:
            assert vm.run_main() == 0
            assert vm.stdout == ["144"]
            assert vm._pool is not None
            assert 0 < vm._pool.tasks_pooled <= vm.stats.tasks_spawned
        finally:
            vm.close()

    def test_task_cap_mirrors_c_runtime(self):
        from repro.codegen.runtime_c import TASKS

        assert f"RT_MAX_LIVE_TASKS {DEFAULT_TASK_CAP}" in TASKS

    def test_close_is_idempotent_and_vm_stays_usable(self, fig1):
        cr, wd = fig1
        vm = VM(cr.lowered, cr.ctx, workdir=wd, nthreads=4,
                program=cr.bytecode())
        assert vm.run_main() == 0
        vm.close()
        vm.close()
        assert vm._pool is None
        assert vm.run_main() == 0  # sequential after close


class TestDriverAndCLI:
    def test_compile_result_make_engine(self, tmp_path):
        cr = compile_source("int main() { printInt(9); return 0; }", [])
        ex = cr.make_engine(engine="vm", workdir=tmp_path, nthreads=2)
        try:
            assert ex.program is cr.bytecode()  # memoized, not recompiled
            assert ex.run_main() == 0
            assert ex.stdout == ["9"]
        finally:
            ex.close()
        tree = cr.make_engine(engine="tree", workdir=tmp_path)
        assert tree.run_main() == 0
        tree.close()

    def test_cli_threads_routed_to_vm(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "p.xc"
        src.write_text("""
            int main() {
                Matrix float <2> m = init(Matrix float <2>, 6, 3);
                m = with ([0,0] <= [i,j] < [6,3])
                    genarray([6,3], 1.0 * i + j);
                writeMatrix("m.data", m);
                printFloat(m[5, 2]);
                return 0;
            }""")
        rc = main([str(src), "-x", "matrix", "--run", "--threads", "4"])
        cap = capsys.readouterr()
        assert rc == 0
        assert cap.out.strip().splitlines()[-1] == "7"
        assert "sequential" not in cap.err

    def test_cli_tree_engine_warns_once_on_threads(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "q.xc"
        src.write_text("int main() { printInt(1); return 0; }")
        rc = main([str(src), "-x", "", "--run", "--engine", "tree",
                   "--threads", "4"])
        cap = capsys.readouterr()
        assert rc == 0
        warnings = [ln for ln in cap.err.splitlines()
                    if "tree engine is sequential" in ln]
        assert len(warnings) == 1

    def test_cli_tree_engine_quiet_at_one_thread(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "r.xc"
        src.write_text("int main() { return 0; }")
        rc = main([str(src), "-x", "", "--run", "--engine", "tree",
                   "--threads", "1"])
        cap = capsys.readouterr()
        assert rc == 0
        assert "sequential" not in cap.err

    def test_env_default_threads(self, tmp_path, monkeypatch):
        from repro.cexec.interp import run_program

        monkeypatch.setattr("os.cpu_count", lambda: 8)
        monkeypatch.setenv("REPRO_THREADS", "4")
        rc, outs, st, ex = run_program(
            """int main() {
                Matrix float <2> m = init(Matrix float <2>, 8, 2);
                m = with ([0,0] <= [i,j] < [8,2])
                    genarray([8,2], 1.0 * i * j);
                writeMatrix("m.data", m);
                return 0;
            }""", ["matrix"], workdir=tmp_path, output_names=["m.data"])
        assert rc == 0
        assert ex.nthreads == 4
        assert outs["m.data"].shape == (8, 2)
