"""S27 shared-memory process backend: identity, crash recovery, and
resource hygiene.

The process pool must be *observationally invisible*: for any worker
count and any program, ``parallel_backend="process"`` (and ``"auto"``)
produces bit-identical outputs, traps, ordered stdout, and merged
InterpStats counters to the sequential run — with ineligible regions
(IO/refcount hazards, unshippable captures) falling back to the thread
pool, a lost worker degrading to an exact sequential rerun, and every
shared-memory segment unlinked no matter how the run ends.
"""

import gc
import glob
import os
import time

import numpy as np
import pytest

from repro.api import compile_source
from repro.cexec.interp import RuntimeTrap, run_program
from repro.cexec.parallel import ProcessShardPool, resolve_backend
from repro.eddy import synthetic_ssh
from repro.programs import load

SHM_GLOB = "/dev/shm/reproshard_*"


def _echo_runner(job):
    # Module-level so forked workers reach it by inherited memory.
    return ("echo", job["k"])


def leaked_segments():
    return [p for p in glob.glob(SHM_GLOB)
            if f"_{os.getpid()}_" in os.path.basename(p)]


def run_one(src, exts, inputs=None, outputs=None, nthreads=1, backend=None):
    """(rc, trap, stats_tuple, stdout, outputs) for one configuration."""
    trap = None
    rc, outs, st, ex = None, {}, None, None
    try:
        rc, outs, st, ex = run_program(
            src, list(exts), inputs, output_names=outputs,
            nthreads=nthreads, parallel_backend=backend)
    except RuntimeTrap as t:
        trap = str(t)
    stats = None
    if st is not None:
        stats = (st.allocs, st.frees, st.copies, st.parallel_regions,
                 st.tasks_spawned, tuple(st.region_sizes))
    return (rc, trap, stats, list(ex.stdout) if ex else None, outs)


def assert_identical(seq, par, label=""):
    s_rc, s_trap, s_stats, s_out, s_files = seq
    p_rc, p_trap, p_stats, p_out, p_files = par
    assert s_rc == p_rc, f"{label}: rc {s_rc} vs {p_rc}"
    assert s_trap == p_trap, f"{label}: trap {s_trap!r} vs {p_trap!r}"
    assert s_stats == p_stats, f"{label}: stats {s_stats} vs {p_stats}"
    assert s_out == p_out, f"{label}: stdout {s_out} vs {p_out}"
    assert set(s_files) == set(p_files), f"{label}: output files differ"
    for k in s_files:
        assert s_files[k].dtype == p_files[k].dtype, f"{label}: {k} dtype"
        assert np.array_equal(s_files[k], p_files[k], equal_nan=True), \
            f"{label}: {k} payload differs"


def corpus_case(name):
    if name == "fig1":
        cube = np.random.default_rng(0).normal(
            0, 0.5, (6, 8, 12)).astype(np.float32)
        return load("fig1"), ("matrix",), {"ssh.data": cube}, ["means.data"]
    if name == "fig4":
        rng = np.random.default_rng(9)
        ssh = rng.normal(0.2, 0.5, (8, 9, 5)).astype(np.float32)
        dates = np.array([1011990, 1012000, 1012010, 1012020, 1012030],
                         dtype=np.int32)
        return (load("fig4"), ("matrix",),
                {"ssh.data": ssh, "dates.data": dates}, ["eddyLabels.data"])
    if name == "fig8":
        data = synthetic_ssh((5, 6, 32), n_eddies=2, seed=21)
        return (load("fig8"), ("matrix",), {"ssh.data": data.cube},
                ["temporalScores.data"])
    cube = np.random.default_rng(3).normal(0, 1, (6, 8, 10)).astype(np.float32)
    return (load("fig9"), ("matrix", "transform"), {"ssh.data": cube},
            ["means.data"])


TRAP_SRC = """
int main() {
    Matrix int <1> num = readMatrix("num.data");
    Matrix int <1> den = readMatrix("den.data");
    Matrix int <1> q = init(Matrix int <1>, 64);
    q = with ([0] <= [i] < [64]) genarray([64], num[i] / den[i]);
    writeMatrix("q.data", q);
    return 0;
}
"""

STDOUT_SRC = """
int main() {
    Matrix float <1> v = init(Matrix float <1>, 64);
    v = with ([0] <= [i] < [64]) genarray([64], 1.0 * i);
    printFloat(with ([0] <= [i] < [64]) fold(+, 0.0, v[i]));
    Matrix float <1> w = with ([0] <= [i] < [64]) genarray([64], v[i] * 2.0);
    printFloat(with ([0] <= [i] < [64]) fold(+, 0.0, w[i]));
    printInt(dimSize(w, 0));
    return 0;
}
"""


class TestIdentity:
    @pytest.mark.parametrize("fig", ["fig1", "fig4", "fig8", "fig9"])
    @pytest.mark.parametrize("backend", ["process", "auto"])
    def test_corpus_bit_identical(self, fig, backend):
        src, exts, inputs, outputs = corpus_case(fig)
        seq = run_one(src, exts, inputs, outputs, nthreads=1)
        par = run_one(src, exts, inputs, outputs, nthreads=4,
                      backend=backend)
        assert_identical(seq, par, f"{fig}/{backend}")
        assert not leaked_segments()

    def test_stdout_ordering(self):
        seq = run_one(STDOUT_SRC, ("matrix",), nthreads=1)
        par = run_one(STDOUT_SRC, ("matrix",), nthreads=4, backend="process")
        assert_identical(seq, par, "stdout")
        assert len(par[3]) == 3

    def test_trap_first_shard_wins(self):
        # Zero divisors in shards 1 and 3: the merged result must
        # re-raise the lowest-index trap, exactly like the sequential
        # run, and with the same partial stats.
        num = np.arange(1, 65, dtype=np.int32)
        den = np.ones(64, dtype=np.int32)
        den[23] = 0
        den[55] = 0
        inputs = {"num.data": num, "den.data": den}
        seq = run_one(TRAP_SRC, ("matrix",), inputs, ["q.data"], nthreads=1)
        par = run_one(TRAP_SRC, ("matrix",), inputs, ["q.data"],
                      nthreads=4, backend="process")
        assert seq[1] is not None and "zero" in seq[1]
        assert_identical(seq, par, "trap")
        assert not leaked_segments()


class TestDispatchAndFallback:
    def test_fig1_actually_uses_processes(self):
        src, exts, inputs, outputs = corpus_case("fig1")
        rc, outs, st, ex = run_program(
            src, list(exts), inputs, output_names=outputs,
            nthreads=4, parallel_backend="process")
        assert rc == 0
        assert ex.process_regions >= 1
        assert not any("process-ineligible" in r for r in st.shard_bails)

    def test_rc_hazard_falls_back_to_threads(self):
        # fig4's label-propagation maps mutate reference counts, which
        # the analysis flags as process-blocking; the explicit process
        # backend must fall back to threads *and say why*.
        src, exts, inputs, outputs = corpus_case("fig4")
        seq = run_one(src, exts, inputs, outputs, nthreads=1)
        rc, outs, st, ex = run_program(
            src, list(exts), inputs, output_names=outputs,
            nthreads=4, parallel_backend="process")
        assert rc == seq[0]
        for k in seq[4]:
            assert np.array_equal(seq[4][k], outs[k])
        reasons = st.shard_bails
        assert any("process-ineligible" in r and "rc" in r for r in reasons)

    def test_auto_is_silent_about_ineligible_regions(self):
        src, exts, inputs, outputs = corpus_case("fig4")
        rc, outs, st, ex = run_program(
            src, list(exts), inputs, output_names=outputs,
            nthreads=4, parallel_backend="auto")
        assert rc == 0
        assert not any("process-ineligible" in r for r in st.shard_bails)

    def test_resolve_backend(self, monkeypatch):
        assert resolve_backend("process") == "process"
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "auto")
        assert resolve_backend(None) == "auto"
        monkeypatch.delenv("REPRO_PARALLEL_BACKEND")
        assert resolve_backend(None) == "thread"
        with pytest.raises(ValueError):
            resolve_backend("fibers")
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "fibers")
        with pytest.raises(ValueError):
            resolve_backend(None)

    def test_cli_flag(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "p.xc"
        src.write_text(STDOUT_SRC)
        rc = main([str(src), "-x", "matrix", "--run", "--threads", "4",
                   "--parallel-backend", "process"])
        assert rc == 0
        assert not leaked_segments()


class TestCrashRecovery:
    def test_worker_crash_mid_shard_is_recovered(self, tmp_path):
        from repro.cexec.rmat import read_rmat, write_rmat

        src, exts, inputs, outputs = corpus_case("fig1")
        seq = run_one(src, exts, inputs, outputs, nthreads=1)

        cr = compile_source(src, list(exts))
        for name, arr in inputs.items():
            write_rmat(tmp_path / name, arr)
        engine = cr.make_engine(nthreads=4, parallel_backend="process",
                                workdir=tmp_path)
        try:
            pool = engine._ensure_ppool()
            assert isinstance(pool, ProcessShardPool)
            pool.test_crash_next = 1  # shard 1's worker dies mid-region
            rc = engine.run_main()
            assert rc == seq[0]
            out = read_rmat(tmp_path / outputs[0])
            assert np.array_equal(seq[4][outputs[0]], out)
            reasons = engine.stats.shard_bails
            assert any("worker process lost" in r for r in reasons)
            assert pool.workers_respawned >= 1
            # the respawned bench still takes the next region
            assert pool.alive_workers == pool.nworkers
        finally:
            engine.close()
        assert not leaked_segments()

    def test_shard_timeout_recovers(self):
        pool = ProcessShardPool(1, _echo_runner, timeout_s=0.3)
        try:
            # the worker sleeps far past the deadline: region lost
            assert pool.run_shards([{"k": 0}, {"k": 1, "_sleep": 30.0}]) \
                is None
            assert pool.workers_respawned >= 1
            # the respawned bench serves the next region normally
            got = pool.run_shards([{"k": 0}, {"k": 1}])
            assert got == [("echo", 0), ("echo", 1)]
        finally:
            pool.shutdown()

    def test_pool_level_crash_recovery(self):
        pool = ProcessShardPool(2, _echo_runner)
        try:
            pool.test_crash_next = 1
            assert pool.run_shards([{"k": 0}, {"k": 1}, {"k": 2}]) is None
            assert pool.workers_respawned >= 2  # whole bench replaced
            got = pool.run_shards([{"k": 0}, {"k": 1}, {"k": 2}])
            assert got == [("echo", 0), ("echo", 1), ("echo", 2)]
        finally:
            pool.shutdown()


class TestResourceHygiene:
    def test_no_leaked_segments_after_runs(self):
        src, exts, inputs, outputs = corpus_case("fig1")
        for _ in range(3):
            run_one(src, exts, inputs, outputs, nthreads=4,
                    backend="process")
        assert not leaked_segments()

    def test_close_terminates_workers(self, tmp_path):
        from repro.cexec.rmat import write_rmat

        src, exts, inputs, outputs = corpus_case("fig1")
        cr = compile_source(src, list(exts))
        for name, arr in inputs.items():
            write_rmat(tmp_path / name, arr)
        engine = cr.make_engine(nthreads=4, parallel_backend="process",
                                workdir=tmp_path)
        engine.run_main()
        procs = [proc for proc, _ in engine._ppool._workers]
        assert any(p.is_alive() for p in procs)
        engine.close()
        for p in procs:
            p.join(timeout=5)
        assert not any(p.is_alive() for p in procs)

    def test_finalizer_reaps_workers_without_close(self, tmp_path):
        from repro.cexec.rmat import write_rmat

        src, exts, inputs, outputs = corpus_case("fig1")
        cr = compile_source(src, list(exts))
        for name, arr in inputs.items():
            write_rmat(tmp_path / name, arr)
        engine = cr.make_engine(nthreads=4, parallel_backend="process",
                                workdir=tmp_path)
        engine.run_main()
        procs = [proc for proc, _ in engine._ppool._workers]
        assert any(p.is_alive() for p in procs)
        # Drop the only reference without close(): the weakref
        # finalizer must shut the pool down (the pool must not pin the
        # VM through its job-runner callback, or this never fires).
        del engine
        gc.collect()
        deadline = time.monotonic() + 10
        while any(p.is_alive() for p in procs) \
                and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not any(p.is_alive() for p in procs)
        assert not leaked_segments()
