"""S29 dispatch specialization: superinstructions, quickening, inline
caches, jump threading, frame pooling, and guard elision.

The specialized stream must be *observationally invisible*: for every
corpus program — and for targeted programs poking traps inside fused
groups and the deopt path — the quickened/fused VM produces bit-identical
outputs, stdout, traps, and core InterpStats counters to both the
unspecialized VM (``REPRO_NO_QUICKEN=1``) and the tree-walking reference.
Counting mode must report the same dynamic instruction totals for a fused
stream as for the generic one (superinstructions count as their
constituents).
"""

import os

import numpy as np
import pytest

from repro.api import compile_source
from repro.cexec import superinstr
from repro.cexec.bytecode import Code
from repro.cexec.interp import RuntimeTrap, run_program
from repro.cexec.vm import VM, bind
from repro.cminus.env import Optimizations
from repro.programs import corpus_cases, load


@pytest.fixture(autouse=True)
def _spec_available(monkeypatch):
    """CI reruns this file with ``REPRO_NO_QUICKEN=1`` exported; the
    white-box tests below exercise the specialization machinery itself,
    so default every test to "specialization available" and let tests
    that want it off (or the generic leg of an identity check) set the
    flag explicitly."""
    monkeypatch.delenv("REPRO_NO_QUICKEN", raising=False)


def run_one(src, exts, inputs=None, outputs=None, *, engine="vm",
            nthreads=1, backend=None, options=None):
    """(rc, trap, stats_tuple, stdout, outputs) for one configuration.

    The stats tuple holds only the engine-differential counters; the S29
    counters (quickened/deopts/ic_hits/ic_misses/guards_elided) are
    diagnostics outside that contract.
    """
    trap = None
    rc, outs, st, ex = None, {}, None, None
    try:
        rc, outs, st, ex = run_program(
            src, list(exts), inputs, output_names=outputs,
            nthreads=nthreads, engine=engine, parallel_backend=backend,
            options=options or Optimizations(opt_level=2))
    except RuntimeTrap as t:
        trap = str(t)
    stats = None
    if st is not None:
        stats = (st.allocs, st.frees, st.copies, st.parallel_regions,
                 st.tasks_spawned, tuple(st.region_sizes))
    return (rc, trap, stats, list(ex.stdout) if ex else None, outs)


def assert_identical(a, b, label=""):
    a_rc, a_trap, a_stats, a_out, a_files = a
    b_rc, b_trap, b_stats, b_out, b_files = b
    assert a_rc == b_rc, f"{label}: rc {a_rc} vs {b_rc}"
    assert a_trap == b_trap, f"{label}: trap {a_trap!r} vs {b_trap!r}"
    assert a_stats == b_stats, f"{label}: stats {a_stats} vs {b_stats}"
    assert a_out == b_out, f"{label}: stdout differs"
    assert set(a_files) == set(b_files), f"{label}: output names differ"
    for k in a_files:
        assert a_files[k].tobytes() == b_files[k].tobytes(), \
            f"{label}: output {k} differs bit-for-bit"


class TestCorpusIdentity:
    """Specialized VM vs unspecialized VM vs tree walker, full corpus."""

    @pytest.mark.parametrize(
        "case", corpus_cases(), ids=lambda c: c[0])
    def test_corpus_bit_identity(self, case, monkeypatch):
        name, src, exts, inputs, outs = case
        monkeypatch.setenv("REPRO_NO_QUICKEN", "1")
        tree = run_one(src, exts, inputs, outs, engine="tree")
        generic = run_one(src, exts, inputs, outs, engine="vm")
        monkeypatch.delenv("REPRO_NO_QUICKEN")
        spec = run_one(src, exts, inputs, outs, engine="vm")
        assert_identical(tree, generic, f"{name}: tree vs generic")
        assert_identical(generic, spec, f"{name}: generic vs spec")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_shards_identical(self, backend, monkeypatch):
        """Quickening is per-VM state: forked/threaded shard workers
        bind their own ops lists, so a 4-worker run stays bit-identical
        to the specialized sequential run under both backends."""
        name, src, exts, inputs, outs = next(
            c for c in corpus_cases() if c[0] == "fig1")
        seq = run_one(src, exts, inputs, outs, nthreads=1)
        monkeypatch.setenv("REPRO_THREADS", "4")
        par = run_one(src, exts, inputs, outs, nthreads=4, backend=backend)
        assert_identical(seq, par, f"fig1 spec {backend} x4")

    def test_counting_mode_totals_match(self, monkeypatch):
        """A fused superinstruction is N dynamic instructions, not one:
        REPRO_COUNT_INSTRS totals must not shrink under fusion."""
        monkeypatch.setenv("REPRO_COUNT_INSTRS", "1")
        name, src, exts, inputs, outs = next(
            c for c in corpus_cases() if c[0] == "fig4")
        monkeypatch.setenv("REPRO_NO_QUICKEN", "1")
        rc1, _, st_gen, _ = run_program(
            src, list(exts), inputs, output_names=outs, nthreads=1,
            options=Optimizations(opt_level=2))
        monkeypatch.setenv("REPRO_NO_QUICKEN", "0")
        rc2, _, st_spec, _ = run_program(
            src, list(exts), inputs, output_names=outs, nthreads=1,
            options=Optimizations(opt_level=2))
        assert rc1 == rc2 == 0
        assert st_gen.instrs == st_spec.instrs, \
            f"generic {st_gen.instrs} vs fused {st_spec.instrs}"


def _mk_vm(src="int main() { return 0; }"):
    cr = compile_source(src, ["matrix"])
    assert cr.ok, cr.diagnostics
    return VM(cr.lowered, cr.ctx, workdir=".", nthreads=1,
              program=cr.bytecode())


class TestFusion:
    """Unit coverage of the chain-rule fuser on hand-built Code."""

    def test_jump_target_never_mid_group(self):
        # pc 2 is a jmp target: the (move,move) chain may not swallow it.
        code = Code("f", [], 4, [
            ("move", 1, 0),
            ("move", 2, 1),
            ("move", 3, 2),
            ("jmp", 2),
        ])
        fused, n = superinstr.fuse(code, {("move", "move")}, set())
        assert n == 1
        ops = [i[0] for i in fused.instrs]
        assert ops == ["si", "move", "jmp"]
        assert len(fused.instrs[0][1]) == 2  # pcs 0-1 only
        # the jmp was remapped to the group that *starts* at old pc 2
        assert fused.instrs[2] == ("jmp", 1)

    def test_group_may_start_at_jump_target(self):
        code = Code("f", [], 4, [
            ("jmp", 1),
            ("move", 1, 0),
            ("move", 2, 1),
            ("ret", 2),
        ])
        fused, n = superinstr.fuse(code, {("move", "move")}, set())
        assert n == 1
        assert fused.instrs[0] == ("jmp", 1)
        assert fused.instrs[1][0] == "si"

    def test_dead_intermediate_marked(self):
        # slot 1 is only read by the next constituent: elidable.
        code = Code("f", [], 3, [
            ("const", 1, 5),
            ("move", 2, 1),
            ("ret", 2),
        ])
        fused, n = superinstr.fuse(code, {("const", "move")}, set())
        assert n == 1
        si = fused.instrs[0]
        assert si[0] == "si"
        dead = si[2]
        assert dead[0] is True      # const's write to slot 1 elided
        assert dead[1] is False     # slot 2 is read by the ret outside

    def test_live_intermediate_not_marked(self):
        # slot 1 is read *outside* the group: the write must land.
        code = Code("f", [], 3, [
            ("const", 1, 5),
            ("move", 2, 1),
            ("move", 2, 1),
            ("ret", 2),
        ])
        fused, _ = superinstr.fuse(code, {("const", "move")}, set())
        si = fused.instrs[0]
        assert si[0] == "si" and si[2][0] is False

    def test_mid_group_conditional_early_exit(self):
        """A jz in a non-final position compiles to an early return:
        both branch outcomes must agree with the unfused stream."""
        code = Code("f", ["a"], 4, [
            ("const", 2, 1),
            ("jz", 1, 5),
            ("const", 3, 10),
            ("+", 2, 2, 3),
            ("ret", 2),
            ("ret", 1),
        ])
        fused, n = superinstr.fuse(
            code, {("const", "jz"), ("jz", "const"), ("const", "+"),
                   ("+", "ret")}, set())
        assert n == 1 and fused.instrs[0][0] == "si"
        vm = _mk_vm()
        for arg in (0, 1, 7):
            got = vm._run(bind(fused, vm), fused.nregs, [arg])
            want = vm._run(bind(code, vm), code.nregs, [arg])
            assert got == want, f"arg={arg}: {got} vs {want}"

    def test_trap_inside_fused_group(self):
        """A trapping constituent mid-group raises exactly what the
        unfused sequence raises (a partially-executed group is
        indistinguishable from a partially-executed sequence)."""
        src = """
        int main() {
            Matrix int <1> a = init(Matrix int <1>, 4);
            writeMatrix("a.data", a);
            return 0;
        }
        """
        vm = _mk_vm(src)
        # const idx; rt_geti (traps: index 99 out of range); move
        code = Code("f", ["m"], 4, [
            ("const", 2, 99),
            ("rt_geti", 3, 1, 2),
            ("move", 0, 3),
            ("ret", 0),
        ])
        fused, n = superinstr.fuse(
            code, {("const", "rt_geti"), ("rt_geti", "move")}, set())
        assert n == 1
        mat = vm.rt_alloci(1, 4, 0, 0, 0)
        errs = []
        for c in (code, fused):
            with pytest.raises(IndexError) as ei:
                vm._run(bind(c, vm), c.nregs, [mat])
            errs.append(str(ei.value))
        assert errs[0] == errs[1]


class TestQuickening:
    def test_divmod_quickens_then_deopts(self):
        vm = _mk_vm()
        assert vm._quicken, "specialization unexpectedly disabled"
        code = Code("f", ["a", "b"], 4, [
            ("/", 3, 1, 2),
            ("ret", 3),
        ])
        ops = bind(code, vm)
        base = vm.stats.quickened
        assert vm._run(ops, code.nregs, [7, 2]) == 3   # quickens to int/int
        assert vm.stats.quickened == base + 1
        assert vm._run(ops, code.nregs, [9, 2]) == 4   # stays on fast path
        assert vm.stats.deopts == 0
        # guard failure: float operands at an int-quickened site
        assert vm._run(ops, code.nregs, [1.0, 2.0]) == 0.5
        assert vm.stats.deopts == 1
        # deopted site is permanently generic but still correct
        assert vm._run(ops, code.nregs, [7, 2]) == 3

    def test_quickened_div_trap_message_identical(self):
        vm = _mk_vm()
        code = Code("f", ["a", "b"], 4, [("/", 3, 1, 2), ("ret", 3)])
        ops = bind(code, vm)
        vm._run(ops, code.nregs, [6, 3])  # quicken to fast_int first
        with pytest.raises(RuntimeTrap, match="integer division by zero"):
            vm._run(ops, code.nregs, [6, 0])

    def test_matrix_access_inline_cache(self, monkeypatch):
        """The rt_get/set IC keys on RTMat identity; a different matrix
        is a refill, not a deopt, and values stay exact."""
        monkeypatch.setenv("REPRO_COUNT_INSTRS", "1")
        vm = _mk_vm()
        code = Code("f", ["m", "i"], 4, [
            ("rt_geti", 3, 1, 2),
            ("ret", 3),
        ])
        ops = bind(code, vm)
        m1 = vm.rt_alloci(1, 3, 0, 0, 0)
        m2 = vm.rt_alloci(1, 3, 0, 0, 0)
        m1.data[1] = 41
        m2.data[1] = 42
        assert vm._run(ops, code.nregs, [m1, 1]) == 41
        assert vm._run(ops, code.nregs, [m1, 1]) == 41
        assert vm._run(ops, code.nregs, [m2, 1]) == 42  # cache refill
        assert vm._run(ops, code.nregs, [m1, 1]) == 41
        vm._drain_tasks()
        assert vm.stats.ic_misses >= 2  # m2 switch + switch back
        assert vm.stats.ic_hits >= 1

    def test_no_quicken_env_disables_all(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_QUICKEN", "1")
        vm = _mk_vm()
        code = Code("f", ["a", "b"], 4, [("/", 3, 1, 2), ("ret", 3)])
        ops = bind(code, vm)
        assert vm._run(ops, code.nregs, [7, 2]) == 3
        assert vm.stats.quickened == 0


class TestJumpThreading:
    def test_jmp_chain_threaded_in_spec_stream(self):
        vm = _mk_vm()
        code = Code("f", [], 2, [
            ("jmp", 1),
            ("jmp", 2),
            ("jmp", 3),
            ("const", 0, 7),
            ("ret", 0),
        ])
        ops = bind(code, vm)
        # the entry jmp lands directly on the const, skipping the chain
        assert ops[0]([None, None]) == 3
        assert vm._run(ops, code.nregs, []) == 7

    def test_self_loop_not_followed(self):
        vm = _mk_vm()
        code = Code("f", [], 2, [
            ("jz", 1, 1),   # taken path targets the self-loop
            ("jmp", 1),     # jmp-to-itself: must not thread forever
            ("ret", 1),
        ])
        bind(code, vm)  # merely binding must terminate


class TestFramePool:
    def test_recursion_identical_with_pool_off(self, monkeypatch):
        src = """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { printInt(fib(15)); return 0; }
        """
        on = run_one(src, ["matrix"])
        monkeypatch.setenv("REPRO_NO_FRAME_POOL", "1")
        off = run_one(src, ["matrix"])
        assert_identical(on, off, "frame pool on/off")
        assert on[3] == ["610"]


class TestGuardElision:
    PROVABLE = """
    int main() {
        int n = 9;
        Matrix float <1> a = with ([0] <= [i] < [n]) genarray([n], 2.0);
        writeMatrix("a.data", a);
        return 0;
    }
    """

    def test_provable_guard_elided_and_counted(self):
        src = self.PROVABLE
        rc, outs, st, ex = run_program(
            src, ["matrix"], {}, output_names=["a.data"], nthreads=1,
            options=Optimizations(opt_level=2))
        assert rc == 0
        assert st.guards_elided >= 1
        assert np.all(outs["a.data"] == np.float32(2.0))

    def test_violated_guard_still_traps(self):
        src = """
        int main() {
            Matrix float <1> a = with ([0] <= [i] < [7]) genarray([5], 1.0);
            writeMatrix("a.data", a);
            return 0;
        }
        """
        with pytest.raises(RuntimeTrap, match="genarray"):
            run_program(src, ["matrix"], {}, output_names=["a.data"],
                        nthreads=1, options=Optimizations(opt_level=2))

    def test_escape_hatch_keeps_guard(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_GUARD_ELIDE", "1")
        rc, outs, st, _ = run_program(
            self.PROVABLE, ["matrix"], {}, output_names=["a.data"],
            nthreads=1, options=Optimizations(opt_level=2))
        assert rc == 0 and st.guards_elided == 0
        assert np.all(outs["a.data"] == np.float32(2.0))


class TestProfileAndTable:
    def test_profile_dump_shape(self, tmp_path):
        name, src, exts, inputs, outs = next(
            c for c in corpus_cases() if c[0] == "fig1")
        cr = compile_source(src, list(exts))
        assert cr.ok
        for fname, arr in (inputs or {}).items():
            from repro.cexec.rmat import write_rmat
            write_rmat(tmp_path / fname, arr)
        eng = cr.make_engine(workdir=str(tmp_path), nthreads=1,
                             profile=True)
        assert eng.run_main() == 0
        dump = eng.profile_dump()
        eng.close()
        assert dump["version"] == 1 and dump["dispatches"] > 0
        assert all("|" in k and len(k.split("|")) == 2
                   for k in dump["pairs"])
        assert all(len(k.split("|")) == 3 for k in dump["triples"])
        assert sum(dump["by_op"].values()) == dump["dispatches"]

    def test_select_table_eligibility(self):
        hist = {
            "dispatches": 1000,
            "pairs": {
                "move|move": 400,
                "call|move": 300,     # call may not open a group
                "jz|const": 200,      # conditional may lead a group
                "move|spawn": 150,    # spawn is no legal tail
                "move|jz": 100,
                "const|const": 1,     # below min_share
            },
            "triples": {"move|jz|const": 90,   # mid-group conditional ok
                        "move|jmp|const": 80},  # jmp only legal as tail
        }
        pairs, triples = superinstr.select_table(hist)
        assert ("move", "move") in pairs
        assert ("jz", "const") in pairs
        assert ("move", "jz") in pairs
        assert ("call", "move") not in pairs
        assert ("move", "spawn") not in pairs
        assert ("const", "const") not in pairs
        assert ("move", "jz", "const") in triples
        assert ("move", "jmp", "const") not in triples

    def test_table_version_pins_fingerprint(self, monkeypatch):
        """Regenerating the shipped selection table must invalidate the
        in-memory translator cache."""
        from repro.api import module_registry
        from repro.cexec import superinstr_table
        from repro.service import translator_fingerprint

        assert superinstr_table.TABLE_VERSION.startswith("s29-")
        reg = module_registry()
        mods = [reg["cminus"], reg["tuples"]]
        a = translator_fingerprint(mods, None, 1)
        monkeypatch.setattr(superinstr_table, "TABLE_VERSION",
                            "s29-0000000000")
        b = translator_fingerprint(mods, None, 1)
        assert a != b
