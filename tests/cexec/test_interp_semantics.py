"""Interpreter runtime semantics: C arithmetic corner cases, scoping
machinery, and error behaviour — tested at the unit level (the
differential test against gcc lives in tests/integration)."""

import numpy as np
import pytest

from repro.cexec.interp import (
    InterpError,
    RTMat,
    RuntimeTrap,
    Scope,
    c_div,
    c_mod,
)


class TestCDivision:
    @pytest.mark.parametrize("a,b,want", [
        (7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3),
        (1, 3, 0), (-1, 3, 0), (6, 3, 2), (0, 5, 0),
    ])
    def test_div_truncates_toward_zero(self, a, b, want):
        assert c_div(a, b) == want

    @pytest.mark.parametrize("a,b,want", [
        (7, 3, 1), (-7, 3, -1), (7, -3, 1), (-7, -3, -1), (0, 3, 0),
    ])
    def test_mod_follows_c(self, a, b, want):
        assert c_mod(a, b) == want

    def test_identity_holds(self):
        for a in range(-20, 21):
            for b in (-7, -3, -1, 1, 3, 7):
                assert c_div(a, b) * b + c_mod(a, b) == a

    def test_div_by_zero_traps(self):
        with pytest.raises(RuntimeTrap):
            c_div(1, 0)
        with pytest.raises(RuntimeTrap):
            c_mod(1, 0)

    def test_float_division_is_true(self):
        assert c_div(1.0, 2) == 0.5
        assert c_div(7, 2.0) == 3.5


class TestScope:
    def test_chain_lookup(self):
        outer = Scope()
        outer.declare("x", 1)
        inner = Scope(outer)
        assert inner.get("x") == 1

    def test_shadowing(self):
        outer = Scope()
        outer.declare("x", 1)
        inner = Scope(outer)
        inner.declare("x", 2)
        assert inner.get("x") == 2
        assert outer.get("x") == 1

    def test_set_writes_defining_scope(self):
        outer = Scope()
        outer.declare("x", 1)
        inner = Scope(outer)
        inner.set("x", 9)
        assert outer.get("x") == 9

    def test_undefined_get(self):
        with pytest.raises(InterpError, match="undefined variable"):
            Scope().get("nope")

    def test_undefined_set(self):
        with pytest.raises(InterpError, match="assignment to undefined"):
            Scope().set("nope", 1)


class TestFloat32Semantics:
    """Matrix storage is float32, like the C backend."""

    def test_storage_rounds_to_f32(self, xc):
        rc, outs, _ = xc.run("""int main() {
            Matrix float <1> v = init(Matrix float <1>, 1);
            v[0] = 0.1;
            writeMatrix("out.data", v);
            return 0;
        }""", {}, ["out.data"])
        assert outs["out.data"][0] == np.float32(0.1)

    def test_float_literal_is_f32(self, xc_host):
        # 16777217 is not representable in float32 (2^24 + 1)
        rc, _outs, interp = xc_host.run(
            "int main() { printFloat(16777217.0); return 0; }"
        )
        assert interp.stdout == [f"{float(np.float32(16777217.0)):g}"]

    @pytest.mark.parametrize("ctype", ["float", "double", "tFloat"])
    def test_cast_narrows_through_f32(self, ctype):
        # a cast to float OR double must not smuggle float64 precision
        # past the declared C type (tRaw "double" used to be a no-op)
        from repro.ag.tree import Node
        from repro.cexec.interp import cast_value

        node = (Node("tRaw", [ctype]) if ctype in ("float", "double")
                else Node(ctype, []))
        assert cast_value(node, 16777217.0) == float(np.float32(16777217.0))

    def test_cast_to_int_truncates(self):
        from repro.ag.tree import Node
        from repro.cexec.interp import cast_value

        assert cast_value(Node("tRaw", ["long"]), -2.9) == -2
        assert cast_value(Node("tInt", []), 3.7) == 3


class TestRuntimeTraps:
    def test_messages_match_c_runtime(self, xc):
        cases = [
            ("""int main() {
                Matrix float <1> v = init(Matrix float <1>, 4);
                Matrix float <1> w = v[0 : 9];
                return 0;
            }""", "range"),
            ("""int main() {
                Matrix float <2> a = init(Matrix float <2>, 2, 3);
                Matrix float <2> b = init(Matrix float <2>, 2, 3);
                Matrix float <2> c = a * b;
                return 0;
            }""", "multiply"),
        ]
        for src, frag in cases:
            with pytest.raises(RuntimeTrap, match=frag):
                xc.run(src, {}, [])

    def test_native_traps_too(self, xc):
        """The C runtime exits with status 2 on the same violations."""
        from repro.cexec import compile_and_run, gcc_available

        if not gcc_available():
            pytest.skip("gcc not available")
        src = """int main() {
            Matrix float <1> v = init(Matrix float <1>, 4);
            Matrix float <1> w = v[0 : 9];
            return 0;
        }"""
        run = compile_and_run(src, ["matrix"], check=False)
        assert run.returncode == 2
        assert "range" in run.stderr


class TestRTMat:
    def test_as_numpy_shape(self):
        m = RTMat("f", (2, 3), np.arange(6, dtype=np.float32))
        out = m.as_numpy()
        assert out.shape == (2, 3)
        assert out[1, 2] == 5.0

    def test_as_numpy_copies(self):
        m = RTMat("f", (4,), np.zeros(4, dtype=np.float32))
        out = m.as_numpy()
        out[0] = 99
        assert m.data[0] == 0
