"""The S25 bail ledger: InterpStats records *why* the VM fell back from
its fast paths (loopfast plans, parallel shards), and ``reproc --run
--stats`` prints the reasons."""

from __future__ import annotations

from repro.cexec.interp import InterpStats
from repro.cli import main

PARALLEL = """int main() {
    Matrix float <1> a = init(Matrix float <1>, 8);
    a = with ([0] <= [i] < [8]) genarray([8], 1.0);
    writeMatrix("a.data", a);
    return 0;
}
"""

UNSAFE = """float peek(Matrix float <1> v, int i) {
    writeMatrix("dbg.data", v);
    return v[i];
}
int main() {
    Matrix float <1> a = init(Matrix float <1>, 8);
    a = with ([0] <= [i] < [8]) genarray([8], peek(a, i));
    writeMatrix("a.data", a);
    return 0;
}
"""


def test_bail_counts_and_merge():
    a = InterpStats()
    a.bail("fastloop", "unsupported op")
    a.bail("fastloop", "unsupported op")
    a.bail("shard", "pool busy")
    b = InterpStats()
    b.bail("fastloop", "unsupported op")
    b.bail("shard", "nested region")
    a.merge(b)
    assert a.fastloop_bails == {"unsupported op": 3}
    assert a.shard_bails == {"pool busy": 1, "nested region": 1}


def test_single_thread_records_pool_disabled(xc):
    rc, _outs, vm = xc.run(PARALLEL, nthreads=1)
    assert rc == 0
    assert any("pool disabled" in r for r in vm.stats.shard_bails)


def test_unsafe_region_records_hazard(xc):
    rc, _outs, vm = xc.run(UNSAFE, nthreads=4)
    assert rc == 0
    reasons = list(vm.stats.shard_bails)
    assert any("not shard-safe" in r and "io" in r for r in reasons)


def test_safe_region_with_pool_does_not_bail(xc):
    rc, _outs, vm = xc.run(PARALLEL, nthreads=4)
    assert rc == 0
    assert vm.stats.shard_bails == {}
    assert vm.stats.parallel_regions >= 1


def test_cli_run_stats_prints_bail_lines(tmp_path, capsys):
    (tmp_path / "p.xc").write_text(PARALLEL)
    rc = main([str(tmp_path / "p.xc"), "-x", "matrix", "--run",
               "--stats", "--threads", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "shard bail: single worker thread (pool disabled) x1" in out
