"""Bytecode compiler + numpy fast-path units.

High-level programs are covered differentially in
``test_vm_differential.py``; here we poke the machinery directly:
compile-time slot/jump/constant handling, fast-loop pattern matching,
and — most importantly — every runtime *bail* path, each of which must
fall back to the scalar loop and still produce exactly the tree-walker's
behavior (including traps with correct partial state).
"""

import types

import numpy as np
import pytest

from repro.ag.tree import Node
from repro.api import compile_source
from repro.cexec import loopfast
from repro.cexec.bytecode import BytecodeProgram, compile_function
from repro.cexec.interp import Interpreter, InterpError, RTMat
from repro.cexec.vm import VM


def N(prod, *children):
    return Node(prod, list(children))


def slist(*ss):
    lst = N("stmtNil")
    for s in reversed(ss):
        lst = N("stmtCons", s, lst)
    return N("block", lst)


def elist(*es):
    lst = N("eNil")
    for e in reversed(es):
        lst = N("eCons", e, lst)
    return lst


def call(name, *args):
    return N("call", name, elist(*args))


def var(n):
    return N("var", n)


def i(v):
    return N("intLit", v)


def fl(v):
    return N("floatLit", v)


def for_loop(v, start, limit, body_stmts):
    return N("forStmt",
             N("forDecl", N("tRaw", "long"), v, start),
             N("binop", "<", var(v), limit),
             N("assign", var(v), N("binop", "+", var(v), i(1))),
             slist(*body_stmts))


def program(*funcs):
    """funcs: (name, params, body) -> a Root node + empty ctx."""
    tu = N("tuNil")
    for name, params, body in reversed(funcs):
        ps = N("paramNil")
        for pt, pn in reversed(params):
            ps = N("paramCons", N("param", N("tRaw", pt), pn), ps)
        tu = N("tuCons", N("funcDef", N("tRaw", "int"), name, ps, body), tu)
    return N("root", tu), types.SimpleNamespace(lifted=[])


def both_engines(root, ctx, fname, make_args):
    """Run ``fname`` on tree + vm with fresh args; assert identical
    results (return value, matrix payloads) and return the vm result."""
    results = []
    for eng in (Interpreter, VM):
        ex = eng(root, ctx)
        args = make_args()
        exc, ret = None, None
        try:
            ret = ex.call_function(fname, args)
        except Exception as e:  # traps must match class and message
            exc = (type(e).__name__, str(e))
        results.append((ret, exc, [a.data.copy() if isinstance(a, RTMat)
                                   else a for a in args]))
    t, v = results
    assert t[0] == v[0], f"return {t[0]} vs {v[0]}"
    assert t[1] == v[1], f"exception {t[1]} vs {v[1]}"
    for ta, va in zip(t[2], v[2]):
        if isinstance(ta, np.ndarray):
            assert np.array_equal(ta, va, equal_nan=True), "matrix differs"
    return v


def fmat(vals):
    a = np.asarray(vals, dtype=np.float32).reshape(-1)
    return RTMat("f", (a.size,), a)


def imat(vals):
    a = np.asarray(vals, dtype=np.int32).reshape(-1)
    return RTMat("i", (a.size,), a)


@pytest.fixture()
def fastpath_counter(monkeypatch):
    hits = {"ok": 0, "bail": 0}
    orig = loopfast.Plan.run

    def run(self, frame, stats=None):
        r = orig(self, frame, stats)
        hits["ok" if r else "bail"] += 1
        return r
    monkeypatch.setattr(loopfast.Plan, "run", run)
    return hits


class TestCompiler:
    def test_float_literals_pooled_at_compile_time(self):
        code = compile_function("f", [], slist(
            N("returnStmt", fl(0.1))))
        consts = [ins[2] for ins in code.instrs if ins[0] == "const"]
        assert float(np.float32(0.1)) in consts  # narrowed once, here

    def test_no_scope_objects_no_control_exceptions(self):
        src = """int main() {
            int s = 0;
            for (int i = 0; i < 10; i = i + 1) {
                if (i == 3) continue;
                if (i > 7) break;
                s = s + i;
            }
            return s;
        }"""
        cr = compile_source(src, [])
        code = cr.bytecode().code_for("main")
        ops = {ins[0] for ins in code.instrs}
        assert "jmp" in ops and "jz" in ops  # break/continue are jumps
        vm = VM(cr.lowered, cr.ctx, program=cr.bytecode())
        interp = Interpreter(cr.lowered, cr.ctx)
        assert vm.run_main() == interp.run_main() == (1 + 2 + 4 + 5 + 6 + 7)

    def test_break_outside_loop_is_compile_error(self):
        root, ctx = program(("f", [], slist(N("breakStmt"))))
        with pytest.raises(InterpError, match="break outside loop"):
            BytecodeProgram(root, ctx).code_for("f")

    def test_unknown_function_lazy(self):
        root, ctx = program(("f", [], slist(N("returnStmt", i(1)))))
        bp = BytecodeProgram(root, ctx)
        assert bp.code_for("f").name == "f"
        with pytest.raises(InterpError, match="unknown function"):
            bp.code_for("g")

    def test_disassembly(self):
        code = compile_function("f", ["x"], slist(
            N("returnStmt", N("binop", "+", var("x"), i(2)))))
        dis = code.dis()
        assert "f(x)" in dis and "const" in dis and "ret" in dis

    def test_embedded_assignment_operand_order(self):
        # x + (x = 5): the left operand must be read before the store
        root, ctx = program(("f", [("long", "x")], slist(
            N("returnStmt",
              N("binop", "+", var("x"), N("assign", var("x"), i(5)))))))
        v = both_engines(root, ctx, "f", lambda: [37])
        assert v[0] == 42

    def test_shortcircuit_result_values(self):
        src = """int main() {
            int a = 3;
            int b = 0;
            return (a && 7) + (b || 0) * 10 + (b && 9) * 100 + (a || 0) * 1000;
        }"""
        cr = compile_source(src, [])
        vm = VM(cr.lowered, cr.ctx)
        assert vm.run_main() == Interpreter(cr.lowered, cr.ctx).run_main() == 1001


class TestFastLoopMatching:
    def test_elementwise_loop_gets_fastloop(self):
        body = [N("exprStmt", call(
            "rt_setf", var("dst"), var("k"),
            N("binop", "+", call("rt_getf", var("a"), var("k")), fl(1.0))))]
        root, ctx = program(("f", [("rt_mat*", "dst"), ("rt_mat*", "a")],
                             slist(for_loop("k", i(0), call("rt_size", var("a")),
                                            body))))
        code = BytecodeProgram(root, ctx).code_for("f")
        assert any(ins[0] == "fastloop" for ins in code.instrs)

    def test_user_call_in_body_no_fastloop(self):
        body = [N("exprStmt", call(
            "rt_setf", var("dst"), var("k"), call("helper", var("k"))))]
        root, ctx = program(
            ("f", [("rt_mat*", "dst")],
             slist(for_loop("k", i(0), i(4), body))),
            ("helper", [("long", "k")], slist(N("returnStmt", var("k")))))
        code = BytecodeProgram(root, ctx).code_for("f")
        assert not any(ins[0] == "fastloop" for ins in code.instrs)

    def test_nonunit_step_gets_fastloop(self):
        # strided loops vectorize since the affine widening (S27)
        loop = N("forStmt",
                 N("forDecl", N("tRaw", "long"), "k", i(0)),
                 N("binop", "<", var("k"), i(8)),
                 N("assign", var("k"), N("binop", "+", var("k"), i(2))),
                 slist(N("exprStmt", call("rt_setf", var("m"), var("k"), fl(1.0)))))
        root, ctx = program(("f", [("rt_mat*", "m")], slist(loop)))
        code = BytecodeProgram(root, ctx).code_for("f")
        assert any(ins[0] == "fastloop" for ins in code.instrs)

    def test_nonpositive_step_no_fastloop(self):
        loop = N("forStmt",
                 N("forDecl", N("tRaw", "long"), "k", i(0)),
                 N("binop", "<", var("k"), i(8)),
                 N("assign", var("k"), N("binop", "+", var("k"), i(0))),
                 slist(N("exprStmt", call("rt_setf", var("m"), var("k"), fl(1.0)))))
        root, ctx = program(("f", [("rt_mat*", "m")], slist(loop)))
        code = BytecodeProgram(root, ctx).code_for("f")
        assert not any(ins[0] == "fastloop" for ins in code.instrs)

    def test_accumulator_read_by_store_no_fastloop(self):
        # s is folded AND stored per iteration: stale on the fast path
        body = [
            N("exprStmt", N("assign", var("s"), N(
                "binop", "+", var("s"), call("rt_getf", var("a"), var("k"))))),
            N("exprStmt", call("rt_setf", var("a"), var("k"), var("s"))),
        ]
        root, ctx = program(("f", [("rt_mat*", "a"), ("double", "s")],
                             slist(for_loop("k", i(0), i(4), body))))
        code = BytecodeProgram(root, ctx).code_for("f")
        assert not any(ins[0] == "fastloop" for ins in code.instrs)


class TestFastLoopRuntime:
    def rmw_program(self):
        # m[k] = m[k] * 2 — same-index read-then-write is vectorizable
        body = [N("exprStmt", call(
            "rt_setf", var("m"), var("k"),
            N("binop", "*", call("rt_getf", var("m"), var("k")), fl(2.0))))]
        return program(("f", [("rt_mat*", "m")], slist(
            for_loop("k", i(0), call("rt_size", var("m")), body))))

    def test_same_index_rmw_vectorizes(self, fastpath_counter):
        root, ctx = self.rmw_program()
        both_engines(root, ctx, "f", lambda: [fmat([1, 2, 3, 4])])
        assert fastpath_counter["ok"] >= 1 and fastpath_counter["bail"] == 0

    def test_shift_aliasing_bails_and_matches(self, fastpath_counter):
        # m[k+1] = m[k]: a loop-carried dependence -> scalar propagation
        body = [N("exprStmt", call(
            "rt_setf", var("m"), N("binop", "+", var("k"), i(1)),
            call("rt_getf", var("m"), var("k"))))]
        root, ctx = program(("f", [("rt_mat*", "m")], slist(
            for_loop("k", i(0), i(3), body))))
        code = BytecodeProgram(root, ctx).code_for("f")
        assert any(ins[0] == "fastloop" for ins in code.instrs)
        v = both_engines(root, ctx, "f", lambda: [fmat([5, 0, 0, 0])])
        assert fastpath_counter["bail"] >= 1
        assert list(v[2][0]) == [5, 5, 5, 5]  # scalar propagated

    def test_out_of_bounds_bails_with_partial_state(self, fastpath_counter):
        body = [N("exprStmt", call("rt_setf", var("m"), var("k"), fl(9.0)))]
        root, ctx = program(("f", [("rt_mat*", "m")], slist(
            for_loop("k", i(0), i(10), body))))
        v = both_engines(root, ctx, "f", lambda: [fmat([0, 0, 0])])
        assert v[1] is not None and v[1][0] == "IndexError"
        assert list(v[2][0]) == [9, 9, 9]  # stores before the trap landed
        assert fastpath_counter["bail"] >= 1

    def test_duplicate_store_indices_bail(self, fastpath_counter):
        # m[k * 0] = k: every store hits element 0, last wins sequentially
        body = [N("exprStmt", call(
            "rt_setf", var("m"), N("binop", "*", var("k"), i(0)),
            N("castE", N("tRaw", "double"), var("k"))))]
        root, ctx = program(("f", [("rt_mat*", "m")], slist(
            for_loop("k", i(0), i(5), body))))
        v = both_engines(root, ctx, "f", lambda: [fmat([0, 0])])
        assert fastpath_counter["bail"] >= 1
        assert v[2][0][0] == 4.0

    def test_integer_division_bails(self, fastpath_counter):
        # 7 / (k+1) is int/int: c_div truncation, not a numpy op
        body = [N("exprStmt", call(
            "rt_seti", var("m"), var("k"),
            N("binop", "/", i(7), N("binop", "+", var("k"), i(1)))))]
        root, ctx = program(("f", [("rt_mat*", "m")], slist(
            for_loop("k", i(0), i(4), body))))
        v = both_engines(root, ctx, "f", lambda: [imat([0, 0, 0, 0])])
        assert fastpath_counter["bail"] >= 1
        assert list(v[2][0]) == [7, 3, 2, 1]

    def test_non_float_accumulator_bails(self, fastpath_counter):
        body = [N("exprStmt", N("assign", var("s"), N(
            "binop", "+", var("s"), call("rt_geti", var("a"), var("k")))))]
        root, ctx = program(("f", [("rt_mat*", "a"), ("long", "s")], slist(
            for_loop("k", i(0), i(4), body),
            N("returnStmt", var("s")))))
        v = both_engines(root, ctx, "f", lambda: [imat([1, 2, 3, 4]), 100])
        assert fastpath_counter["bail"] >= 1
        assert v[0] == 110

    def test_float_reduction_vectorizes_exactly(self, fastpath_counter):
        body = [N("exprStmt", N("assign", var("s"), N(
            "binop", "+", var("s"), call("rt_getf", var("a"), var("k")))))]
        root, ctx = program(("f", [("rt_mat*", "a"), ("double", "s")], slist(
            for_loop("k", i(0), call("rt_size", var("a")), body),
            N("returnStmt", var("s")))))
        rng = np.random.default_rng(0)
        vals = (rng.normal(0, 1, 501) * 10.0 ** rng.integers(-8, 8, 501))
        v = both_engines(root, ctx, "f", lambda: [fmat(vals), 0.125])
        assert fastpath_counter["ok"] >= 1 and fastpath_counter["bail"] == 0

    def test_product_reduction_vectorizes_exactly(self, fastpath_counter):
        body = [N("exprStmt", N("assign", var("s"), N(
            "binop", "*", var("s"), call("rt_getf", var("a"), var("k")))))]
        root, ctx = program(("f", [("rt_mat*", "a"), ("double", "s")], slist(
            for_loop("k", i(0), call("rt_size", var("a")), body),
            N("returnStmt", var("s")))))
        vals = np.random.default_rng(1).normal(1, 0.01, 200)
        v = both_engines(root, ctx, "f", lambda: [fmat(vals), 1.0])
        assert fastpath_counter["ok"] >= 1 and fastpath_counter["bail"] == 0

    def test_trip_count_cap_bails(self, fastpath_counter, monkeypatch):
        monkeypatch.setattr(loopfast, "MAX_TRIP", 4)
        root, ctx = self.rmw_program()
        both_engines(root, ctx, "f", lambda: [fmat(np.ones(10))])
        assert fastpath_counter["bail"] >= 1

    def test_zero_trip_loop(self, fastpath_counter):
        root, ctx = self.rmw_program()
        v = both_engines(root, ctx, "f", lambda: [fmat(np.zeros(0))])
        assert v[1] is None
        assert fastpath_counter["ok"] >= 1  # empty commit, scalar skipped

    def test_float_divisor_zero_bails_to_scalar_trap(self, fastpath_counter):
        # float division by zero: Python scalars raise ZeroDivisionError,
        # numpy would emit inf — the fast path must hand over to scalar
        body = [N("exprStmt", call(
            "rt_setf", var("m"), var("k"),
            N("binop", "/", fl(1.0), call("rt_getf", var("m"), var("k")))))]
        root, ctx = program(("f", [("rt_mat*", "m")], slist(
            for_loop("k", i(0), call("rt_size", var("m")), body))))
        v = both_engines(root, ctx, "f", lambda: [fmat([2.0, 0.0, 4.0])])
        assert v[1] is not None and v[1][0] == "ZeroDivisionError"
        assert v[2][0][0] == 0.5  # first iteration landed before the trap
        assert fastpath_counter["bail"] >= 1


class TestShardBoundaries:
    """S23 sharded execution of the fast path: partition edges must be
    invisible — any worker count produces bit-identical outputs, stats
    and traps, including when the numpy guard bails in only one shard."""

    def run_at(self, src, inputs, outputs, nthreads):
        from repro.cexec.interp import RuntimeTrap, run_program

        trap = None
        rc, outs, st = None, {}, None
        try:
            rc, outs, st, _ex = run_program(
                src, ["matrix"], inputs, output_names=outputs,
                nthreads=nthreads, engine="vm")
        except (RuntimeTrap, ZeroDivisionError) as t:
            trap = f"{type(t).__name__}: {t}"
        stats = None
        if st is not None:
            stats = (st.allocs, st.frees, st.copies, st.parallel_regions,
                     st.tasks_spawned, tuple(st.region_sizes))
        return rc, trap, stats, outs

    def assert_worker_count_invisible(self, src, inputs, outputs,
                                      counts=(3, 4, 5)):
        base = self.run_at(src, inputs, outputs, nthreads=1)
        for n in counts:
            got = self.run_at(src, inputs, outputs, nthreads=n)
            assert got[0] == base[0], f"rc differs at nthreads={n}"
            assert got[1] == base[1], f"trap differs at nthreads={n}"
            assert got[2] == base[2], f"stats differ at nthreads={n}"
            assert set(got[3]) == set(base[3])
            for k in base[3]:
                assert base[3][k].dtype == got[3][k].dtype
                assert np.array_equal(base[3][k], got[3][k], equal_nan=True), \
                    f"{k} differs at nthreads={n}"
        return base

    GENARRAY_2D = """
    int main() {{
        Matrix float <2> a = readMatrix("a.data");
        Matrix float <2> b = init(Matrix float <2>, {rows}, 6);
        b = with ([0,0] <= [i,j] < [{rows},6])
            genarray([{rows},6], a[i, j] * 2.0 + 1.0 * i);
        writeMatrix("b.data", b);
        return 0;
    }}
    """

    def cube(self, rows, seed=0):
        return np.random.default_rng(seed).normal(
            0, 1, (max(rows, 1), 6)).astype(np.float32)[:rows]

    def test_trip_count_not_divisible_by_workers(self):
        # 7 outer rows over 3/4/5 workers: uneven shards incl. an empty
        # tail shard at nthreads=4 (ceil(7/4)=2 -> 2+2+2+1).
        src = self.GENARRAY_2D.format(rows=7)
        base = self.assert_worker_count_invisible(
            src, {"a.data": self.cube(7)}, ["b.data"])
        assert base[2][5] == (7,)  # one region of 7 rows, any worker count

    def test_zero_row_outer_loop(self):
        src = self.GENARRAY_2D.format(rows=0)
        base = self.assert_worker_count_invisible(
            src, {"a.data": self.cube(0)}, ["b.data"])
        assert base[1] is None
        assert base[3]["b.data"].shape == (0, 6)

    def test_one_row_outer_loop(self):
        # A single row leaves nthreads-1 workers with empty shards.
        src = self.GENARRAY_2D.format(rows=1)
        base = self.assert_worker_count_invisible(
            src, {"a.data": self.cube(1)}, ["b.data"])
        assert base[1] is None
        assert base[2][5] == (1,)

    def test_bail_in_only_one_shard(self, fastpath_counter):
        # Rows are mapped through a scatter whose store indices are
        # usually unique (fast path) but contain a duplicate in exactly
        # one row: that shard's guard bails to the scalar loop, which
        # must still produce the sequential result (last store wins).
        src = """
        Matrix float <1> scatter(Matrix int <1> idx) {
            Matrix float <1> out = init(Matrix float <1>, 8);
            for (int k = 0; k < 8; k = k + 1) {
                out[idx[k]] = 1.0 * k + 1.0;
            }
            return out;
        }
        int main() {
            Matrix int <2> perm = readMatrix("perm.data");
            Matrix float <2> hits = matrixMap(scatter, perm, [1]);
            writeMatrix("hits.data", hits);
            return 0;
        }
        """
        rng = np.random.default_rng(5)
        perm = np.stack([rng.permutation(8) for _ in range(8)]).astype(np.int32)
        perm[5] = [0, 1, 2, 2, 4, 5, 6, 7]  # duplicate -> bail in one row
        base = self.run_at(src, {"perm.data": perm}, ["hits.data"], 1)
        seq_ok, seq_bail = fastpath_counter["ok"], fastpath_counter["bail"]
        assert seq_bail >= 1 and seq_ok >= 1  # mostly fast, one bail
        par = self.run_at(src, {"perm.data": perm}, ["hits.data"], 4)
        assert fastpath_counter["bail"] >= seq_bail + 1
        assert par[0] == base[0] and par[1] == base[1] and par[2] == base[2]
        assert np.array_equal(base[3]["hits.data"], par[3]["hits.data"])
        assert base[3]["hits.data"][5, 2] == 4.0  # last duplicate store won

    def test_fold_results_bit_identical_across_worker_counts(self):
        # Per-row fold accumulators live inside each shard; their
        # left-to-right float rounding must not depend on the partition.
        src = """
        int main() {
            Matrix float <2> a = readMatrix("a.data");
            Matrix float <1> sums = init(Matrix float <1>, 9);
            sums = with ([0] <= [i] < [9])
                genarray([9], with ([0] <= [k] < [50]) fold(+, 0.0, a[i, k]));
            writeMatrix("sums.data", sums);
            return 0;
        }
        """
        rng = np.random.default_rng(11)
        a = (rng.normal(0, 1, (9, 50))
             * 10.0 ** rng.integers(-5, 5, (9, 50))).astype(np.float32)
        self.assert_worker_count_invisible(src, {"a.data": a}, ["sums.data"])


def gen_loop(v, start, limit, body_stmts, *, step=1, cmp="<"):
    """Like ``for_loop`` but with a chosen comparison and literal step."""
    return N("forStmt",
             N("forDecl", N("tRaw", "long"), v, start),
             N("binop", cmp, var(v), limit),
             N("assign", var(v), N("binop", "+", var(v), i(step))),
             slist(*body_stmts))


def vm_bail_reasons(root, ctx, fname, args):
    """Run ``fname`` on the VM alone and return its fastloop bail ledger."""
    ex = VM(root, ctx)
    try:
        ex.call_function(fname, args)
    except Exception:
        pass
    return ex.stats.fastloop_bails


class TestWidenedFastLoop:
    """S27 recognizer widening: 2-D nests, strided/inclusive headers,
    multiple stores, and affine uniqueness proofs.  Every match shape is
    paired with a hazard-mutation twin that must bail with a named
    ledger reason — and every runtime test is differential against the
    tree walker via ``both_engines``."""

    # --- header shapes -------------------------------------------------

    def test_inclusive_bound_matches_and_runs(self, fastpath_counter):
        body = [N("exprStmt", call(
            "rt_setf", var("m"), var("k"),
            N("castE", N("tRaw", "double"), var("k"))))]
        root, ctx = program(("f", [("rt_mat*", "m")], slist(
            gen_loop("k", i(0), i(3), body, cmp="<="))))
        code = BytecodeProgram(root, ctx).code_for("f")
        assert any(ins[0] == "fastloop" for ins in code.instrs)
        v = both_engines(root, ctx, "f", lambda: [fmat([0, 0, 0, 0])])
        assert list(v[2][0]) == [0, 1, 2, 3]  # k == 3 included
        assert fastpath_counter["ok"] >= 1 and fastpath_counter["bail"] == 0

    def test_strided_store_runs_fast(self, fastpath_counter):
        body = [N("exprStmt", call("rt_setf", var("m"), var("k"), fl(5.0)))]
        root, ctx = program(("f", [("rt_mat*", "m")], slist(
            gen_loop("k", i(0), i(8), body, step=2))))
        v = both_engines(root, ctx, "f", lambda: [fmat([1.0] * 8)])
        assert list(v[2][0]) == [5, 1, 5, 1, 5, 1, 5, 1]
        assert fastpath_counter["ok"] >= 1 and fastpath_counter["bail"] == 0

    # --- 2-D rectangular nests -----------------------------------------

    def nest(self, inner_limit, idx, val):
        inner = gen_loop("kj", i(0), inner_limit,
                         [N("exprStmt", call("rt_setf", var("m"), idx, val))])
        return gen_loop("ki", i(0), i(3), [inner])

    @staticmethod
    def rowmajor(w):
        return N("binop", "+",
                 N("binop", "*", var("ki"), i(w)), var("kj"))

    def test_2d_nest_matches_as_single_plan(self):
        loop = self.nest(i(4), self.rowmajor(4), fl(1.0))
        root, ctx = program(("f", [("rt_mat*", "m")], slist(loop)))
        code = BytecodeProgram(root, ctx).code_for("f")
        plans = [ins[1] for ins in code.instrs if ins[0] == "fastloop"]
        # one 2-D plan on the nest, plus the inner loop's own 1-D plan
        # inside the scalar fallback body (used only if the nest bails)
        assert sorted(len(p.loops) for p in plans) == [1, 2]

    def test_2d_nest_with_outer_dependent_bound_matches_inner_only(self):
        # triangular nest (inner limit reads ki): not rectangular, so
        # the outer loop stays scalar — but the inner still gets a 1-D
        # plan of its own through the scalar body compilation.
        loop = self.nest(var("ki"), self.rowmajor(4), fl(1.0))
        root, ctx = program(("f", [("rt_mat*", "m")], slist(loop)))
        code = BytecodeProgram(root, ctx).code_for("f")
        plans = [ins[1] for ins in code.instrs if ins[0] == "fastloop"]
        assert [len(p.loops) for p in plans] == [1]

    def test_2d_rowmajor_store_runs_fast(self, fastpath_counter):
        idx = self.rowmajor(4)
        val = N("binop", "*", call("rt_getf", var("a"), idx), fl(2.0))
        inner = gen_loop("kj", i(0), i(4),
                         [N("exprStmt", call("rt_setf", var("m"), idx, val))])
        root, ctx = program(("f", [("rt_mat*", "m"), ("rt_mat*", "a")],
                             slist(gen_loop("ki", i(0), i(3), [inner]))))
        a = np.arange(12, dtype=np.float32)
        v = both_engines(root, ctx, "f",
                         lambda: [fmat(np.zeros(12)), fmat(a)])
        assert np.array_equal(v[2][0], a * 2.0)
        assert fastpath_counter["ok"] >= 1 and fastpath_counter["bail"] == 0

    def test_2d_duplicate_rows_bail_with_reason(self, fastpath_counter):
        # m[kj] = ki: every outer row rewrites the same columns — the
        # affine proof fails (ki coefficient 0) and the runtime scan
        # finds duplicates, so the nest reruns scalar (last row wins).
        loop = self.nest(i(4), var("kj"),
                         N("castE", N("tRaw", "double"), var("ki")))
        root, ctx = program(("f", [("rt_mat*", "m")], slist(loop)))
        v = both_engines(root, ctx, "f", lambda: [fmat(np.zeros(4))])
        assert list(v[2][0]) == [2, 2, 2, 2]
        assert fastpath_counter["bail"] >= 1
        reasons = vm_bail_reasons(root, ctx, "f", [fmat(np.zeros(4))])
        assert "duplicate store indices" in reasons

    # --- multiple stores per body --------------------------------------

    def test_multi_store_identical_indices_last_wins(self, fastpath_counter):
        body = [
            N("exprStmt", call("rt_setf", var("m"), var("k"), fl(1.0))),
            N("exprStmt", call("rt_setf", var("m"), var("k"),
                               N("castE", N("tRaw", "double"), var("k")))),
        ]
        root, ctx = program(("f", [("rt_mat*", "m")], slist(
            gen_loop("k", i(0), i(4), body))))
        v = both_engines(root, ctx, "f", lambda: [fmat(np.zeros(4))])
        assert list(v[2][0]) == [0, 1, 2, 3]  # statement order preserved
        assert fastpath_counter["ok"] >= 1 and fastpath_counter["bail"] == 0

    def test_multi_store_disjoint_parity(self, fastpath_counter):
        even = N("binop", "*", var("k"), i(2))
        odd = N("binop", "+", even, i(1))
        body = [
            N("exprStmt", call("rt_setf", var("m"), even,
                               call("rt_getf", var("a"), var("k")))),
            N("exprStmt", call("rt_setf", var("m"), odd,
                               N("unop", "-",
                                 call("rt_getf", var("a"), var("k"))))),
        ]
        root, ctx = program(("f", [("rt_mat*", "m"), ("rt_mat*", "a")],
                             slist(gen_loop("k", i(0), i(3), body))))
        v = both_engines(root, ctx, "f",
                         lambda: [fmat(np.zeros(6)), fmat([1, 2, 3])])
        assert list(v[2][0]) == [1, -1, 2, -2, 3, -3]
        assert fastpath_counter["ok"] >= 1 and fastpath_counter["bail"] == 0

    def test_multi_store_overlapping_bails_with_reason(self, fastpath_counter):
        body = [
            N("exprStmt", call("rt_setf", var("m"), var("k"), fl(1.0))),
            N("exprStmt", call("rt_setf", var("m"),
                               N("binop", "+", var("k"), i(1)), fl(2.0))),
        ]
        root, ctx = program(("f", [("rt_mat*", "m")], slist(
            gen_loop("k", i(0), i(3), body))))
        v = both_engines(root, ctx, "f", lambda: [fmat(np.zeros(4))])
        assert list(v[2][0]) == [1, 1, 1, 2]  # sequential interleaving
        assert fastpath_counter["bail"] >= 1
        reasons = vm_bail_reasons(root, ctx, "f", [fmat(np.zeros(4))])
        assert "overlapping stores to one matrix" in reasons

    # --- affine uniqueness proof ---------------------------------------

    def test_affine_proof_discharges_unique_scan(self, fastpath_counter,
                                                 monkeypatch):
        # m[2k+1]: coefficient*step != 0 proves injectivity symbolically,
        # so the O(n log n) np.unique scan must never run.
        def boom(*a, **k):
            raise AssertionError("np.unique called despite affine proof")
        monkeypatch.setattr(loopfast.np, "unique", boom)
        idx = N("binop", "+", N("binop", "*", i(2), var("k")), i(1))
        body = [N("exprStmt", call("rt_setf", var("m"), idx, fl(7.0)))]
        root, ctx = program(("f", [("rt_mat*", "m")], slist(
            gen_loop("k", i(0), i(3), body))))
        v = both_engines(root, ctx, "f", lambda: [fmat(np.zeros(6))])
        assert list(v[2][0]) == [0, 7, 0, 7, 0, 7]
        assert fastpath_counter["ok"] >= 1 and fastpath_counter["bail"] == 0

    # --- reductions in nests -------------------------------------------

    def test_2d_reduction_vectorizes_exactly(self, fastpath_counter):
        body = [N("exprStmt", N("assign", var("s"), N(
            "binop", "+", var("s"),
            call("rt_getf", var("a"), self.rowmajor(5)))))]
        inner = gen_loop("kj", i(0), i(5), body)
        root, ctx = program(("f", [("rt_mat*", "a"), ("double", "s")], slist(
            gen_loop("ki", i(0), i(3), [inner]),
            N("returnStmt", var("s")))))
        rng = np.random.default_rng(7)
        vals = rng.normal(0, 1, 15) * 10.0 ** rng.integers(-6, 6, 15)
        both_engines(root, ctx, "f", lambda: [fmat(vals), 0.5])
        assert fastpath_counter["ok"] >= 1 and fastpath_counter["bail"] == 0

    def test_2d_reduction_nonfloat_acc_bails_with_reason(self,
                                                         fastpath_counter):
        body = [N("exprStmt", N("assign", var("s"), N(
            "binop", "+", var("s"),
            call("rt_geti", var("a"), self.rowmajor(2)))))]
        inner = gen_loop("kj", i(0), i(2), body)
        root, ctx = program(("f", [("rt_mat*", "a"), ("long", "s")], slist(
            gen_loop("ki", i(0), i(3), [inner]),
            N("returnStmt", var("s")))))
        v = both_engines(root, ctx, "f",
                         lambda: [imat([1, 2, 3, 4, 5, 6]), 100])
        assert v[0] == 121
        assert fastpath_counter["bail"] >= 1
        reasons = vm_bail_reasons(root, ctx, "f",
                                  [imat([1, 2, 3, 4, 5, 6]), 100])
        assert "non-float accumulator" in reasons
